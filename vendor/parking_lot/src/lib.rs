//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so this vendored crate provides the exact API subset the
//! workspace uses — [`Mutex`] (whose `lock` returns the guard directly,
//! with no poison `Result`) and [`Condvar`] (whose `wait` takes the
//! guard by `&mut`) — implemented on top of `std::sync`. Poisoning is
//! transparently ignored, matching parking_lot semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-transparent
/// locking API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds the std guard in an `Option` so [`Condvar::wait`]
/// can temporarily relinquish it through a `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock` this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard relinquished during Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard relinquished during Condvar::wait")
    }
}

/// A condition variable whose `wait` borrows the guard mutably instead
/// of consuming it, as in parking_lot.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guarded mutex and block until notified;
    /// the mutex is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("nested Condvar::wait on one guard");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// [`Condvar::wait`] with a timeout: blocks until notified or
    /// until `timeout` elapses, whichever comes first. The mutex is
    /// re-acquired before returning either way; inspect the returned
    /// [`WaitTimeoutResult`] to tell the cases apart (subject to the
    /// usual spurious wakeups, so always re-check the predicate).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("nested Condvar::wait on one guard");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one blocked waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake every blocked waiter.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout
/// elapsed (as opposed to a notification or spurious wakeup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
