//! Offline stand-in for the `crossbeam-utils` crate, providing the one
//! item the workspace uses: [`CachePadded`].

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) a cache-line boundary so that
/// adjacent elements of a `Vec<CachePadded<T>>` never share a line
/// (128 bytes covers the common 64-byte line and the 128-byte
/// spatial-prefetcher pairing on recent x86).
#[derive(Clone, Copy, Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    /// Wrap `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded(value)
    }

    /// Unwrap, discarding the padding.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_elements_do_not_share_lines() {
        let v: Vec<CachePadded<u8>> = vec![CachePadded::new(1), CachePadded::new(2)];
        let a = &*v[0] as *const u8 as usize;
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128);
        assert_eq!(*v[0], 1);
    }

    #[test]
    fn deref_mut_reaches_inner() {
        let mut p = CachePadded::new(vec![1, 2]);
        p.push(3);
        assert_eq!(p.into_inner(), vec![1, 2, 3]);
    }
}
