//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy
/// is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transform generated values with `f`, which also receives a
    /// private RNG.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Reject generated values failing `f` (retrying a bounded number
    /// of times before panicking, since there is no global reject
    /// accounting at strategy level).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone, Debug)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let v = self.inner.generate(rng);
        let sub = TestRng::from_seed(rng.next_u64());
        (self.f)(v, sub)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1024 consecutive draws",
            self.whence
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let off = rng.random_range(0u64..span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                let off = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.random_range(0u64..=span)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.random::<f32>() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut r);
            assert!((3..10).contains(&v));
            let w = (-5i32..=5).generate(&mut r);
            assert!((-5..=5).contains(&w));
            let x = (-4.0f64..4.0).generate(&mut r);
            assert!((-4.0..4.0).contains(&x));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..=4, 1usize..=4)
            .prop_flat_map(|(a, b)| crate::collection::vec(0usize..(a + b), 1..=6))
            .prop_map(|v| v.len());
        let mut r = rng();
        for _ in 0..100 {
            let n = strat.generate(&mut r);
            assert!((1..=6).contains(&n));
        }
    }

    #[test]
    fn perturb_gets_private_rng() {
        let strat = Just(()).prop_perturb(|(), mut rng| rng.random::<u64>());
        let mut r = rng();
        let a = strat.generate(&mut r);
        let b = strat.generate(&mut r);
        assert_ne!(a, b, "distinct draws get distinct sub-rngs w.h.p.");
    }

    #[test]
    fn filter_retries() {
        let strat = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut r) % 2, 0);
        }
    }
}
