//! The case loop: deterministic RNG, config, and failure reporting.

use crate::strategy::Strategy;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases tolerated before the
    /// test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not succeed.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed; the whole test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`; a replacement is drawn.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies, with the rand-0.9 method names the
/// workspace's `prop_perturb` callbacks use.
#[derive(Clone, Debug)]
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// Derive a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng as _;
        TestRng(rand::rngs::SmallRng::seed_from_u64(seed))
    }

    /// A uniform value of type `T`.
    pub fn random<T: rand::Standard>(&mut self) -> T {
        rand::Rng::random(&mut self.0)
    }

    /// A uniform value from `range`.
    pub fn random_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        rand::Rng::random_range(&mut self.0, range)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.0)
    }
}

/// Runs the case loop for one `proptest!`-defined test.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

impl TestRunner {
    /// Create a runner. The base seed is fixed (so failures reproduce)
    /// unless `PROPTEST_SEED` overrides it.
    pub fn new(config: ProptestConfig) -> Self {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5eed_cafe_f00d_0001);
        TestRunner { config, base_seed }
    }

    /// Run `body` over `config.cases` generated inputs, panicking on
    /// the first failing case with enough context to reproduce it.
    pub fn run<S: Strategy, F>(&mut self, name: &str, strategy: &S, body: F)
    where
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < self.config.cases {
            // Mix name hash, base seed, and case index so distinct
            // tests and cases draw independent streams.
            let seed = self
                .base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(hash_name(name))
                .wrapping_add(case);
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut rng);
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "proptest {name}: too many prop_assume! rejections \
                             ({rejected}) — weaken the assumption or the strategy"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {name}: case #{case} failed (seed {seed:#x}, \
                         rerun with PROPTEST_SEED={base}):\n{msg}",
                        base = self.base_seed,
                    );
                }
            }
            case += 1;
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate test names.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let collect = |runs: &mut Vec<u64>| {
            let mut r = TestRunner::new(ProptestConfig::with_cases(16));
            let runs = std::cell::RefCell::new(runs);
            r.run("det", &(0u64..1_000_000), |v| {
                runs.borrow_mut().push(v);
                Ok(())
            });
        };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        collect(&mut a);
        collect(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failure_panics_with_context() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(8));
        r.run("fail", &(0u64..10), |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn rejects_draw_replacements() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(8));
        let seen = std::cell::Cell::new(0u32);
        r.run("rej", &(0u64..10), |v| {
            if v % 2 == 0 {
                return Err(TestCaseError::reject("odd only"));
            }
            seen.set(seen.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get(), 8);
    }
}
