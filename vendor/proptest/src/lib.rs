//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored
//! crate implements the subset of proptest the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`
//! / `prop_perturb` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], `prop::bool::ANY`, the
//! [`proptest!`] macro, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed;
//!   re-running is deterministic (see below), so the failure
//!   reproduces exactly, just without minimization.
//! * **Deterministic by default.** Case `i` of every test derives its
//!   RNG from a fixed base seed (overridable with `PROPTEST_SEED`),
//!   so CI failures reproduce locally without a persistence file.

pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.random::<bool>()
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy generating vectors of `element` values with
    /// lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{
        ProptestConfig, TestCaseError, TestCaseResult, TestRng, TestRunner,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::bool::ANY` etc. resolve after a glob
    /// import, as with real proptest.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Assert a condition inside a [`proptest!`] body, failing the current
/// case (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// [`prop_assert!`] for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// [`prop_assert!`] for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (drawing a replacement) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            $crate::test_runner::TestRunner::new(config).run(
                stringify!($name),
                &strat,
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
