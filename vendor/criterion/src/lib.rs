//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored
//! crate provides the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple wall-clock loop: a warmup pass, then timed iterations until
//! the measurement budget (or an iteration cap) is reached, reporting
//! mean / min / max per benchmark id.
//!
//! No statistics, plots, or baselines; for rigorous numbers use the
//! figure binaries in `spgemm-bench`, which do their own timing.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; fewer batches).
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// A hierarchical benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The per-benchmark timing loop driver.
pub struct Bencher {
    measurement_time: Duration,
    sample_size: usize,
    /// Collected per-iteration seconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // warmup
        std::hint::black_box(routine());
        let budget = self.measurement_time;
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed().as_secs_f64());
            if started.elapsed() > budget {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let budget = self.measurement_time;
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.0, &b.samples);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (report flushing happens per-benchmark).
    pub fn finish(&mut self) {
        let _ = &self.parent;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

fn report(group: &str, id: &str, samples: &[f64]) {
    let full = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    if samples.is_empty() {
        println!("{full:<48} (no samples)");
        return;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{full:<48} mean {:>12} min {:>12} max {:>12} ({n} samples)",
        fmt_secs(mean),
        fmt_secs(min),
        fmt_secs(max)
    );
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Re-export so `criterion::black_box` call sites work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(
            runs >= 2,
            "warmup + at least one timed iteration, got {runs}"
        );
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("batched");
        g.sample_size(2).measurement_time(Duration::from_millis(50));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
