//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this vendored
//! crate provides `par_iter` / `into_par_iter` entry points that
//! return ordinary **sequential** iterators. Every adaptor the
//! workspace chains afterwards (`map`, `sum`, `collect`, `for_each`)
//! is then the std one, so call sites compile unchanged.
//!
//! The workspace's hot loops do not go through rayon at all — they run
//! on `spgemm_par::Pool`, which is a real thread pool. Rayon appears
//! only in a few statistics helpers, where sequential execution is an
//! acceptable (and on this container, often faster) fallback.

pub mod prelude {
    /// `into_par_iter()` for owning collections and ranges; resolves
    /// to the std `IntoIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for rayon's parallel iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` for borrowed collections; resolves to the std
    /// by-reference `IntoIterator`.
    pub trait IntoParallelRefIterator {
        /// Sequential stand-in for rayon's borrowing parallel iterator.
        fn par_iter<'a>(&'a self) -> <&'a Self as IntoIterator>::IntoIter
        where
            &'a Self: IntoIterator,
        {
            self.into_iter()
        }
    }

    impl<C: ?Sized> IntoParallelRefIterator for C {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_matches_sequential() {
        let s: u64 = (0..100u64).into_par_iter().map(|i| i * 2).sum();
        assert_eq!(s, 9900);
    }

    #[test]
    fn slice_par_iter_matches_sequential() {
        let v = vec![1u64, 2, 3];
        let s: u64 = v.par_iter().sum();
        assert_eq!(s, 6);
        let w: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(w, vec![2, 3, 4]);
    }

    #[test]
    fn for_each_visits_all() {
        let mut out = Vec::new();
        vec![5, 6, 7].into_par_iter().for_each(|x| out.push(x));
        assert_eq!(out, vec![5, 6, 7]);
    }
}
