//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so this vendored
//! crate implements the subset the workspace uses: [`SeedableRng`]
//! with `seed_from_u64`, [`rngs::SmallRng`] (a xoshiro256** PRNG, the
//! same family the real `SmallRng` uses on 64-bit targets), and the
//! [`Rng`] extension trait with `random()` / `random_range()` /
//! `random_bool()`. Determinism is the property the workspace relies
//! on — every generator seeds explicitly — and is guaranteed here by a
//! fixed algorithm with no platform dependence.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded internally
    /// with splitmix64, as the real crate does).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic PRNG (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by rejection, avoiding modulo bias.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Extension methods over any [`RngCore`], mirroring rand 0.9.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.random_range(5usize..8);
            assert!((5..8).contains(&v));
            let w = r.random_range(0usize..=2);
            assert!(w <= 2);
            seen_lo |= w == 0;
            seen_hi |= w == 2;
        }
        assert!(seen_lo && seen_hi, "inclusive range covers endpoints");
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[r.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
