//! Offline stand-in for the `crossbeam-channel` crate, providing the
//! API subset the workspace uses: multi-producer multi-consumer FIFO
//! channels, [`bounded`] and [`unbounded`], with blocking
//! [`Sender::send`] / [`Receiver::recv`] and the standard
//! disconnection semantics (a `recv` on an empty channel whose senders
//! are all gone returns [`RecvError`]; a `send` whose receivers are
//! all gone returns the value back in [`SendError`]).
//!
//! Backed by `std::sync::{Mutex, Condvar}` — correct and fair enough
//! for the shard-runtime message rates this workspace drives (a few
//! messages per SpGEMM stage, not per element).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// Waiters for "queue became non-empty or all senders left".
    recv_cv: Condvar,
    /// Waiters for "queue has room or all receivers left" (bounded).
    send_cv: Condvar,
    /// `usize::MAX` encodes an unbounded channel.
    capacity: usize,
}

/// Error returned by [`Sender::send`] when every receiver has been
/// dropped; carries the unsent value back to the caller.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] once the channel is empty and
/// every sender has been dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still connected).
    Empty,
    /// The channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel empty and disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of a channel. Clone freely; the channel
/// disconnects for receivers when the last clone drops.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Clone freely; the channel
/// disconnects for senders when the last clone drops.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// An unbounded MPMC FIFO channel: `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(usize::MAX)
}

/// A bounded MPMC FIFO channel: `send` blocks while `cap` messages are
/// queued (a zero capacity is rounded up to one — this stand-in has no
/// rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(cap.max(1))
}

fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        recv_cv: Condvar::new(),
        send_cv: Condvar::new(),
        capacity,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueue `value`, blocking while a bounded channel is full.
    /// Fails — returning the value — once every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().expect("channel mutex poisoned");
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            if st.queue.len() < self.chan.capacity {
                st.queue.push_back(value);
                drop(st);
                self.chan.recv_cv.notify_one();
                return Ok(());
            }
            st = self.chan.send_cv.wait(st).expect("channel mutex poisoned");
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan
            .state
            .lock()
            .expect("channel mutex poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Dequeue the oldest message, blocking while the channel is empty
    /// and any sender remains. Fails once it is empty *and* every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().expect("channel mutex poisoned");
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.chan.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.chan.recv_cv.wait(st).expect("channel mutex poisoned");
        }
    }

    /// Non-blocking variant of [`Receiver::recv`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock().expect("channel mutex poisoned");
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.chan.send_cv.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.chan
            .state
            .lock()
            .expect("channel mutex poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .expect("channel mutex poisoned")
            .senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .expect("channel mutex poisoned")
            .receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().expect("channel mutex poisoned");
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.chan.recv_cv.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().expect("channel mutex poisoned");
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.chan.send_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, [0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "queued messages drain first");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<String>();
        drop(rx);
        let back = tx.send("hello".into()).unwrap_err();
        assert_eq!(back.0, "hello");
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the main thread pops
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = unbounded::<usize>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
