//! AMG setup phase on a 2-D Poisson problem: repeated Galerkin triple
//! products `Pᵀ A P` — the numeric SpGEMM workload from the paper's
//! introduction.
//!
//! ```text
//! cargo run --release -p spgemm-examples --bin amg_galerkin [grid]
//! ```

use spgemm::Algorithm;
use spgemm_apps::amg;
use spgemm_gen::poisson::poisson2d;

fn main() {
    let grid: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);

    println!("5-point Laplacian on a {grid} x {grid} grid");
    let a = poisson2d(grid);
    println!("A_0: {} rows, {} nonzeros", a.nrows(), a.nnz());

    let pool = spgemm_par::global_pool();
    let t = std::time::Instant::now();
    let levels = amg::setup_hierarchy(a, 64, 12, Algorithm::Hash, pool).expect("setup");
    let secs = t.elapsed().as_secs_f64();

    println!("built {}-level hierarchy in {:.3}s:", levels.len(), secs);
    for (d, op) in levels.iter().enumerate() {
        println!(
            "  level {d}: {:>8} rows, {:>9} nnz, avg row {:.2}",
            op.nrows(),
            op.nnz(),
            op.avg_row_nnz()
        );
    }
    let coarsening: f64 =
        levels[0].nrows() as f64 / levels.last().expect("non-empty").nrows() as f64;
    println!("total coarsening factor: {coarsening:.1}x");
}
