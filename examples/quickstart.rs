//! Quickstart: build two sparse matrices, multiply them with every
//! algorithm, and verify they agree.
//!
//! ```text
//! cargo run --release -p spgemm-examples --bin quickstart
//! ```

use spgemm::{multiply_f64, Algorithm, OutputOrder};
use spgemm_sparse::{stats, Csr};

fn main() {
    // A small graph-ish matrix built from triplets (rows come out
    // sorted and deduplicated).
    let a = Csr::from_triplets(
        4,
        4,
        &[
            (0, 1, 1.0),
            (0, 2, 2.0),
            (1, 2, 3.0),
            (2, 0, 4.0),
            (2, 3, 5.0),
            (3, 3, 6.0),
        ],
    )
    .expect("valid triplets");

    println!("A: {} x {}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());
    println!("flop(A^2) = {}\n", stats::flop(&a, &a));

    // The paper's workhorse: hash SpGEMM with sorted output.
    let c = multiply_f64(&a, &a, Algorithm::Hash, OutputOrder::Sorted).expect("multiply");
    println!("C = A^2 has {} nonzeros:", c.nnz());
    for i in 0..c.nrows() {
        let entries: Vec<String> = c
            .row_cols(i)
            .iter()
            .zip(c.row_vals(i))
            .map(|(col, v)| format!("({col}, {v})"))
            .collect();
        println!("  row {i}: {}", entries.join(" "));
    }

    // Every other algorithm gives the same product.
    println!("\ncross-checking all algorithms:");
    for algo in [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
        Algorithm::Inspector,
        Algorithm::KkHash,
        Algorithm::Ikj,
    ] {
        let got = multiply_f64(&a, &a, algo, OutputOrder::Sorted).expect("multiply");
        let same = spgemm_sparse::approx_eq_f64(&c, &got, 1e-12);
        println!("  {algo:<10} -> {} nnz, matches: {same}", got.nnz());
        assert!(same);
    }

    // Auto selection consults the paper's recipe (Table 4).
    let auto = multiply_f64(&a, &a, Algorithm::Auto, OutputOrder::Unsorted).expect("multiply");
    println!(
        "\nAuto-selected kernel produced {} nnz (unsorted output)",
        auto.nnz()
    );
}
