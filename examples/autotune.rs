//! Calibrate-then-multiply: build a machine profile with `spgemm-tune`
//! and watch `Algorithm::Auto` switch from the paper's static recipe
//! to the tuned selector.
//!
//! ```text
//! cargo run --release -p spgemm-examples --example autotune [scale]
//! ```

use spgemm::recipe::{auto_context, static_select};
use spgemm::{multiply_f64, Algorithm, OutputOrder};
use spgemm_gen::{perm, rmat, RmatKind};
use spgemm_par::Pool;
use spgemm_tune::{CalibrationConfig, TunedSelector};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let pool = Pool::with_all_threads();

    // Inputs: a skewed square multiply, sorted and shuffled.
    let mut rng = spgemm_gen::rng(1);
    let a = rmat::generate_kind(RmatKind::G500, scale, 16, &mut rng);
    let au = perm::randomize_columns(&a, &mut rng);
    println!(
        "input: G500 R-MAT, {} rows, {} nnz (and a column-shuffled copy)\n",
        a.nrows(),
        a.nnz()
    );

    // 1. Before calibration: Auto is the paper's Table-4 recipe.
    for (label, m) in [("sorted", &a), ("shuffled", &au)] {
        let ctx = auto_context(m, m, OutputOrder::Sorted);
        println!(
            "static recipe picks {:<8} for the {label} input",
            static_select(&ctx).name()
        );
    }

    // 2. Calibrate: time the whole roster on a generated grid sized
    //    like this input, then install the winner table.
    println!("\ncalibrating (scale {scale}, every algorithm, this machine)...");
    let cfg = CalibrationConfig {
        scale,
        reps: 2,
        ..Default::default()
    };
    let profile = spgemm_tune::calibrate(&cfg, &pool);
    println!(
        "measured {} cells; hash collision factor c = {:.4}",
        profile.cells.len(),
        profile.collision_factor
    );
    let selector = TunedSelector::new(profile);
    selector.install();

    // 3. After calibration: Auto consults the profile.
    println!();
    for (label, m) in [("sorted", &a), ("shuffled", &au)] {
        let ctx = auto_context(m, m, OutputOrder::Sorted);
        match selector.select(&ctx) {
            Some(pick) => println!(
                "tuned selector picks {:<8} for the {label} input",
                pick.name()
            ),
            None => println!("tuned selector declines the {label} input (outside grid)"),
        }
    }

    // 4. The multiply itself is a one-liner either way.
    let c = multiply_f64(&a, &a, Algorithm::Auto, OutputOrder::Sorted).expect("valid multiply");
    println!("\nC = A^2 done: {} rows, {} nnz", c.nrows(), c.nnz());

    // In a long-running service you would skip the inline sweep and do
    // `spgemm_tune::init_from_saved(threads)` at startup instead,
    // after a one-time `cargo run -p spgemm-bench --bin tune`.
    spgemm_tune::uninstall();
}
