//! Triangle counting via the paper's `L · U` pipeline (§5.6): degree
//! reordering, triangular split, SpGEMM, masked reduction.
//!
//! ```text
//! cargo run --release -p spgemm-examples --bin triangle_count [scale] [edge_factor]
//! ```

use spgemm::Algorithm;
use spgemm_apps::triangles;
use spgemm_gen::{rmat, RmatKind};
use spgemm_sparse::stats;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let ef: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("generating G500 graph: scale {scale}, edge factor {ef}...");
    let g = rmat::generate_kind(RmatKind::G500, scale, ef, &mut spgemm_gen::rng(7));
    println!("graph: {} vertices, {} stored entries", g.nrows(), g.nnz());

    let pool = spgemm_par::global_pool();
    // LxU products have low compression ratio; Table 4a recommends
    // Heap for CR <= 2 and Hash above — run both and compare.
    for algo in [Algorithm::Heap, Algorithm::Hash] {
        let t = std::time::Instant::now();
        let count = triangles::count_triangles(&g, algo, pool).expect("count");
        let secs = t.elapsed().as_secs_f64();
        println!("{algo:<6}: {count} triangles in {secs:.3}s");
    }

    // report the compression ratio of the wedge product for context
    let simple = spgemm_sparse::ops::symmetrize_simple(&g).expect("symmetrize");
    let (l, u) = spgemm_sparse::ops::split_lu(&simple).expect("split");
    let flop = stats::flop(&l, &u);
    let wedges =
        spgemm::multiply_f64(&l, &u, Algorithm::Hash, spgemm::OutputOrder::Sorted).expect("wedges");
    println!(
        "L·U: flop {} / nnz {} -> compression ratio {:.2}",
        flop,
        wedges.nnz(),
        stats::compression_ratio(flop, wedges.nnz())
    );
}
