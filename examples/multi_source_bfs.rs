//! Multi-source BFS on an R-MAT graph — the square × tall-skinny
//! SpGEMM use case of §5.5 (betweenness centrality, Graph500-style
//! batched searches).
//!
//! ```text
//! cargo run --release -p spgemm-examples --bin multi_source_bfs [scale] [edge_factor] [sources]
//! ```

use spgemm::Algorithm;
use spgemm_apps::bfs;
use spgemm_gen::{rmat, RmatKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(12);
    let ef: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let nsources: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);

    println!("generating G500 graph: scale {scale}, edge factor {ef}...");
    let a = rmat::generate_kind(RmatKind::G500, scale, ef, &mut spgemm_gen::rng(1));
    let graph = a.map(|_| true);
    println!("graph: {} vertices, {} edges", graph.nrows(), graph.nnz());

    // sources spread across the vertex id space
    let sources: Vec<usize> = (0..nsources)
        .map(|s| (s * graph.nrows()) / nsources)
        .collect();

    let pool = spgemm_par::global_pool();
    let t = std::time::Instant::now();
    // Table 4b: tall-skinny workloads want the hash family.
    let levels = bfs::multi_source_bfs(&graph, &sources, Algorithm::Hash, pool).expect("bfs");
    let secs = t.elapsed().as_secs_f64();

    println!("ran {} simultaneous BFS in {:.3}s", sources.len(), secs);
    let mut reach: Vec<usize> = (0..sources.len())
        .map(|s| levels.reached_count(s))
        .collect();
    reach.sort_unstable();
    println!(
        "reachability: min {} / median {} / max {} of {} vertices",
        reach[0],
        reach[reach.len() / 2],
        reach[reach.len() - 1],
        graph.nrows()
    );

    // deepest level found from the first source
    let max_level = (0..graph.nrows())
        .map(|v| levels.level(v, 0))
        .filter(|&l| l != bfs::UNREACHED)
        .max()
        .unwrap_or(0);
    println!("eccentricity of source {}: {max_level}", sources[0]);
}
