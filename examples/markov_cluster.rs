//! Markov clustering of a planted-partition graph — the A² workload
//! the paper cites as a primary SpGEMM consumer (HipMCL).
//!
//! ```text
//! cargo run --release -p spgemm-examples --bin markov_cluster [clusters] [per_cluster]
//! ```

use rand::Rng as _;
use spgemm_apps::mcl::{cluster, MclParams};
use spgemm_sparse::{ColIdx, Coo, Csr};

/// Planted partition: `k` groups of `m` vertices; intra-group edge
/// probability high, inter-group low.
fn planted(k: usize, m: usize, seed: u64) -> (Csr<f64>, Vec<usize>) {
    let n = k * m;
    let mut rng = spgemm_gen::rng(seed);
    let mut coo = Coo::new(n, n).expect("size ok");
    for u in 0..n {
        for v in (u + 1)..n {
            let same = u / m == v / m;
            let p = if same { 0.6 } else { 0.02 };
            if rng.random::<f64>() < p {
                coo.push(u, v as ColIdx, 1.0).unwrap();
                coo.push(v, u as ColIdx, 1.0).unwrap();
            }
        }
    }
    let truth: Vec<usize> = (0..n).map(|v| v / m).collect();
    (coo.into_csr_sum(), truth)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);

    println!("planted-partition graph: {k} clusters x {m} vertices");
    let (g, truth) = planted(k, m, 2024);
    println!("{} vertices, {} edges", g.nrows(), g.nnz() / 2);

    let pool = spgemm_par::global_pool();
    let t = std::time::Instant::now();
    let labels = cluster(&g, &MclParams::default(), pool).expect("mcl");
    println!("MCL converged in {:.3}s", t.elapsed().as_secs_f64());

    let found = labels.iter().copied().max().unwrap_or(0) + 1;
    println!("found {found} clusters (truth: {k})");

    // pair-counting accuracy (Rand index)
    let n = labels.len();
    let mut agree = 0u64;
    let mut total = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            total += 1;
            let same_found = labels[u] == labels[v];
            let same_truth = truth[u] == truth[v];
            if same_found == same_truth {
                agree += 1;
            }
        }
    }
    println!(
        "Rand index vs planted truth: {:.4}",
        agree as f64 / total as f64
    );
}
