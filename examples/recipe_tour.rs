//! Tour of the paper's recipe (Table 4): for a grid of scenarios,
//! show which algorithm the recipe picks and confirm it against a
//! timed shoot-out on this machine.
//!
//! ```text
//! cargo run --release -p spgemm-examples --bin recipe_tour [scale]
//! ```

use spgemm::{multiply_f64, recipe, Algorithm, OutputOrder};
use spgemm_gen::{rmat, tallskinny, RmatKind};
use spgemm_sparse::Csr;
use std::time::Instant;

fn time_algo(a: &Csr<f64>, b: &Csr<f64>, algo: Algorithm, order: OutputOrder) -> Option<f64> {
    let t = Instant::now();
    multiply_f64(a, b, algo, order).ok()?;
    Some(t.elapsed().as_secs_f64())
}

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    let contenders = [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
    ];

    println!("scenario grid at scale {scale} (see Table 4b of the paper)\n");
    println!(
        "{:<28} {:>9} {:>10} {:>10}",
        "scenario", "recipe", "fastest", "agree?"
    );

    for kind in [RmatKind::Er, RmatKind::G500] {
        for ef in [4usize, 16] {
            for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
                let a = rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(5));
                let pattern = recipe::classify_pattern(&a);
                let pick =
                    recipe::recommend_synthetic(recipe::OpKind::Square, pattern, ef as f64, order);
                // shoot-out
                let mut best = (f64::INFINITY, Algorithm::Hash);
                for algo in contenders {
                    if algo.requires_sorted_inputs() && order == OutputOrder::Unsorted {
                        continue; // sorted-only kernels can't skip the sort anyway
                    }
                    if let Some(t) = time_algo(&a, &a, algo, order) {
                        if t < best.0 {
                            best = (t, algo);
                        }
                    }
                }
                let name = format!(
                    "A²/{}/EF{}/{}",
                    kind.name(),
                    ef,
                    if order.is_sorted() {
                        "sorted"
                    } else {
                        "unsorted"
                    }
                );
                println!(
                    "{:<28} {:>9} {:>10} {:>10}",
                    name,
                    pick.name(),
                    best.1.name(),
                    if pick == best.1 { "yes" } else { "-" }
                );
            }
        }
    }

    // tall-skinny scenario
    let g = rmat::generate_kind(RmatKind::G500, scale, 16, &mut spgemm_gen::rng(6));
    let ts = tallskinny::tall_skinny(&g, 1 << (scale / 2), &mut spgemm_gen::rng(7))
        .expect("tall-skinny");
    let pick = recipe::recommend_synthetic(
        recipe::OpKind::TallSkinny,
        recipe::Pattern::Skewed,
        16.0,
        OutputOrder::Unsorted,
    );
    let mut best = (f64::INFINITY, Algorithm::Hash);
    for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::Heap] {
        if let Some(t) = time_algo(&g, &ts, algo, OutputOrder::Unsorted) {
            if t < best.0 {
                best = (t, algo);
            }
        }
    }
    println!(
        "{:<28} {:>9} {:>10} {:>10}",
        "AxTallSkinny/G500/EF16",
        pick.name(),
        best.1.name(),
        if pick == best.1 { "yes" } else { "-" }
    );

    println!("\n('agree?' depends on this machine; the paper's recipe was fit on KNL)");
}
