//! Property tests of the tuning database: serialization round-trips
//! preserve every selector decision, and selection is a deterministic
//! function of (profile, context).

use proptest::prelude::*;
use spgemm::recipe::{AutoContext, OpKind, Pattern};
use spgemm::{Algorithm, OutputOrder};
use spgemm_tune::{
    AlgoScore, CellEntry, CellKey, GridBounds, MachineProfile, TunedSelector, PROFILE_VERSION,
};

fn algo_from_index(i: usize) -> Algorithm {
    Algorithm::ALL[i % Algorithm::ALL.len()]
}

fn op_from_index(i: usize) -> OpKind {
    [OpKind::Square, OpKind::LxU, OpKind::TallSkinny][i % 3]
}

/// Strategy: an arbitrary (but structurally valid) machine profile.
fn arb_profile() -> impl Strategy<Value = MachineProfile> {
    let arb_cell = (
        0usize..3,       // op
        prop::bool::ANY, // pattern uniform?
        0u8..6,          // ef bucket
        prop::bool::ANY, // sorted inputs
        prop::bool::ANY, // order sorted?
        proptest::collection::vec((0usize..9, 1.0f64..8.0, 1e-6f64..1.0), 1..=5),
    )
        .prop_map(
            |(op, uniform, ef_bucket, sorted_inputs, order_sorted, scores)| {
                let mut ranking: Vec<AlgoScore> = scores
                    .into_iter()
                    .map(|(ai, rel, secs)| AlgoScore {
                        algo: algo_from_index(ai),
                        rel_slowdown: rel,
                        total_secs: secs,
                        // exercise both the measured and unmeasured
                        // plan-path encodings
                        plan_rel_slowdown: if secs > 1e-3 { Some(rel * 1.5) } else { None },
                    })
                    .collect();
                // dedupe algorithms, keep first occurrence, rank ascending
                let mut seen = Vec::new();
                ranking.retain(|s| {
                    if seen.contains(&s.algo) {
                        false
                    } else {
                        seen.push(s.algo);
                        true
                    }
                });
                ranking.sort_by(|x, y| x.rel_slowdown.total_cmp(&y.rel_slowdown));
                let winner = ranking[0].algo;
                CellEntry {
                    key: CellKey {
                        op: op_from_index(op),
                        pattern: if uniform {
                            Pattern::Uniform
                        } else {
                            Pattern::Skewed
                        },
                        ef_bucket,
                        sorted_inputs,
                        order: if order_sorted {
                            OutputOrder::Sorted
                        } else {
                            OutputOrder::Unsorted
                        },
                    },
                    winner,
                    plan_winner: ranking
                        .iter()
                        .filter(|s| s.plan_rel_slowdown.is_some())
                        .min_by(|x, y| {
                            x.plan_rel_slowdown
                                .unwrap()
                                .total_cmp(&y.plan_rel_slowdown.unwrap())
                        })
                        .map(|s| s.algo),
                    ranking,
                }
            },
        );
    (
        6u32..14,
        proptest::collection::vec(arb_cell, 0..=12),
        1usize..=64,
        1.0f64..2.0,
    )
        .prop_map(|(log_rows, mut cells, threads, collision)| {
            // one entry per key: keep the first of any duplicate key
            let mut keys: Vec<CellKey> = Vec::new();
            cells.retain(|c| {
                if keys.contains(&c.key) {
                    false
                } else {
                    keys.push(c.key);
                    true
                }
            });
            MachineProfile {
                version: PROFILE_VERSION,
                hostname: "prop-host".into(),
                threads,
                collision_factor: collision,
                bounds: GridBounds {
                    nrows_min: 1 << (log_rows - 2),
                    nrows_max: 1 << log_rows,
                },
                cells,
            }
        })
}

/// Strategy: an arbitrary multiply context.
fn arb_ctx() -> impl Strategy<Value = AutoContext> {
    (
        0usize..3,
        prop::bool::ANY,
        4u32..16,
        1.0f64..64.0,
        0.0f64..4.0,
        prop::bool::ANY,
        prop::bool::ANY,
    )
        .prop_map(
            |(op, uniform, log_rows, ef, cv, sorted_inputs, order_sorted)| {
                let nrows = 1usize << log_rows;
                AutoContext {
                    op: op_from_index(op),
                    pattern: if uniform {
                        Pattern::Uniform
                    } else {
                        Pattern::Skewed
                    },
                    nrows,
                    ncols_a: nrows,
                    ncols_b: if op == 2 { (nrows / 16).max(1) } else { nrows },
                    nnz_a: (nrows as f64 * ef) as usize,
                    edge_factor: ef,
                    row_cv: cv,
                    sorted_inputs,
                    order: if order_sorted {
                        OutputOrder::Sorted
                    } else {
                        OutputOrder::Unsorted
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serialization_round_trip_is_identity(profile in arb_profile()) {
        let text = profile.to_json();
        let back = MachineProfile::from_json(&text).unwrap();
        prop_assert_eq!(&profile, &back);
        // canonical form is stable
        prop_assert_eq!(text, back.to_json());
    }

    #[test]
    fn round_trip_preserves_every_selector_decision(
        profile in arb_profile(),
        ctxs in proptest::collection::vec(arb_ctx(), 1..=16),
    ) {
        let back = MachineProfile::from_json(&profile.to_json()).unwrap();
        let a = TunedSelector::new(profile);
        let b = TunedSelector::new(back);
        for ctx in &ctxs {
            prop_assert_eq!(a.select(ctx), b.select(ctx), "ctx {:?}", ctx);
        }
    }

    #[test]
    fn selection_is_deterministic(
        profile in arb_profile(),
        ctx in arb_ctx(),
    ) {
        let sel = TunedSelector::new(profile.clone());
        let first = sel.select(&ctx);
        for _ in 0..3 {
            prop_assert_eq!(sel.select(&ctx), first);
            // a freshly-built selector over an equal profile agrees too
            prop_assert_eq!(TunedSelector::new(profile.clone()).select(&ctx), first);
        }
    }

    #[test]
    fn selector_never_violates_input_contracts(
        profile in arb_profile(),
        ctx in arb_ctx(),
    ) {
        if let Some(pick) = TunedSelector::new(profile).select(&ctx) {
            prop_assert!(ctx.sorted_inputs || !pick.requires_sorted_inputs(),
                "picked {} for unsorted inputs", pick);
            prop_assert!(!ctx.order.is_sorted() || pick.honours_sorted_output(),
                "picked {} for a sorted-output request", pick);
        }
    }

    #[test]
    fn out_of_bounds_always_declines(
        profile in arb_profile(),
        ctx in arb_ctx(),
    ) {
        let mut far = ctx.clone();
        far.nrows = profile.bounds.nrows_max * spgemm_tune::SIZE_MARGIN * 2;
        prop_assert_eq!(TunedSelector::new(profile).select(&far), None);
    }
}
