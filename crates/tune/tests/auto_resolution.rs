//! End-to-end coverage of the `Algorithm::Auto` resolution contract:
//!
//! * with a calibrated profile installed, `Auto` resolves through the
//!   [`TunedSelector`] for in-grid inputs;
//! * with no profile, `Auto` is byte-for-byte the static Table-4
//!   recipe;
//! * both paths are exercised over the representative scenarios —
//!   square, `L · U`, and tall-skinny, each sorted and unsorted.
//!
//! The auto-hook is process-global, so every test serializes on one
//! lock and restores the empty-hook state before releasing it.

use spgemm::recipe::{self, auto_context};
use spgemm::{Algorithm, OutputOrder};
use spgemm_gen::{perm, rmat, tallskinny, RmatKind};
use spgemm_par::Pool;
use spgemm_sparse::{ops, Csr};
use spgemm_tune::{CalibrationConfig, TunedSelector};
use std::sync::{Mutex, MutexGuard, PoisonError};

fn hook_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The representative input roster: (label, A, B) covering square,
/// L·U, and tall-skinny, in sorted and unsorted variants. Sizes match
/// the quick calibration grid (scale 6 → 64 rows) so the tuned
/// selector is in-bounds.
fn roster() -> Vec<(&'static str, Csr<f64>, Csr<f64>)> {
    let mut rng = spgemm_gen::rng(42);
    let a = rmat::generate_kind(RmatKind::G500, 6, 4, &mut rng);
    let au = perm::randomize_columns(&a, &mut rng);
    let sym = ops::symmetrize_simple(&a).unwrap();
    let (l, u) = ops::split_lu(&sym).unwrap();
    let lu_u = perm::randomize_columns(&l, &mut rng);
    let uu = perm::randomize_columns(&u, &mut rng);
    let ts = tallskinny::tall_skinny(&a, 4, &mut rng).unwrap();
    let tsu = perm::randomize_columns(&ts, &mut rng);
    vec![
        ("square-sorted", a.clone(), a.clone()),
        ("square-unsorted", au.clone(), au),
        ("lxu-sorted", l, u),
        ("lxu-unsorted", lu_u, uu),
        ("tall-skinny-sorted", a, ts),
        (
            "tall-skinny-unsorted",
            rmat::generate_kind(RmatKind::G500, 6, 4, &mut rng),
            tsu,
        ),
    ]
}

#[test]
fn without_profile_auto_is_exactly_the_static_recipe() {
    let _guard = hook_lock();
    recipe::clear_auto_hook();
    for (label, a, b) in roster() {
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let ctx = auto_context(&a, &b, order);
            assert_eq!(
                recipe::auto_select(&a, &b, order),
                recipe::static_select(&ctx),
                "{label} {order:?}"
            );
        }
    }
}

#[test]
fn static_recipe_picks_expected_table4_algorithms() {
    let _guard = hook_lock();
    recipe::clear_auto_hook();
    // Pin the concrete Table-4b picks for the roster so a regression
    // in either auto_context or static_select is visible, not just
    // self-consistency. The G500 scale-6 ef-4 generator measures an
    // edge factor ≤ 8, so Table 4b's "sparse" column applies to the
    // square cases whichever way the pattern classifies.
    let roster = roster();
    let pick = |i: usize, order| recipe::auto_select(&roster[i].1, &roster[i].2, order);
    // square sorted input: sparse skewed → Heap (sorted out)
    assert_eq!(pick(0, OutputOrder::Sorted), Algorithm::Heap);
    assert_eq!(pick(0, OutputOrder::Unsorted), Algorithm::HashVec);
    // square unsorted input: Heap is invalid → Hash under sorted out
    assert_eq!(pick(1, OutputOrder::Sorted), Algorithm::Hash);
    assert_eq!(pick(1, OutputOrder::Unsorted), Algorithm::HashVec);
    // tall-skinny sorted, skewed sparse → Hash both ways (Table 4b)
    assert_eq!(pick(4, OutputOrder::Sorted), Algorithm::Hash);
    assert_eq!(pick(4, OutputOrder::Unsorted), Algorithm::Hash);
}

#[test]
fn with_profile_auto_resolves_through_the_tuned_selector() {
    let _guard = hook_lock();
    let pool = Pool::new(2);
    let profile = spgemm_tune::calibrate(&CalibrationConfig::quick(), &pool);
    let selector = TunedSelector::new(profile);
    selector.install();

    let mut consulted = 0usize;
    for (label, a, b) in roster() {
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let ctx = auto_context(&a, &b, order);
            let auto_pick = recipe::auto_select(&a, &b, order);
            match selector.select(&ctx) {
                Some(tuned_pick) => {
                    consulted += 1;
                    assert_eq!(
                        auto_pick, tuned_pick,
                        "{label} {order:?} must use the profile"
                    );
                }
                None => {
                    assert_eq!(
                        auto_pick,
                        recipe::static_select(&ctx),
                        "{label} {order:?} outside grid must fall back"
                    );
                }
            }
        }
    }
    // The quick calibration covers the square and tall-skinny cells of
    // this roster; if nothing consulted the profile the test is vacuous.
    assert!(consulted >= 6, "profile consulted only {consulted} times");
    spgemm_tune::uninstall();
    assert!(!spgemm_tune::installed());
}

#[test]
fn out_of_grid_input_falls_back_even_with_profile() {
    let _guard = hook_lock();
    let pool = Pool::new(1);
    // Calibrated at 64 rows; a 4096-row input is 64× larger — outside
    // the ×4 margin, so Auto must take the static path.
    let profile = spgemm_tune::calibrate(&CalibrationConfig::quick(), &pool);
    let selector = TunedSelector::new(profile);
    selector.install();
    let mut rng = spgemm_gen::rng(7);
    let big = rmat::generate_kind(RmatKind::Er, 12, 4, &mut rng);
    let ctx = auto_context(&big, &big, OutputOrder::Sorted);
    assert_eq!(
        selector.select(&ctx),
        None,
        "must be outside the calibrated grid"
    );
    assert_eq!(
        recipe::auto_select(&big, &big, OutputOrder::Sorted),
        recipe::static_select(&ctx)
    );
    spgemm_tune::uninstall();
}

#[test]
fn multiply_with_auto_works_under_both_regimes() {
    let _guard = hook_lock();
    let pool = Pool::new(2);
    let mut rng = spgemm_gen::rng(3);
    let a = rmat::generate_kind(RmatKind::Er, 6, 4, &mut rng);
    let reference = spgemm::multiply_in::<spgemm_sparse::PlusTimes<f64>>(
        &a,
        &a,
        Algorithm::Reference,
        OutputOrder::Sorted,
        &pool,
    )
    .unwrap();

    recipe::clear_auto_hook();
    let static_c = spgemm::multiply_in::<spgemm_sparse::PlusTimes<f64>>(
        &a,
        &a,
        Algorithm::Auto,
        OutputOrder::Sorted,
        &pool,
    )
    .unwrap();
    assert!(spgemm_sparse::approx_eq_f64(&reference, &static_c, 1e-12));

    let profile = spgemm_tune::calibrate(&CalibrationConfig::quick(), &pool);
    TunedSelector::new(profile).install();
    let tuned_c = spgemm::multiply_in::<spgemm_sparse::PlusTimes<f64>>(
        &a,
        &a,
        Algorithm::Auto,
        OutputOrder::Sorted,
        &pool,
    )
    .unwrap();
    assert!(spgemm_sparse::approx_eq_f64(&reference, &tuned_c, 1e-12));
    spgemm_tune::uninstall();
}

#[test]
fn saved_profile_round_trips_through_the_store() {
    let _guard = hook_lock();
    let pool = Pool::new(1);
    let mut profile = spgemm_tune::calibrate(&CalibrationConfig::quick(), &pool);
    // Pin the persistence key fields so the test controls the path.
    profile.hostname = "itest-host".into();
    let dir = std::env::temp_dir().join(format!("spgemm-tune-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    std::fs::write(&path, profile.to_json()).unwrap();
    let back = spgemm_tune::store::load_from(&path).unwrap();
    assert_eq!(back, profile);
    // identical decisions over the whole roster
    let a = TunedSelector::new(profile);
    let b = TunedSelector::new(back);
    for (label, x, y) in roster() {
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let ctx = auto_context(&x, &y, order);
            assert_eq!(a.select(&ctx), b.select(&ctx), "{label} {order:?}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
