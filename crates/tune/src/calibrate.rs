//! The one-time calibration sweep: time every algorithm over a small
//! grid of generated inputs and distill a [`MachineProfile`].
//!
//! The grid crosses the axes of the paper's Table 4 — generator
//! family (R-MAT ER = uniform, R-MAT G500 = skewed, 2-D Poisson),
//! edge factor (sparse vs dense), operand shape (square vs
//! tall-skinny), input sortedness, and requested output order — so
//! every cell the static recipe distinguishes gets an empirical
//! winner on *this* machine. The sweep also measures the hash
//! collision factor `c`, the free parameter of `spgemm::cost` Eq (2)
//! the paper says must be measured per machine.

use crate::profile::{AlgoScore, CellEntry, CellKey, GridBounds, MachineProfile, PROFILE_VERSION};
use spgemm::recipe::auto_context;
use spgemm::{cost, multiply_in, Algorithm, OutputOrder, SpgemmPlan};
use spgemm_gen::{perm, poisson, rmat, tallskinny, RmatKind};
use spgemm_par::Pool;
use spgemm_sparse::{Csr, PlusTimes};
use std::time::Instant;

/// Knobs of one sweep. Defaults finish in seconds on a laptop-class
/// container; raise `scale` (and accept a longer sweep) to calibrate
/// closer to production problem sizes.
#[derive(Clone, Debug)]
pub struct CalibrationConfig {
    /// R-MAT scale: square inputs are `2^scale` rows.
    pub scale: u32,
    /// Edge factors to sweep (mean nnz/row); each lands in its own
    /// profile bucket. The defaults straddle the paper's
    /// sparse/dense boundary of 8.
    pub edge_factors: Vec<usize>,
    /// Timing repetitions per (input, algorithm, order); median kept.
    pub reps: usize,
    /// Generator seed.
    pub seed: u64,
    /// Also sweep the 2-D Poisson stencil (a uniform, FEM-like row
    /// pattern distinct from R-MAT ER).
    pub include_poisson: bool,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            scale: 9,
            edge_factors: vec![4, 16],
            reps: 3,
            seed: 20180804,
            include_poisson: true,
        }
    }
}

impl CalibrationConfig {
    /// A sweep small enough for tests and smoke runs (< ~1 s).
    pub fn quick() -> Self {
        CalibrationConfig {
            scale: 6,
            reps: 1,
            ..Default::default()
        }
    }
}

/// Raw timings for one (input, output-order) scenario of the sweep.
#[derive(Clone, Debug)]
pub struct SweepRecord {
    /// Human-readable input description (generator, size, sortedness).
    pub label: String,
    /// The profile cell this scenario feeds.
    pub key: CellKey,
    /// Median seconds per algorithm (contract-violating algorithms
    /// are absent).
    pub timings: Vec<(Algorithm, f64)>,
    /// Median seconds per *plan-amortized* multiply: one
    /// [`SpgemmPlan`] built up front, then repeated
    /// `execute_into` calls — the steady state of MCL/AMG-style
    /// iteration, with the symbolic phase and all accumulator
    /// allocations amortized away.
    pub plan_timings: Vec<(Algorithm, f64)>,
}

/// Run the sweep and build the profile; also returns the raw records
/// for reporting.
pub fn calibrate_with_report(
    cfg: &CalibrationConfig,
    pool: &Pool,
) -> (MachineProfile, Vec<SweepRecord>) {
    let mut records = Vec::new();
    let mut nrows_seen: Vec<usize> = Vec::new();
    let mut collision_samples: Vec<f64> = Vec::new();
    let mut rng = spgemm_gen::rng(cfg.seed);

    // --- assemble the input grid -----------------------------------
    // (label, A, B, A is B [square case])
    let mut pairs: Vec<(String, Csr<f64>, Csr<f64>)> = Vec::new();
    for kind in [RmatKind::Er, RmatKind::G500] {
        for &ef in &cfg.edge_factors {
            let a = rmat::generate_kind(kind, cfg.scale, ef, &mut rng);
            let au = perm::randomize_columns(&a, &mut rng);
            let k = (a.nrows() / 16).max(1);
            let ts = tallskinny::tall_skinny(&a, k, &mut rng)
                .expect("tall-skinny columns within bounds");
            let tsu = perm::randomize_columns(&ts, &mut rng);
            let base = format!("{}-s{}-ef{}", kind.name(), cfg.scale, ef);
            collision_samples.push(cost::measure_collision_factor::<PlusTimes<f64>>(&a, &a));
            pairs.push((format!("{base}-sq-sorted"), a.clone(), a.clone()));
            pairs.push((format!("{base}-sq-unsorted"), au.clone(), au.clone()));
            pairs.push((format!("{base}-ts-sorted"), a, ts));
            pairs.push((format!("{base}-ts-unsorted"), au, tsu));
        }
    }
    if cfg.include_poisson {
        // grid side ≈ sqrt(2^scale) gives ~2^scale rows, matching the
        // R-MAT sizes (the stencil's ef is ~5, uniform); rounding —
        // rather than truncating the exponent — keeps odd scales from
        // halving the row count and widening the profile's size
        // bounds.
        let side = (2f64.powi(cfg.scale as i32)).sqrt().round() as usize;
        let p = poisson::poisson2d(side);
        let pu = perm::randomize_columns(&p, &mut rng);
        pairs.push((format!("poisson-{side}x{side}-sorted"), p.clone(), p));
        pairs.push((format!("poisson-{side}x{side}-unsorted"), pu.clone(), pu));
    }

    // --- time the roster over the grid -----------------------------
    for (label, a, b) in &pairs {
        nrows_seen.push(a.nrows());
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let ctx = auto_context(a, b, order);
            let key = CellKey::of(&ctx);
            let mut timings = Vec::new();
            let mut plan_timings = Vec::new();
            for algo in Algorithm::ALL {
                // Only time algorithms whose result would be valid for
                // this cell: sorted-input kernels need sorted operands,
                // and a sorted-output cell excludes Inspector (which
                // would "win" only by skipping the required sort).
                if !spgemm::recipe::pick_admissible(&ctx, algo) {
                    continue;
                }
                if let Some(secs) = time_multiply(a, b, algo, order, pool, cfg.reps) {
                    timings.push((algo, secs));
                }
                if let Some(secs) = time_plan_amortized(a, b, algo, order, pool, cfg.reps) {
                    plan_timings.push((algo, secs));
                }
            }
            records.push(SweepRecord {
                label: format!(
                    "{label}-{}",
                    if order.is_sorted() {
                        "out_sorted"
                    } else {
                        "out_unsorted"
                    }
                ),
                key,
                timings,
                plan_timings,
            });
        }
    }

    // --- distill records into cells --------------------------------
    let cells = build_cells(&records);
    let collision_factor = if collision_samples.is_empty() {
        1.0
    } else {
        collision_samples.iter().sum::<f64>() / collision_samples.len() as f64
    };
    let profile = MachineProfile {
        version: PROFILE_VERSION,
        hostname: crate::store::hostname(),
        threads: pool.nthreads(),
        collision_factor,
        bounds: GridBounds {
            nrows_min: nrows_seen.iter().copied().min().unwrap_or(0),
            nrows_max: nrows_seen.iter().copied().max().unwrap_or(0),
        },
        cells,
    };
    (profile, records)
}

/// Run the sweep and build the profile.
pub fn calibrate(cfg: &CalibrationConfig, pool: &Pool) -> MachineProfile {
    calibrate_with_report(cfg, pool).0
}

/// Whether an algorithm may be *served* by the tuned selector.
///
/// Reference (the sequential `BTreeMap` test oracle) and IKJ (the
/// quadratic background baseline) are timed during the sweep — their
/// numbers appear in the [`SweepRecord`]s and the `tune` binary's
/// report — but are never eligible cell winners: at calibration sizes
/// they can out-time the parallel kernels on startup overhead alone,
/// and extrapolating that to the ×4 size margin the selector admits
/// would route production multiplies through a test kernel.
pub fn selectable(algo: Algorithm) -> bool {
    !matches!(algo, Algorithm::Reference | Algorithm::Ikj)
}

/// Median wall-clock seconds for `reps` multiplies (after one warmup
/// that doubles as the contract check); `None` when the combination
/// is invalid.
fn time_multiply(
    a: &Csr<f64>,
    b: &Csr<f64>,
    algo: Algorithm,
    order: OutputOrder,
    pool: &Pool,
    reps: usize,
) -> Option<f64> {
    multiply_in::<PlusTimes<f64>>(a, b, algo, order, pool).ok()?;
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let c = multiply_in::<PlusTimes<f64>>(a, b, algo, order, pool).ok()?;
        times.push(t.elapsed().as_secs_f64());
        std::hint::black_box(c.nnz());
    }
    times.sort_by(|x, y| x.total_cmp(y));
    Some(times[times.len() / 2])
}

/// Median wall-clock seconds per *plan-amortized* multiply: build the
/// [`SpgemmPlan`] once, warm it (first execution also captures the
/// deferred symbolic structure of one-phase kernels and sizes the
/// reused output), then time repeated numeric-only `execute_into`
/// calls. `None` when the combination is invalid.
fn time_plan_amortized(
    a: &Csr<f64>,
    b: &Csr<f64>,
    algo: Algorithm,
    order: OutputOrder,
    pool: &Pool,
    reps: usize,
) -> Option<f64> {
    let plan = SpgemmPlan::<PlusTimes<f64>>::new_in(a, b, algo, order, pool).ok()?;
    let mut c = plan.execute_in(a, b, pool).ok()?;
    plan.execute_into_in(a, b, &mut c, pool).ok()?;
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        plan.execute_into_in(a, b, &mut c, pool).ok()?;
        times.push(t.elapsed().as_secs_f64());
        std::hint::black_box(c.nnz());
    }
    times.sort_by(|x, y| x.total_cmp(y));
    Some(times[times.len() / 2])
}

/// Group records by cell and rank algorithms by mean slowdown
/// relative to each record's fastest (so differently-sized inputs in
/// one cell weigh equally). The plan-amortized timings are aggregated
/// the same way — relative to each record's fastest *amortized*
/// algorithm — into `plan_rel_slowdown` and the cell's `plan_winner`.
fn build_cells(records: &[SweepRecord]) -> Vec<CellEntry> {
    #[derive(Default)]
    struct Agg {
        rels: Vec<f64>,
        total_secs: f64,
        plan_rels: Vec<f64>,
    }
    type Accum = Vec<(Algorithm, Agg)>;
    let mut cells: Vec<(CellKey, Accum)> = Vec::new();
    for rec in records {
        // Rank only algorithms the selector may serve (see
        // [`selectable`]); the baselines stay in the raw records.
        let timings: Vec<(Algorithm, f64)> = rec
            .timings
            .iter()
            .copied()
            .filter(|&(a, _)| selectable(a))
            .collect();
        let Some(&(_, best)) = timings.iter().min_by(|(_, x), (_, y)| x.total_cmp(y)) else {
            continue;
        };
        let plan_timings: Vec<(Algorithm, f64)> = rec
            .plan_timings
            .iter()
            .copied()
            .filter(|&(a, _)| selectable(a))
            .collect();
        let plan_best = plan_timings
            .iter()
            .map(|&(_, s)| s)
            .min_by(|x, y| x.total_cmp(y));
        let slot = match cells.iter_mut().find(|(k, _)| *k == rec.key) {
            Some((_, v)) => v,
            None => {
                cells.push((rec.key, Vec::new()));
                &mut cells.last_mut().unwrap().1
            }
        };
        let entry = |slot: &mut Accum, algo: Algorithm| -> usize {
            match slot.iter().position(|(a, _)| *a == algo) {
                Some(i) => i,
                None => {
                    slot.push((algo, Agg::default()));
                    slot.len() - 1
                }
            }
        };
        for &(algo, secs) in &timings {
            let rel = if best > 0.0 { secs / best } else { 1.0 };
            let i = entry(slot, algo);
            slot[i].1.rels.push(rel);
            slot[i].1.total_secs += secs;
        }
        if let Some(pbest) = plan_best {
            for &(algo, secs) in &plan_timings {
                let rel = if pbest > 0.0 { secs / pbest } else { 1.0 };
                let i = entry(slot, algo);
                slot[i].1.plan_rels.push(rel);
            }
        }
    }
    cells
        .into_iter()
        .filter_map(|(key, algos)| {
            let mut ranking: Vec<AlgoScore> = algos
                .into_iter()
                .filter(|(_, agg)| !agg.rels.is_empty())
                .map(|(algo, agg)| AlgoScore {
                    algo,
                    rel_slowdown: agg.rels.iter().sum::<f64>() / agg.rels.len() as f64,
                    total_secs: agg.total_secs,
                    plan_rel_slowdown: if agg.plan_rels.is_empty() {
                        None
                    } else {
                        Some(agg.plan_rels.iter().sum::<f64>() / agg.plan_rels.len() as f64)
                    },
                })
                .collect();
            ranking.sort_by(|x, y| x.rel_slowdown.total_cmp(&y.rel_slowdown));
            let winner = ranking.first()?.algo;
            let plan_winner = ranking
                .iter()
                .filter(|s| s.plan_rel_slowdown.is_some())
                .min_by(|x, y| {
                    x.plan_rel_slowdown
                        .unwrap()
                        .total_cmp(&y.plan_rel_slowdown.unwrap())
                })
                .map(|s| s.algo);
            Some(CellEntry {
                key,
                winner,
                plan_winner,
                ranking,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_a_usable_profile() {
        let pool = Pool::new(2);
        let cfg = CalibrationConfig::quick();
        let (profile, records) = calibrate_with_report(&cfg, &pool);
        assert!(!profile.cells.is_empty());
        assert!(!records.is_empty());
        assert!(profile.collision_factor >= 1.0);
        assert_eq!(profile.threads, 2);
        assert_eq!(profile.bounds.nrows_min, 64);
        assert_eq!(profile.bounds.nrows_max, 64);
        // every cell's winner heads its own ranking and respects the
        // cell's sortedness
        for cell in &profile.cells {
            assert_eq!(cell.winner, cell.ranking[0].algo);
            // the plan path was measured for every serveable cell, and
            // its winner is one of the ranked algorithms
            let pw = cell.plan_winner.expect("plan path swept");
            assert!(cell.ranking.iter().any(|s| s.algo == pw));
            assert!(cell
                .ranking
                .iter()
                .all(|s| s.plan_rel_slowdown.unwrap_or(1.0) >= 1.0 - 1e-12));
            assert!((cell.ranking[0].rel_slowdown - 1.0).abs() < 0.5);
            if !cell.key.sorted_inputs {
                assert!(!cell.winner.requires_sorted_inputs());
            }
            // a sorted-output cell may not even rank Inspector: it
            // cannot deliver sorted rows natively
            if cell.key.order.is_sorted() {
                assert!(cell.ranking.iter().all(|s| s.algo.honours_sorted_output()));
            }
            // test-only baselines are timed but never ranked
            assert!(cell.ranking.iter().all(|s| selectable(s.algo)));
        }
        // both orders and both sortedness classes were swept
        assert!(profile.cells.iter().any(|c| c.key.order.is_sorted()));
        assert!(profile.cells.iter().any(|c| !c.key.order.is_sorted()));
        assert!(profile.cells.iter().any(|c| c.key.sorted_inputs));
        assert!(profile.cells.iter().any(|c| !c.key.sorted_inputs));
    }

    #[test]
    fn sweep_covers_square_and_tall_skinny() {
        let pool = Pool::new(1);
        let profile = calibrate(&CalibrationConfig::quick(), &pool);
        use spgemm::recipe::OpKind;
        assert!(profile.cells.iter().any(|c| c.key.op == OpKind::Square));
        assert!(profile.cells.iter().any(|c| c.key.op == OpKind::TallSkinny));
    }

    #[test]
    fn build_cells_ranks_relative_not_absolute() {
        use spgemm::recipe::{OpKind, Pattern};
        let key = CellKey {
            op: OpKind::Square,
            pattern: Pattern::Uniform,
            ef_bucket: 2,
            sorted_inputs: true,
            order: OutputOrder::Sorted,
        };
        // Input 1 is 100x slower overall but prefers Hash; input 2
        // prefers Heap mildly. Relative scoring must not let input
        // 1's absolute magnitude drown input 2.
        let records = vec![
            SweepRecord {
                label: "big".into(),
                key,
                timings: vec![(Algorithm::Hash, 1.0), (Algorithm::Heap, 3.0)],
                plan_timings: vec![(Algorithm::Hash, 0.9), (Algorithm::Heap, 2.7)],
            },
            SweepRecord {
                label: "small".into(),
                key,
                timings: vec![(Algorithm::Hash, 0.012), (Algorithm::Heap, 0.01)],
                plan_timings: vec![(Algorithm::Hash, 0.011), (Algorithm::Heap, 0.009)],
            },
        ];
        let cells = build_cells(&records);
        assert_eq!(cells.len(), 1);
        // Hash: mean(1.0, 1.2) = 1.1; Heap: mean(3.0, 1.0) = 2.0
        assert_eq!(cells[0].winner, Algorithm::Hash);
        // Amortized: Hash mean(1.0, 1.22) ≈ 1.11; Heap mean(3.0, 1.0) = 2.0
        assert_eq!(cells[0].plan_winner, Some(Algorithm::Hash));
        for score in &cells[0].ranking {
            assert!(score.plan_rel_slowdown.is_some());
        }
    }

    #[test]
    fn build_cells_tolerates_missing_plan_timings() {
        use spgemm::recipe::{OpKind, Pattern};
        let key = CellKey {
            op: OpKind::Square,
            pattern: Pattern::Uniform,
            ef_bucket: 2,
            sorted_inputs: true,
            order: OutputOrder::Sorted,
        };
        let records = vec![SweepRecord {
            label: "no-plan".into(),
            key,
            timings: vec![(Algorithm::Hash, 1.0)],
            plan_timings: vec![],
        }];
        let cells = build_cells(&records);
        assert_eq!(cells[0].plan_winner, None);
        assert_eq!(cells[0].ranking[0].plan_rel_slowdown, None);
    }
}
