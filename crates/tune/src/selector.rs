//! The tuned selector: a pure function from multiply context to
//! algorithm, backed by a [`MachineProfile`], installable as the
//! [`spgemm::recipe`] auto-hook.

use crate::profile::{CellKey, MachineProfile};
use spgemm::recipe::{self, AutoContext};
use spgemm::Algorithm;
use std::sync::Arc;

/// Answers `Algorithm::Auto` queries from a calibrated profile.
///
/// Selection is **deterministic**: the same profile and the same
/// context always yield the same answer. The selector declines
/// (returns `None`) whenever the query falls outside the calibrated
/// grid — unknown cell, or a row count far outside the swept sizes —
/// so the caller (the `Auto` path in `spgemm`) falls back to the
/// paper's static Table-4 recipe.
#[derive(Clone, Debug)]
pub struct TunedSelector {
    profile: Arc<MachineProfile>,
}

impl TunedSelector {
    /// Wrap a profile.
    pub fn new(profile: MachineProfile) -> Self {
        TunedSelector {
            profile: Arc::new(profile),
        }
    }

    /// The backing profile.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// The calibrated choice for `ctx`, or `None` if outside the grid.
    ///
    /// Within a cell the winner is taken unless the context rules it
    /// out ([`spgemm::recipe::pick_admissible`]: input sortedness or
    /// output-order contract — possible when a hand-edited or stale
    /// profile is consulted); then the best-ranked admissible
    /// algorithm is used instead.
    pub fn select(&self, ctx: &AutoContext) -> Option<Algorithm> {
        if !self.profile.bounds.admits(ctx.nrows) {
            return None;
        }
        let cell = self.profile.cell(&CellKey::of(ctx))?;
        if recipe::pick_admissible(ctx, cell.winner) {
            return Some(cell.winner);
        }
        cell.ranking
            .iter()
            .map(|s| s.algo)
            .find(|&a| recipe::pick_admissible(ctx, a))
    }

    /// Install this selector as the process-wide `Algorithm::Auto`
    /// hook, replacing any previous one. (The profile's measured
    /// [`MachineProfile::collision_factor`] is not applied anywhere
    /// automatically — pass it to `spgemm::cost` estimates yourself.)
    pub fn install(&self) {
        let sel = self.clone();
        recipe::set_auto_hook(Arc::new(move |ctx| sel.select(ctx)));
    }
}

/// Remove any installed tuned selector, restoring the static recipe.
pub fn uninstall() {
    recipe::clear_auto_hook();
}

/// Whether a tuned selector (or any auto-hook) is installed.
pub fn installed() -> bool {
    recipe::auto_hook_installed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{AlgoScore, CellEntry, GridBounds, PROFILE_VERSION};
    use spgemm::recipe::{OpKind, Pattern};
    use spgemm::OutputOrder;

    fn ctx(nrows: usize, ef: f64, sorted: bool, order: OutputOrder) -> AutoContext {
        AutoContext {
            op: OpKind::Square,
            pattern: Pattern::Uniform,
            nrows,
            ncols_a: nrows,
            ncols_b: nrows,
            nnz_a: (nrows as f64 * ef) as usize,
            edge_factor: ef,
            row_cv: 0.3,
            sorted_inputs: sorted,
            order,
        }
    }

    fn profile_with(winner: Algorithm, ranking: Vec<AlgoScore>) -> MachineProfile {
        MachineProfile {
            version: PROFILE_VERSION,
            hostname: "t".into(),
            threads: 1,
            collision_factor: 1.0,
            bounds: GridBounds {
                nrows_min: 512,
                nrows_max: 512,
            },
            cells: vec![CellEntry {
                key: CellKey {
                    op: OpKind::Square,
                    pattern: Pattern::Uniform,
                    ef_bucket: 2,
                    sorted_inputs: true,
                    order: OutputOrder::Sorted,
                },
                winner,
                plan_winner: None,
                ranking,
            }],
        }
    }

    #[test]
    fn hit_returns_winner() {
        let sel = TunedSelector::new(profile_with(Algorithm::Spa, vec![]));
        assert_eq!(
            sel.select(&ctx(512, 4.0, true, OutputOrder::Sorted)),
            Some(Algorithm::Spa)
        );
    }

    #[test]
    fn out_of_bounds_declines() {
        let sel = TunedSelector::new(profile_with(Algorithm::Spa, vec![]));
        assert_eq!(
            sel.select(&ctx(1 << 20, 4.0, true, OutputOrder::Sorted)),
            None
        );
        assert_eq!(sel.select(&ctx(8, 4.0, true, OutputOrder::Sorted)), None);
    }

    #[test]
    fn unknown_cell_declines() {
        let sel = TunedSelector::new(profile_with(Algorithm::Spa, vec![]));
        // ef bucket 5 was never calibrated
        assert_eq!(sel.select(&ctx(512, 40.0, true, OutputOrder::Sorted)), None);
        // unsorted inputs were never calibrated either
        assert_eq!(sel.select(&ctx(512, 4.0, false, OutputOrder::Sorted)), None);
    }

    #[test]
    fn contract_violating_winner_falls_to_ranking() {
        // Cell calibrated as sorted picked Heap; query pretends the
        // cell matched but inputs are unsorted (possible only via a
        // hand-built profile, but the invariant must hold).
        let mut p = profile_with(
            Algorithm::Heap,
            vec![
                AlgoScore {
                    algo: Algorithm::Heap,
                    rel_slowdown: 1.0,
                    total_secs: 0.1,
                    plan_rel_slowdown: None,
                },
                AlgoScore {
                    algo: Algorithm::Hash,
                    rel_slowdown: 1.1,
                    total_secs: 0.11,
                    plan_rel_slowdown: None,
                },
            ],
        );
        p.cells[0].key.sorted_inputs = false;
        let sel = TunedSelector::new(p);
        assert_eq!(
            sel.select(&ctx(512, 4.0, false, OutputOrder::Sorted)),
            Some(Algorithm::Hash)
        );
    }
}
