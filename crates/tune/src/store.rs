//! Where machine profiles live on disk and how they are found.
//!
//! Layout: one JSON file per (hostname, thread-count) pair inside the
//! profile directory —
//!
//! ```text
//! $SPGEMM_TUNE_DIR/                  # or ~/.cache/spgemm-tune
//!   profile-v1-<hostname>-t<threads>.json
//! ```
//!
//! The directory is resolved, in order, from `SPGEMM_TUNE_DIR`,
//! `$XDG_CACHE_HOME/spgemm-tune`, `$HOME/.cache/spgemm-tune`, and
//! finally `./.spgemm-tune`.

use crate::profile::{MachineProfile, ProfileError, PROFILE_VERSION};
use std::path::{Path, PathBuf};

/// Environment variable overriding the profile directory.
pub const TUNE_DIR_ENV: &str = "SPGEMM_TUNE_DIR";

/// The directory profiles are saved to and loaded from.
pub fn profile_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os(TUNE_DIR_ENV).filter(|v| !v.is_empty()) {
        return PathBuf::from(dir);
    }
    if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME").filter(|v| !v.is_empty()) {
        return Path::new(&xdg).join("spgemm-tune");
    }
    if let Some(home) = std::env::var_os("HOME").filter(|v| !v.is_empty()) {
        return Path::new(&home).join(".cache").join("spgemm-tune");
    }
    PathBuf::from(".spgemm-tune")
}

/// This machine's name, sanitized for use in a file name.
pub fn hostname() -> String {
    let raw = std::env::var("HOSTNAME")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .unwrap_or_default();
    let cleaned: String = raw
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unknown-host".to_owned()
    } else {
        cleaned
    }
}

/// File path for a (hostname, threads) profile.
pub fn profile_path(host: &str, threads: usize) -> PathBuf {
    profile_dir().join(format!("profile-v{PROFILE_VERSION}-{host}-t{threads}.json"))
}

/// Persist `profile` under its own hostname/threads key, creating the
/// directory if needed. Returns the path written.
pub fn save(profile: &MachineProfile) -> std::io::Result<PathBuf> {
    let path = profile_path(&profile.hostname, profile.threads);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    // Write-then-rename so a crashed sweep never leaves a torn file
    // where `load` would find it; the tmp name carries the pid so
    // concurrent savers never publish each other's half-written bytes.
    let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
    std::fs::write(&tmp, profile.to_json())?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Load the profile for this host at `threads` workers, if one exists
/// and decodes cleanly. Any failure (missing file, old schema,
/// corruption) is reported as `None`-with-reason so callers can fall
/// back to the static recipe.
pub fn load(threads: usize) -> Result<MachineProfile, LoadError> {
    load_from(&profile_path(&hostname(), threads))
}

/// [`load`] from an explicit path.
pub fn load_from(path: &Path) -> Result<MachineProfile, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    let profile = MachineProfile::from_json(&text).map_err(LoadError::Decode)?;
    Ok(profile)
}

/// Why a profile could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// File missing or unreadable.
    Io(std::io::Error),
    /// File present but not a valid current-version profile.
    Decode(ProfileError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "profile unreadable: {e}"),
            LoadError::Decode(e) => write!(f, "profile invalid: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{GridBounds, MachineProfile};

    fn tiny(host: &str, threads: usize) -> MachineProfile {
        MachineProfile {
            version: PROFILE_VERSION,
            hostname: host.into(),
            threads,
            collision_factor: 1.0,
            bounds: GridBounds {
                nrows_min: 1,
                nrows_max: 2,
            },
            cells: vec![],
        }
    }

    #[test]
    fn save_then_load_from_round_trips() {
        let dir = std::env::temp_dir().join(format!("spgemm-tune-test-{}", std::process::id()));
        let p = tiny("round-trip-host", 3);
        // Avoid racing sibling tests on the env var: drive the paths
        // directly rather than through profile_dir().
        let path = dir.join(format!(
            "profile-v{PROFILE_VERSION}-round-trip-host-t3.json"
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, p.to_json()).unwrap();
        let back = load_from(&path).unwrap();
        assert_eq!(back, p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_from(Path::new("/nonexistent/spgemm-profile.json")) {
            Err(LoadError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_file_is_decode_error() {
        let dir = std::env::temp_dir().join(format!("spgemm-tune-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        match load_from(&path) {
            Err(LoadError::Decode(_)) => {}
            other => panic!("expected Decode error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostname_is_filename_safe() {
        let h = hostname();
        assert!(!h.is_empty());
        assert!(
            h.chars()
                .all(|c| c.is_ascii_alphanumeric() || "-._".contains(c)),
            "{h}"
        );
    }
}
