//! Where machine profiles live on disk and how they are found.
//!
//! Layout: one JSON file per (hostname, thread-count) pair inside the
//! profile directory —
//!
//! ```text
//! $SPGEMM_TUNE_DIR/                  # or ~/.cache/spgemm-tune
//!   profile-v1-<hostname>-t<threads>.json
//! ```
//!
//! The directory is resolved, in order, from `SPGEMM_TUNE_DIR`,
//! `$XDG_CACHE_HOME/spgemm-tune`, `$HOME/.cache/spgemm-tune`, and
//! finally `./.spgemm-tune`.

use crate::profile::{MachineProfile, ProfileError, PROFILE_VERSION};
use std::path::{Path, PathBuf};

/// Environment variable overriding the profile directory.
pub const TUNE_DIR_ENV: &str = "SPGEMM_TUNE_DIR";

/// The directory profiles are saved to and loaded from.
pub fn profile_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os(TUNE_DIR_ENV).filter(|v| !v.is_empty()) {
        return PathBuf::from(dir);
    }
    if let Some(xdg) = std::env::var_os("XDG_CACHE_HOME").filter(|v| !v.is_empty()) {
        return Path::new(&xdg).join("spgemm-tune");
    }
    if let Some(home) = std::env::var_os("HOME").filter(|v| !v.is_empty()) {
        return Path::new(&home).join(".cache").join("spgemm-tune");
    }
    PathBuf::from(".spgemm-tune")
}

/// This machine's name, sanitized for use in a file name.
pub fn hostname() -> String {
    let raw = std::env::var("HOSTNAME")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
        .unwrap_or_default();
    let cleaned: String = raw
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unknown-host".to_owned()
    } else {
        cleaned
    }
}

/// File name prefix shared by all of `host`'s current-version
/// profiles (the thread count and `.json` suffix follow).
fn profile_file_prefix(host: &str) -> String {
    format!("profile-v{PROFILE_VERSION}-{host}-t")
}

/// File name of a (hostname, threads) profile.
fn profile_file_name(host: &str, threads: usize) -> String {
    format!("{}{threads}.json", profile_file_prefix(host))
}

/// File path for a (hostname, threads) profile.
pub fn profile_path(host: &str, threads: usize) -> PathBuf {
    profile_dir().join(profile_file_name(host, threads))
}

/// Persist `profile` under its own hostname/threads key, creating the
/// directory if needed. Returns the path written.
pub fn save(profile: &MachineProfile) -> std::io::Result<PathBuf> {
    let path = profile_path(&profile.hostname, profile.threads);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    // Write-then-rename so a crashed sweep never leaves a torn file
    // where `load` would find it; the tmp name carries the pid so
    // concurrent savers never publish each other's half-written bytes.
    let tmp = path.with_extension(format!("json.tmp.{}", std::process::id()));
    std::fs::write(&tmp, profile.to_json())?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Load the profile for this host at `threads` workers, if one exists
/// and decodes cleanly. Any failure (missing file, old schema,
/// corruption) is reported as `None`-with-reason so callers can fall
/// back to the static recipe.
pub fn load(threads: usize) -> Result<MachineProfile, LoadError> {
    load_from(&profile_path(&hostname(), threads))
}

/// Thread counts this host has calibrated profiles for, ascending.
///
/// Scans the profile directory for current-version files belonging to
/// `host`; unreadable directories simply yield an empty list.
pub fn calibrated_thread_counts(host: &str) -> Vec<usize> {
    calibrated_thread_counts_in(&profile_dir(), host)
}

/// [`calibrated_thread_counts`] against an explicit directory.
pub fn calibrated_thread_counts_in(dir: &Path, host: &str) -> Vec<usize> {
    let prefix = profile_file_prefix(host);
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut counts: Vec<usize> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter_map(|name| {
            let rest = name.strip_prefix(&prefix)?;
            let digits = rest.strip_suffix(".json")?;
            digits.parse::<usize>().ok()
        })
        .collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The calibrated thread count closest to `want`, or `None` if nothing
/// is calibrated. Ties (equidistant above and below) resolve to the
/// **larger** count: a profile measured with more parallelism is the
/// better stand-in for a pool that sits between two calibrations,
/// since contention effects grow with threads.
pub fn nearest_thread_count(available: &[usize], want: usize) -> Option<usize> {
    available.iter().copied().min_by_key(|&t| {
        let dist = t.abs_diff(want);
        // Smaller distance wins; on equal distance the larger count
        // wins (encoded by preferring the key with the *smaller*
        // negated value second).
        (dist, usize::MAX - t)
    })
}

/// Load the best available profile for this host at `threads` workers:
/// the exact thread count when calibrated, otherwise the nearest
/// calibrated count (see [`nearest_thread_count`]), walking outward
/// past unreadable/corrupt files until something loads. Returns the
/// profile together with the thread count it was calibrated at so
/// callers can tell whether the match was exact.
///
/// This is the lookup worker pools should use: a serving engine sized
/// at, say, 3 threads per worker on a host calibrated at 2 and 4
/// gets the 4-thread profile instead of silently reverting to the
/// static Table-4 recipe.
pub fn load_nearest(threads: usize) -> Result<(MachineProfile, usize), LoadError> {
    load_nearest_in(&profile_dir(), &hostname(), threads)
}

/// [`load_nearest`] against an explicit directory and host.
pub fn load_nearest_in(
    dir: &Path,
    host: &str,
    threads: usize,
) -> Result<(MachineProfile, usize), LoadError> {
    let path_for = |t: usize| dir.join(profile_file_name(host, t));
    let exact_err = match load_from(&path_for(threads)) {
        Ok(p) => return Ok((p, threads)),
        Err(e) => e,
    };
    // Every calibrated count, closest first (ties prefer larger, as
    // in `nearest_thread_count`); a count whose file turns out
    // unreadable or corrupt is skipped, not fatal — the next-nearest
    // calibration still beats the static recipe.
    let mut counts = calibrated_thread_counts_in(dir, host);
    counts.sort_by_key(|&t| (t.abs_diff(threads), usize::MAX - t));
    for t in counts {
        if t == threads {
            continue; // already failed above
        }
        if let Ok(p) = load_from(&path_for(t)) {
            return Ok((p, t));
        }
    }
    Err(exact_err)
}

/// [`load`] from an explicit path.
pub fn load_from(path: &Path) -> Result<MachineProfile, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    let profile = MachineProfile::from_json(&text).map_err(LoadError::Decode)?;
    Ok(profile)
}

/// Why a profile could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// File missing or unreadable.
    Io(std::io::Error),
    /// File present but not a valid current-version profile.
    Decode(ProfileError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "profile unreadable: {e}"),
            LoadError::Decode(e) => write!(f, "profile invalid: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{GridBounds, MachineProfile};

    fn tiny(host: &str, threads: usize) -> MachineProfile {
        MachineProfile {
            version: PROFILE_VERSION,
            hostname: host.into(),
            threads,
            collision_factor: 1.0,
            bounds: GridBounds {
                nrows_min: 1,
                nrows_max: 2,
            },
            cells: vec![],
        }
    }

    #[test]
    fn save_then_load_from_round_trips() {
        let dir = std::env::temp_dir().join(format!("spgemm-tune-test-{}", std::process::id()));
        let p = tiny("round-trip-host", 3);
        // Avoid racing sibling tests on the env var: drive the paths
        // directly rather than through profile_dir().
        let path = dir.join(format!(
            "profile-v{PROFILE_VERSION}-round-trip-host-t3.json"
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, p.to_json()).unwrap();
        let back = load_from(&path).unwrap();
        assert_eq!(back, p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_from(Path::new("/nonexistent/spgemm-profile.json")) {
            Err(LoadError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_file_is_decode_error() {
        let dir = std::env::temp_dir().join(format!("spgemm-tune-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        match load_from(&path) {
            Err(LoadError::Decode(_)) => {}
            other => panic!("expected Decode error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nearest_thread_count_picks_closest_and_breaks_ties_up() {
        assert_eq!(nearest_thread_count(&[], 4), None);
        assert_eq!(nearest_thread_count(&[2, 8], 2), Some(2));
        assert_eq!(nearest_thread_count(&[2, 8], 3), Some(2));
        assert_eq!(nearest_thread_count(&[2, 8], 6), Some(8));
        // Equidistant: prefer the larger calibration.
        assert_eq!(nearest_thread_count(&[2, 8], 5), Some(8));
        assert_eq!(nearest_thread_count(&[1, 2, 4, 16], 9), Some(4));
        assert_eq!(nearest_thread_count(&[4], 1000), Some(4));
    }

    #[test]
    fn calibrated_counts_scan_finds_only_matching_profiles() {
        let dir = std::env::temp_dir().join(format!("spgemm-tune-scan-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let host = "scan-host";
        for t in [8usize, 2] {
            let p = tiny(host, t);
            let path = dir.join(format!("profile-v{PROFILE_VERSION}-{host}-t{t}.json"));
            std::fs::write(&path, p.to_json()).unwrap();
        }
        // Distractors: other host, stale version, junk suffix.
        std::fs::write(
            dir.join(format!("profile-v{PROFILE_VERSION}-other-host-t4.json")),
            "{}",
        )
        .unwrap();
        std::fs::write(dir.join(format!("profile-v0-{host}-t4.json")), "{}").unwrap();
        std::fs::write(
            dir.join(format!("profile-v{PROFILE_VERSION}-{host}-tXX.json")),
            "{}",
        )
        .unwrap();
        let counts = calibrated_thread_counts_in(&dir, host);
        assert_eq!(counts, vec![2, 8]);
        // The worker-pool lookup: no exact t3 profile, nearest is t2.
        let (back, at) = load_nearest_in(&dir, host, 3).unwrap();
        assert_eq!((back.threads, at), (2, 2));
        // Exact match wins when present.
        let (back, at) = load_nearest_in(&dir, host, 8).unwrap();
        assert_eq!((back.threads, at), (8, 8));
        // A corrupt nearest candidate is walked past, not fatal: for
        // want=6 the tie-break order is t8 then t2; truncate t8 and
        // the lookup must still land on t2 (and for want=8, where the
        // exact file itself is the corrupt one, likewise fall to t2).
        std::fs::write(
            dir.join(format!("profile-v{PROFILE_VERSION}-{host}-t8.json")),
            "{truncated",
        )
        .unwrap();
        let (back, at) = load_nearest_in(&dir, host, 6).unwrap();
        assert_eq!((back.threads, at), (2, 2));
        let (back, at) = load_nearest_in(&dir, host, 8).unwrap();
        assert_eq!((back.threads, at), (2, 2));
        // Nothing loadable at all: the exact error surfaces.
        assert!(load_nearest_in(&dir, "other", 4).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrated_counts_missing_dir_is_empty() {
        assert!(calibrated_thread_counts_in(Path::new("/nonexistent/spgemm"), "h").is_empty());
    }

    #[test]
    fn hostname_is_filename_safe() {
        let h = hostname();
        assert!(!h.is_empty());
        assert!(
            h.chars()
                .all(|c| c.is_ascii_alphanumeric() || "-._".contains(c)),
            "{h}"
        );
    }
}
