//! Minimal JSON reading/writing for the machine-profile database.
//!
//! The build environment has no registry access, so serde is not
//! available; the profile schema is small and flat enough that a
//! ~200-line value model with a recursive-descent parser covers it.
//! Numbers round-trip through Rust's shortest-representation float
//! formatting, so `parse(emit(v)) == v` for every value this crate
//! produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, ample for this schema).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; `BTreeMap` keeps emission deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Read as number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Read as integer (rejecting fractional values).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Read as boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.get(key)
    }

    /// Serialize to a compact JSON string.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{:?}` prints the shortest string that parses
                    // back to the same f64.
                    let _ = write!(out, "{n:?}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional spelling.
                    out.push_str("null");
                }
            }
            Value::Str(s) => emit_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset for context.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // schema (profiles are ASCII); map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn round_trips_a_profile_like_document() {
        let doc = obj(&[
            ("version", Value::Num(1.0)),
            ("hostname", Value::Str("box-1".into())),
            ("collision", Value::Num(1.0625)),
            (
                "cells",
                Value::Arr(vec![obj(&[
                    ("winner", Value::Str("Hash".into())),
                    ("sorted", Value::Bool(true)),
                    (
                        "samples",
                        Value::Arr(vec![Value::Num(0.00123), Value::Num(3e-9)]),
                    ),
                ])]),
            ),
        ]);
        let text = doc.emit();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, 5e-324, -0.0, 123456789.123456] {
            let v = Value::Num(x);
            let back = parse(&v.emit()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}π";
        let v = Value::Str(s.into());
        assert_eq!(parse(&v.emit()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n \"a\" : [ 1 , true , \"x\" ] }\t").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }
}
