//! The versioned machine profile: what one calibration sweep learned
//! about this host, in a form that serializes to JSON and answers
//! selector queries deterministically.

use crate::json::{ParseError, Value};
use spgemm::recipe::{OpKind, Pattern};
use spgemm::{Algorithm, OutputOrder};
use std::collections::BTreeMap;

/// Schema version; bump on incompatible changes so stale profiles are
/// ignored rather than misread.
///
/// v2 added the plan-amortized timings (`AlgoScore::plan_rel_slowdown`,
/// `CellEntry::plan_winner`) measured through `spgemm::SpgemmPlan`
/// reuse; v1 profiles are recalibrated on first use.
pub const PROFILE_VERSION: u64 = 2;

/// How far outside the calibrated row-count range the selector still
/// trusts its cells (×/÷ this factor), before declining to the static
/// recipe.
pub const SIZE_MARGIN: usize = 4;

/// Map an edge factor (mean nnz per row) to its calibration bucket:
/// `floor(log2(ef))`, clamped to `[0, 15]`. Neighbouring real inputs
/// land in the same bucket as the calibration input that represents
/// them.
pub fn ef_bucket(edge_factor: f64) -> u8 {
    if edge_factor < 1.0 {
        return 0;
    }
    (edge_factor.log2().floor() as i64).clamp(0, 15) as u8
}

/// The discrete coordinates of one calibrated scenario.
///
/// Mirrors the features [`spgemm::recipe::AutoContext`] derives from
/// the operands, so a lookup at multiply time hits exactly the cell
/// whose generated input it resembles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// Square or tall-skinny (shape-inferred, as in `AutoContext`).
    pub op: OpKind,
    /// Uniform or skewed row distribution.
    pub pattern: Pattern,
    /// [`ef_bucket`] of the edge factor.
    pub ef_bucket: u8,
    /// Whether both operands were column-sorted.
    pub sorted_inputs: bool,
    /// Requested output order.
    pub order: OutputOrder,
}

impl CellKey {
    /// The key a given multiply context falls into.
    pub fn of(ctx: &spgemm::recipe::AutoContext) -> CellKey {
        CellKey {
            op: ctx.op,
            pattern: ctx.pattern,
            ef_bucket: ef_bucket(ctx.edge_factor),
            sorted_inputs: ctx.sorted_inputs,
            order: ctx.order,
        }
    }
}

/// One algorithm's aggregate standing within a cell.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgoScore {
    /// The algorithm.
    pub algo: Algorithm,
    /// Mean slowdown relative to the best algorithm on each calibrated
    /// input that mapped to this cell (1.0 = always fastest).
    pub rel_slowdown: f64,
    /// Total measured seconds across those inputs (diagnostic).
    pub total_secs: f64,
    /// Mean *plan-amortized* slowdown relative to the best amortized
    /// algorithm in the cell: per-multiply time when a
    /// `spgemm::SpgemmPlan` is reused across repeated products, so the
    /// symbolic phase and accumulator allocations are amortized away.
    /// `None` when the sweep did not measure the plan path.
    pub plan_rel_slowdown: Option<f64>,
}

/// One calibrated scenario with its measured ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct CellEntry {
    /// Where in the feature space this cell sits.
    pub key: CellKey,
    /// The fastest algorithm (lowest mean relative slowdown).
    pub winner: Algorithm,
    /// The fastest algorithm *under plan reuse* — what an iterative
    /// caller holding a `SpgemmPlan`/`PlanCache` should run. Often the
    /// one-shot winner, but two-phase kernels gain relative to
    /// one-phase ones once their symbolic pass is amortized.
    pub plan_winner: Option<Algorithm>,
    /// Every measured algorithm, best first.
    pub ranking: Vec<AlgoScore>,
}

/// The row-count extent of the calibration sweep; queries outside
/// `[nrows_min / SIZE_MARGIN, nrows_max * SIZE_MARGIN]` are declined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridBounds {
    /// Smallest calibrated row count.
    pub nrows_min: usize,
    /// Largest calibrated row count.
    pub nrows_max: usize,
}

impl GridBounds {
    /// Whether `nrows` is close enough to the calibrated sizes.
    pub fn admits(&self, nrows: usize) -> bool {
        nrows >= self.nrows_min / SIZE_MARGIN && nrows <= self.nrows_max.saturating_mul(SIZE_MARGIN)
    }
}

/// Everything one calibration sweep learned about a machine.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineProfile {
    /// Schema version ([`PROFILE_VERSION`]).
    pub version: u64,
    /// Host the sweep ran on.
    pub hostname: String,
    /// Worker threads the sweep used (profiles are per thread-count:
    /// crossover points move with parallelism).
    pub threads: usize,
    /// Measured hash collision factor `c` for `cost.rs` Eq (2).
    pub collision_factor: f64,
    /// Row-count extent of the sweep.
    pub bounds: GridBounds,
    /// Calibrated cells (order irrelevant; lookups scan).
    pub cells: Vec<CellEntry>,
}

impl MachineProfile {
    /// The entry for `key`, if that scenario was calibrated.
    pub fn cell(&self, key: &CellKey) -> Option<&CellEntry> {
        self.cells.iter().find(|c| c.key == *key)
    }

    /// The calibrated winner for `key` under plan reuse (repeated
    /// products amortizing one `spgemm::SpgemmPlan`), when measured.
    pub fn plan_winner(&self, key: &CellKey) -> Option<Algorithm> {
        self.cell(key).and_then(|c| c.plan_winner)
    }

    /// Serialize to the canonical JSON text.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("version".into(), Value::Num(self.version as f64));
        root.insert("hostname".into(), Value::Str(self.hostname.clone()));
        root.insert("threads".into(), Value::Num(self.threads as f64));
        root.insert("collision_factor".into(), Value::Num(self.collision_factor));
        let mut bounds = BTreeMap::new();
        bounds.insert("nrows_min".into(), Value::Num(self.bounds.nrows_min as f64));
        bounds.insert("nrows_max".into(), Value::Num(self.bounds.nrows_max as f64));
        root.insert("bounds".into(), Value::Obj(bounds));
        root.insert(
            "cells".into(),
            Value::Arr(self.cells.iter().map(cell_to_json).collect()),
        );
        Value::Obj(root).emit()
    }

    /// Parse a profile from JSON text, validating the schema version.
    pub fn from_json(text: &str) -> Result<MachineProfile, ProfileError> {
        let doc = crate::json::parse(text)?;
        let version = doc
            .get("version")
            .and_then(Value::as_u64)
            .ok_or(ProfileError::missing("version"))?;
        if version != PROFILE_VERSION {
            return Err(ProfileError::Version {
                found: version,
                expected: PROFILE_VERSION,
            });
        }
        let hostname = doc
            .get("hostname")
            .and_then(Value::as_str)
            .ok_or(ProfileError::missing("hostname"))?
            .to_owned();
        let threads = doc
            .get("threads")
            .and_then(Value::as_u64)
            .ok_or(ProfileError::missing("threads"))? as usize;
        let collision_factor = doc
            .get("collision_factor")
            .and_then(Value::as_f64)
            .ok_or(ProfileError::missing("collision_factor"))?;
        let bounds_v = doc.get("bounds").ok_or(ProfileError::missing("bounds"))?;
        let bounds = GridBounds {
            nrows_min: bounds_v
                .get("nrows_min")
                .and_then(Value::as_u64)
                .ok_or(ProfileError::missing("nrows_min"))? as usize,
            nrows_max: bounds_v
                .get("nrows_max")
                .and_then(Value::as_u64)
                .ok_or(ProfileError::missing("nrows_max"))? as usize,
        };
        let cells = doc
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or(ProfileError::missing("cells"))?
            .iter()
            .map(cell_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MachineProfile {
            version,
            hostname,
            threads,
            collision_factor,
            bounds,
            cells,
        })
    }
}

fn cell_to_json(cell: &CellEntry) -> Value {
    let mut m = BTreeMap::new();
    m.insert("op".into(), Value::Str(op_name(cell.key.op).into()));
    m.insert(
        "pattern".into(),
        Value::Str(pattern_name(cell.key.pattern).into()),
    );
    m.insert("ef_bucket".into(), Value::Num(cell.key.ef_bucket as f64));
    m.insert("sorted_inputs".into(), Value::Bool(cell.key.sorted_inputs));
    m.insert(
        "order".into(),
        Value::Str(
            if cell.key.order.is_sorted() {
                "sorted"
            } else {
                "unsorted"
            }
            .into(),
        ),
    );
    m.insert("winner".into(), Value::Str(cell.winner.name().into()));
    m.insert(
        "plan_winner".into(),
        match cell.plan_winner {
            Some(a) => Value::Str(a.name().into()),
            None => Value::Null,
        },
    );
    m.insert(
        "ranking".into(),
        Value::Arr(
            cell.ranking
                .iter()
                .map(|s| {
                    Value::Arr(vec![
                        Value::Str(s.algo.name().into()),
                        Value::Num(s.rel_slowdown),
                        Value::Num(s.total_secs),
                        match s.plan_rel_slowdown {
                            Some(r) => Value::Num(r),
                            None => Value::Null,
                        },
                    ])
                })
                .collect(),
        ),
    );
    Value::Obj(m)
}

fn cell_from_json(v: &Value) -> Result<CellEntry, ProfileError> {
    let op = parse_op(
        v.get("op")
            .and_then(Value::as_str)
            .ok_or(ProfileError::missing("op"))?,
    )?;
    let pattern = parse_pattern(
        v.get("pattern")
            .and_then(Value::as_str)
            .ok_or(ProfileError::missing("pattern"))?,
    )?;
    let ef_bucket = v
        .get("ef_bucket")
        .and_then(Value::as_u64)
        .ok_or(ProfileError::missing("ef_bucket"))? as u8;
    let sorted_inputs = v
        .get("sorted_inputs")
        .and_then(Value::as_bool)
        .ok_or(ProfileError::missing("sorted_inputs"))?;
    let order = match v.get("order").and_then(Value::as_str) {
        Some("sorted") => OutputOrder::Sorted,
        Some("unsorted") => OutputOrder::Unsorted,
        other => return Err(ProfileError::Field(format!("bad order {other:?}"))),
    };
    let winner = parse_algorithm(
        v.get("winner")
            .and_then(Value::as_str)
            .ok_or(ProfileError::missing("winner"))?,
    )?;
    let plan_winner = match v.get("plan_winner") {
        None | Some(Value::Null) => None,
        Some(w) => Some(parse_algorithm(
            w.as_str().ok_or(ProfileError::missing("plan_winner"))?,
        )?),
    };
    let ranking = v
        .get("ranking")
        .and_then(Value::as_arr)
        .ok_or(ProfileError::missing("ranking"))?
        .iter()
        .map(|row| {
            let row = row.as_arr().filter(|r| r.len() == 4).ok_or_else(|| {
                ProfileError::Field("ranking rows must be [algo, rel, secs, plan_rel]".into())
            })?;
            Ok(AlgoScore {
                algo: parse_algorithm(
                    row[0]
                        .as_str()
                        .ok_or(ProfileError::missing("ranking algo"))?,
                )?,
                rel_slowdown: row[1]
                    .as_f64()
                    .ok_or(ProfileError::missing("ranking rel"))?,
                total_secs: row[2]
                    .as_f64()
                    .ok_or(ProfileError::missing("ranking secs"))?,
                plan_rel_slowdown: match &row[3] {
                    Value::Null => None,
                    other => Some(
                        other
                            .as_f64()
                            .ok_or(ProfileError::missing("ranking plan_rel"))?,
                    ),
                },
            })
        })
        .collect::<Result<Vec<_>, ProfileError>>()?;
    Ok(CellEntry {
        key: CellKey {
            op,
            pattern,
            ef_bucket,
            sorted_inputs,
            order,
        },
        winner,
        plan_winner,
        ranking,
    })
}

/// Profile decode failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ProfileError {
    /// The JSON text itself was malformed.
    Json(ParseError),
    /// Schema version mismatch.
    Version {
        /// Version in the file.
        found: u64,
        /// Version this build reads.
        expected: u64,
    },
    /// A required field was missing or of the wrong shape.
    Field(String),
}

impl ProfileError {
    fn missing(name: &str) -> Self {
        ProfileError::Field(format!("missing or invalid field '{name}'"))
    }
}

impl From<ParseError> for ProfileError {
    fn from(e: ParseError) -> Self {
        ProfileError::Json(e)
    }
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Json(e) => write!(f, "{e}"),
            ProfileError::Version { found, expected } => {
                write!(f, "profile version {found}, this build reads {expected}")
            }
            ProfileError::Field(msg) => write!(f, "profile schema: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Canonical lowercase name of an op kind.
pub fn op_name(op: OpKind) -> &'static str {
    match op {
        OpKind::Square => "square",
        OpKind::LxU => "lxu",
        OpKind::TallSkinny => "tall_skinny",
    }
}

fn parse_op(s: &str) -> Result<OpKind, ProfileError> {
    match s {
        "square" => Ok(OpKind::Square),
        "lxu" => Ok(OpKind::LxU),
        "tall_skinny" => Ok(OpKind::TallSkinny),
        other => Err(ProfileError::Field(format!("unknown op '{other}'"))),
    }
}

/// Canonical lowercase name of a pattern class.
pub fn pattern_name(p: Pattern) -> &'static str {
    match p {
        Pattern::Uniform => "uniform",
        Pattern::Skewed => "skewed",
    }
}

fn parse_pattern(s: &str) -> Result<Pattern, ProfileError> {
    match s {
        "uniform" => Ok(Pattern::Uniform),
        "skewed" => Ok(Pattern::Skewed),
        other => Err(ProfileError::Field(format!("unknown pattern '{other}'"))),
    }
}

/// Inverse of [`Algorithm::name`].
pub fn parse_algorithm(s: &str) -> Result<Algorithm, ProfileError> {
    Algorithm::ALL
        .into_iter()
        .find(|a| a.name() == s)
        .ok_or_else(|| ProfileError::Field(format!("unknown algorithm '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_profile() -> MachineProfile {
        MachineProfile {
            version: PROFILE_VERSION,
            hostname: "test-host".into(),
            threads: 4,
            collision_factor: 1.03125,
            bounds: GridBounds {
                nrows_min: 256,
                nrows_max: 1024,
            },
            cells: vec![
                CellEntry {
                    key: CellKey {
                        op: OpKind::Square,
                        pattern: Pattern::Uniform,
                        ef_bucket: 2,
                        sorted_inputs: true,
                        order: OutputOrder::Sorted,
                    },
                    winner: Algorithm::Heap,
                    plan_winner: Some(Algorithm::Hash),
                    ranking: vec![
                        AlgoScore {
                            algo: Algorithm::Heap,
                            rel_slowdown: 1.0,
                            total_secs: 0.01,
                            plan_rel_slowdown: Some(1.1),
                        },
                        AlgoScore {
                            algo: Algorithm::Hash,
                            rel_slowdown: 1.2,
                            total_secs: 0.012,
                            plan_rel_slowdown: Some(1.0),
                        },
                    ],
                },
                CellEntry {
                    key: CellKey {
                        op: OpKind::TallSkinny,
                        pattern: Pattern::Skewed,
                        ef_bucket: 4,
                        sorted_inputs: false,
                        order: OutputOrder::Unsorted,
                    },
                    winner: Algorithm::HashVec,
                    plan_winner: None,
                    ranking: vec![AlgoScore {
                        algo: Algorithm::HashVec,
                        rel_slowdown: 1.0,
                        total_secs: 0.002,
                        plan_rel_slowdown: None,
                    }],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let p = sample_profile();
        let back = MachineProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
        // and stable: re-serialization is byte-identical
        assert_eq!(p.to_json(), back.to_json());
    }

    #[test]
    fn version_mismatch_rejected() {
        let text = sample_profile()
            .to_json()
            .replace(&format!("\"version\":{PROFILE_VERSION}"), "\"version\":999");
        match MachineProfile::from_json(&text) {
            Err(ProfileError::Version {
                found: 999,
                expected,
            }) => {
                assert_eq!(expected, PROFILE_VERSION)
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn ef_buckets_separate_the_calibrated_edge_factors() {
        assert_eq!(ef_bucket(0.5), 0);
        assert_eq!(ef_bucket(1.0), 0);
        assert_eq!(ef_bucket(4.0), 2);
        assert_eq!(ef_bucket(6.0), 2);
        assert_eq!(ef_bucket(16.0), 4);
        assert_eq!(ef_bucket(1e9), 15);
        assert!(ef_bucket(4.0) != ef_bucket(16.0));
    }

    #[test]
    fn bounds_margin() {
        let b = GridBounds {
            nrows_min: 256,
            nrows_max: 1024,
        };
        assert!(b.admits(256));
        assert!(b.admits(64));
        assert!(!b.admits(63));
        assert!(b.admits(4096));
        assert!(!b.admits(4097));
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let text = sample_profile()
            .to_json()
            .replace("\"Heap\"", "\"Quantum\"");
        assert!(MachineProfile::from_json(&text).is_err());
    }

    #[test]
    fn missing_fields_are_errors_not_defaults() {
        // Every top-level field is load-bearing: a profile that lost
        // one must be rejected, not silently patched with a default.
        for field in ["threads", "collision_factor", "bounds", "cells", "hostname"] {
            let text = sample_profile()
                .to_json()
                .replace(&format!("\"{field}\""), "\"gone\"");
            assert!(MachineProfile::from_json(&text).is_err(), "field {field}");
        }
    }
}
