//! Empirical auto-tuning for the SpGEMM kernel roster.
//!
//! The paper's algorithm recipe (§5.7, Table 4, implemented statically
//! in `spgemm::recipe`) was measured on two specific machines — a KNL
//! and a Haswell — and its cost model (§4.2.4) leaves the hash
//! collision factor `c` as a parameter to be measured. On any other
//! host the crossover points between Hash, HashVector, Heap and the
//! rest shift. This crate closes that gap the way related auto-tuners
//! do (kease-sparse-knl; Deveci et al.'s kernel selection): measure
//! once, remember, select.
//!
//! # The pieces
//!
//! * [`calibrate`] — a one-time sweep timing **every** algorithm in
//!   [`spgemm::Algorithm::ALL`] over a generated grid (R-MAT
//!   ER/G500 × edge factor × square/tall-skinny × sorted/unsorted ×
//!   output order) and measuring the collision factor;
//! * [`MachineProfile`] — the sweep's distilled result: per-cell
//!   winners and rankings, versioned and JSON-serializable;
//! * [`store`] — persistence under `SPGEMM_TUNE_DIR` (or the user
//!   cache directory), keyed by hostname and thread count;
//! * [`TunedSelector`] — a deterministic context → algorithm map that
//!   installs as the [`spgemm::recipe`] auto-hook, making
//!   `Algorithm::Auto` consult the profile first and fall back to the
//!   paper's static Table-4 recipe outside the calibrated grid.
//!
//! # Calibrate once, then multiply
//!
//! ```
//! use spgemm::{multiply_f64, Algorithm, OutputOrder};
//! use spgemm_par::Pool;
//!
//! let pool = Pool::new(2);
//! let profile = spgemm_tune::calibrate(
//!     &spgemm_tune::CalibrationConfig::quick(), &pool);
//! spgemm_tune::TunedSelector::new(profile).install();
//!
//! let a = spgemm_sparse::Csr::<f64>::identity(64);
//! let c = multiply_f64(&a, &a, Algorithm::Auto, OutputOrder::Sorted).unwrap();
//! assert_eq!(c.nnz(), 64);
//! # spgemm_tune::uninstall();
//! ```
//!
//! In production, [`init_from_saved`] at startup replaces the inline
//! sweep: it loads this host's persisted profile (written by
//! `cargo run -p spgemm-bench --bin tune`) and installs it, returning
//! whether a profile was found.

#![warn(missing_docs)]

mod calibrate;
pub mod json;
mod profile;
mod selector;
pub mod store;

pub use calibrate::{calibrate, calibrate_with_report, selectable, CalibrationConfig, SweepRecord};
pub use profile::{
    ef_bucket, op_name, parse_algorithm, pattern_name, AlgoScore, CellEntry, CellKey, GridBounds,
    MachineProfile, ProfileError, PROFILE_VERSION, SIZE_MARGIN,
};
pub use selector::{installed, uninstall, TunedSelector};

/// Load this host's persisted profile for `threads` workers and
/// install it as the `Algorithm::Auto` selector. Returns `true` when
/// a valid profile was found and installed; on `false` the static
/// recipe stays in effect (this is never an error — it is the
/// designed fallback).
///
/// When no profile exists for the *exact* thread count the nearest
/// calibrated count is used instead ([`store::load_nearest`]) — a
/// worker pool sized between two calibrations still benefits from the
/// closer one rather than silently reverting to the static recipe.
/// Use [`init_from_saved_at`] to learn which count matched.
pub fn init_from_saved(threads: usize) -> bool {
    init_from_saved_at(threads).is_some()
}

/// [`init_from_saved`] reporting the thread count of the installed
/// profile (`Some(threads)` on an exact match, `Some(other)` after the
/// nearest-count fallback, `None` when nothing usable was found).
pub fn init_from_saved_at(threads: usize) -> Option<usize> {
    match store::load_nearest(threads) {
        Ok((profile, at)) => {
            TunedSelector::new(profile).install();
            Some(at)
        }
        Err(_) => None,
    }
}

/// Calibrate on this machine, persist the profile, and install it.
/// Returns the profile and the path it was saved to.
pub fn calibrate_install_and_save(
    cfg: &CalibrationConfig,
    pool: &spgemm_par::Pool,
) -> std::io::Result<(MachineProfile, std::path::PathBuf)> {
    let profile = calibrate(cfg, pool);
    let path = store::save(&profile)?;
    TunedSelector::new(profile.clone()).install();
    Ok((profile, path))
}
