//! Error type of the sharded runtime.

use spgemm_sparse::SparseError;
use std::fmt;

/// Errors surfaced by [`crate::ShardRuntime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A sparse-layer failure (shape mismatch, kernel contract
    /// violation, ...) from partitioning or a shard's local product.
    Sparse(SparseError),
    /// A shard could not complete its part of the product (contained
    /// panic, severed channel, out-of-sync pipeline). Failures are
    /// contained per product: the fleet keeps serving subsequent
    /// multiplies unless a shard *thread* itself died, in which case
    /// every later product reports this error at submission.
    ShardFailed {
        /// Which shard failed, as a flat index into the grid.
        shard: usize,
        /// Panic message or channel diagnostics.
        detail: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Sparse(e) => write!(f, "sparse error in sharded product: {e}"),
            DistError::ShardFailed { shard, detail } => {
                write!(f, "shard {shard} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Sparse(e) => Some(e),
            DistError::ShardFailed { .. } => None,
        }
    }
}

impl From<SparseError> for DistError {
    fn from(e: SparseError) -> Self {
        DistError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DistError::from(SparseError::Unsorted { op: "test" });
        assert!(e.to_string().contains("sorted"));
        assert!(std::error::Error::source(&e).is_some());
        let e = DistError::ShardFailed {
            shard: 3,
            detail: "boom".into(),
        };
        assert!(e.to_string().contains("shard 3"));
    }
}
