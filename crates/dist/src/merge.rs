//! Parallel k-way merge reduction of partial products.
//!
//! A shard's stage products are `S` same-shape CSRs whose rows must be
//! summed entry-wise into the shard's final block. With sorted
//! partials this is a textbook k-way merge per row; `k` is the stage
//! count (= the grid's row dimension), small enough that a linear
//! cursor scan beats a heap. Unsorted partials fall back to a stable
//! sort by column, which preserves stage order within a column so the
//! additive combination happens in ascending-stage order either way —
//! the same grouping every shard uses, making the reduction
//! deterministic.
//!
//! Rows are merged in parallel under the shard's pool, partitioned by
//! the per-row total partial nnz through the same `RowsToThreads`
//! balancer the kernels use.

use spgemm_par::{partition, unsync::SharedMutSlice, Pool};
use spgemm_sparse::{ColIdx, Csr, Scalar, SparseError};

/// One worker's contiguous output: rows `start..start + rpts.len()`.
struct Chunk<T> {
    start: usize,
    /// Inclusive running nnz per merged row (local to the chunk).
    row_ends: Vec<usize>,
    cols: Vec<ColIdx>,
    vals: Vec<T>,
}

/// Sum `partials` entry-wise: `C = Σ_s partials[s]`, rows merged in
/// parallel on `pool`. All partials must share one shape. Duplicate
/// columns are combined by [`Scalar::add`] in ascending partial order
/// (stage 0 first), and output rows come out sorted by column.
pub fn merge_add<T: Scalar>(partials: &[Csr<T>], pool: &Pool) -> Result<Csr<T>, SparseError> {
    let Some(first) = partials.first() else {
        return Err(SparseError::BadPartition {
            detail: "merge_add: no partials".into(),
        });
    };
    let (m, n) = first.shape();
    for p in &partials[1..] {
        if p.shape() != (m, n) {
            return Err(SparseError::ShapeMismatch {
                left: (m, n),
                right: p.shape(),
                op: "merge_add",
            });
        }
    }
    let all_sorted = partials.iter().all(|p| p.is_sorted());
    let weights: Vec<u64> = (0..m)
        .map(|i| partials.iter().map(|p| p.row_nnz(i) as u64).sum())
        .collect();
    let offsets = partition::balanced_offsets(&weights, pool.nthreads(), pool);
    let mut chunks: Vec<Option<Chunk<T>>> = (0..pool.nthreads()).map(|_| None).collect();
    {
        let slots = SharedMutSlice::new(&mut chunks[..]);
        pool.parallel_ranges(&offsets, |wid, range| {
            let cap: usize = weights[range.clone()].iter().sum::<u64>() as usize;
            let mut chunk = Chunk {
                start: range.start,
                row_ends: Vec::with_capacity(range.len()),
                cols: Vec::with_capacity(cap),
                vals: Vec::with_capacity(cap),
            };
            let mut cursors = vec![0usize; partials.len()];
            let mut scratch: Vec<(ColIdx, usize, T)> = Vec::new();
            for i in range {
                if all_sorted {
                    merge_row_sorted(partials, i, &mut cursors, &mut chunk.cols, &mut chunk.vals);
                } else {
                    merge_row_unsorted(partials, i, &mut scratch, &mut chunk.cols, &mut chunk.vals);
                }
                chunk.row_ends.push(chunk.cols.len());
            }
            // SAFETY: `wid` indexes this worker's own slot; slots are
            // disjoint across workers and read only after the region.
            unsafe { slots.write(wid, Some(chunk)) };
        });
    }
    // Stitch the per-worker chunks (contiguous, ascending row ranges)
    // into one CSR.
    let mut rpts = Vec::with_capacity(m + 1);
    rpts.push(0usize);
    let total: usize = chunks
        .iter()
        .map(|c| c.as_ref().map_or(0, |c| c.cols.len()))
        .sum();
    let mut cols = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for chunk in chunks.into_iter().flatten() {
        debug_assert_eq!(chunk.start + 1, rpts.len());
        let base = cols.len();
        rpts.extend(chunk.row_ends.iter().map(|&e| base + e));
        cols.extend_from_slice(&chunk.cols);
        vals.extend_from_slice(&chunk.vals);
    }
    debug_assert_eq!(rpts.len(), m + 1);
    Ok(Csr::from_parts_unchecked(m, n, rpts, cols, vals, true))
}

/// Merge row `i` of sorted partials by linear cursor scan: repeatedly
/// take the minimum column over the k cursors, summing ties in
/// ascending partial order.
fn merge_row_sorted<T: Scalar>(
    partials: &[Csr<T>],
    i: usize,
    cursors: &mut [usize],
    cols: &mut Vec<ColIdx>,
    vals: &mut Vec<T>,
) {
    cursors.fill(0);
    loop {
        let mut min: Option<ColIdx> = None;
        for (cur, p) in cursors.iter().zip(partials) {
            if let Some(&c) = p.row_cols(i).get(*cur) {
                min = Some(min.map_or(c, |m| m.min(c)));
            }
        }
        let Some(min) = min else { break };
        let mut acc = T::ZERO;
        for (cur, p) in cursors.iter_mut().zip(partials) {
            if p.row_cols(i).get(*cur) == Some(&min) {
                acc = acc.add(p.row_vals(i)[*cur]);
                *cur += 1;
            }
        }
        cols.push(min);
        vals.push(acc);
    }
}

/// Merge row `i` of possibly-unsorted partials: collect
/// `(col, stage, val)`, sort by `(col, stage)` so the additive
/// combination still runs in ascending stage order, then sum runs.
fn merge_row_unsorted<T: Scalar>(
    partials: &[Csr<T>],
    i: usize,
    scratch: &mut Vec<(ColIdx, usize, T)>,
    cols: &mut Vec<ColIdx>,
    vals: &mut Vec<T>,
) {
    scratch.clear();
    for (s, p) in partials.iter().enumerate() {
        for (c, &v) in p.row(i).iter() {
            scratch.push((c, s, v));
        }
    }
    scratch.sort_unstable_by_key(|&(c, s, _)| (c, s));
    let mut i = 0;
    while i < scratch.len() {
        let (c, _, mut acc) = scratch[i];
        i += 1;
        while i < scratch.len() && scratch[i].0 == c {
            acc = acc.add(scratch[i].2);
            i += 1;
        }
        cols.push(c);
        vals.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(3)
    }

    #[test]
    fn merges_disjoint_and_overlapping_columns() {
        let a = Csr::from_triplets(2, 4, &[(0, 0, 1.0), (0, 2, 2.0), (1, 3, 3.0)]).unwrap();
        let b = Csr::from_triplets(2, 4, &[(0, 2, 10.0), (1, 0, 4.0)]).unwrap();
        let c = merge_add(&[a, b], &pool()).unwrap();
        assert!(c.is_sorted());
        assert_eq!(c.get(0, 0), Some(&1.0));
        assert_eq!(c.get(0, 2), Some(&12.0));
        assert_eq!(c.get(1, 0), Some(&4.0));
        assert_eq!(c.get(1, 3), Some(&3.0));
        assert_eq!(c.nnz(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn single_partial_is_identity_for_sorted_input() {
        let a = Csr::from_triplets(3, 3, &[(0, 1, 1.0), (2, 0, 2.0)]).unwrap();
        let c = merge_add(std::slice::from_ref(&a), &pool()).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn unsorted_partials_sum_in_stage_order() {
        // Unsorted rows force the sort-based path; exact integer
        // values make the sums order-insensitive to float error and
        // the test checks content, not layout.
        let a = Csr::from_parts(1, 4, vec![0, 2], vec![3, 0], vec![1.0, 2.0]).unwrap();
        let b = Csr::from_parts(1, 4, vec![0, 2], vec![3, 1], vec![4.0, 8.0]).unwrap();
        assert!(!a.is_sorted());
        let c = merge_add(&[a, b], &pool()).unwrap();
        assert!(c.is_sorted(), "merge always emits sorted rows");
        assert_eq!(c.row_cols(0), &[0, 1, 3]);
        assert_eq!(c.row_vals(0), &[2.0, 8.0, 5.0]);
    }

    #[test]
    fn k_way_exceeding_thread_count() {
        let parts: Vec<Csr<f64>> = (0..6)
            .map(|s| Csr::from_triplets(4, 4, &[(s % 4, (s % 4) as u32, 1.0)]).unwrap())
            .collect();
        let c = merge_add(&parts, &pool()).unwrap();
        assert_eq!(c.get(0, 0), Some(&2.0), "stages 0 and 4 both hit (0,0)");
        assert_eq!(c.get(3, 3), Some(&1.0));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Csr::<f64>::zero(2, 2);
        let b = Csr::<f64>::zero(2, 3);
        assert!(matches!(
            merge_add(&[a, b], &pool()),
            Err(SparseError::ShapeMismatch { .. })
        ));
        assert!(merge_add::<f64>(&[], &pool()).is_err());
    }

    #[test]
    fn empty_rows_and_empty_partials() {
        let a = Csr::<f64>::zero(5, 5);
        let b = Csr::from_triplets(5, 5, &[(4, 4, 7.0)]).unwrap();
        let c = merge_add(&[a, b], &pool()).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(4, 4), Some(&7.0));
    }
}
