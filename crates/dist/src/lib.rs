//! Sharded SpGEMM over block-partitioned matrices.
//!
//! Everything below this crate executes `C = A · B` as one monolithic
//! product: one CSR per operand, one workspace pool, one output
//! allocation. That bounds the largest product the stack can serve by
//! a single memory domain — the scaling wall the ROADMAP's sharding
//! axis removes. DBCSR (Bethune et al.) shows blocked/distributed
//! storage is the standard route past it, and Deveci et al.'s
//! multilevel-memory work shows partition-wise execution pays off even
//! on a single node by keeping each tile's accumulators cache- (or
//! HBM-) resident.
//!
//! [`ShardRuntime`] runs the classic row-wise distributed SpGEMM over
//! an `R × C` shard grid (see [`GridSpec`]):
//!
//! * `A` and `C` are split into `R` flop-balanced row blocks
//!   ([`spgemm_sparse::PartitionedCsr`]); shard `(r, c)` owns row
//!   block `r` and the column slice `c` of `C`;
//! * `B` is split into `R` row blocks × `C` column blocks; at stage
//!   `s` the coordinator broadcasts `B`'s row block `s` (sliced per
//!   shard column) over vendored-crossbeam channels while shards are
//!   still multiplying earlier stages — communication overlaps local
//!   compute, the pipeline of the crate's title;
//! * each shard's stage product `A[r, s] · B[s, c]` goes through a
//!   per-stage [`spgemm::PlanCache`], so iterative workloads (MCL A²
//!   chains, AMG `PᵀAP`) re-execute **numeric-only per shard** once
//!   their structure stabilizes ([`DistStats::plan_hits`] counts it);
//! * a parallel k-way merge reduces the per-stage partials into the
//!   shard's final block, and the gather path
//!   ([`spgemm_sparse::PartitionedCsr::from_blocks`] + `assemble`)
//!   returns a plain [`spgemm_sparse::Csr`] — proptested
//!   byte-for-byte against the single-node `Reference` kernel.
//!
//! `spgemm-serve` routes oversized jobs here (see its
//! `ServeConfig::dist`), and the `spgemm-dist` bench binary sweeps
//! shard counts × partition shapes reporting speedup and peak
//! per-shard partial memory against the monolithic kernel.
//!
//! ```
//! use spgemm_dist::{DistConfig, GridSpec, ShardRuntime};
//! use spgemm_sparse::Csr;
//!
//! let rt = ShardRuntime::new(DistConfig {
//!     grid: GridSpec::new(2, 2),
//!     ..DistConfig::default()
//! });
//! let a = Csr::<f64>::identity(64);
//! let c = rt.multiply(&a, &a).unwrap();
//! assert_eq!(c.nnz(), 64);
//! ```

#![warn(missing_docs)]

mod error;
mod merge;
mod runtime;

pub use error::DistError;
pub use merge::merge_add;
pub use runtime::{csr_bytes, DistConfig, DistStats, GridSpec, ProductStats, ShardRuntime};
