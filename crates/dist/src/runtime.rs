//! The pipelined shard runtime: [`ShardRuntime`].
//!
//! # Execution model
//!
//! `C = A · B` over an `R × C` shard grid runs as the classic
//! row-wise distributed SpGEMM (1D block-row ownership, stage-wise
//! broadcast of `B`):
//!
//! ```text
//!            stage cuts (B row blocks, S = R stages)
//!   A = [A_r,s]  row-partitioned by flop-balanced cuts (R blocks)
//!   B = [B_s,c]  grid-partitioned (S row × C col blocks)
//!   C = [C_r,c]  C_r,c = Σ_s  A_r,s · B_s,c
//! ```
//!
//! The coordinator (the thread calling [`ShardRuntime::multiply`])
//! computes the cuts, hands each shard its row block of `A`, then
//! walks the stages: extract `B`'s stage-`s` blocks, broadcast them
//! down bounded channels, move on to stage `s + 1` while the shards
//! are still multiplying stage `s` — extraction/communication overlaps
//! local compute, bounded by the channel depth
//! ([`DistConfig::pipeline_depth`]).
//!
//! Each shard is a long-lived thread owning its own execution
//! [`Pool`] and one [`PlanCache`] **per stage**: a stable operand
//! structure re-executes numeric-only per shard (the plan-cache hit
//! counters in [`ProductStats`] assert it), which is what makes
//! iterative workloads (MCL A² chains, AMG `PᵀAP`) cheap here exactly
//! as they are on the monolithic path. Stage partials are reduced by
//! the parallel k-way merge ([`crate::merge_add`]) and the blocks
//! gathered back to a plain [`Csr`] through
//! [`PartitionedCsr::from_blocks`].

use crate::error::DistError;
use crate::merge::merge_add;
use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use spgemm::{Algorithm, OutputOrder, PlanCache};
use spgemm_obs as obs;
use spgemm_par::{partition, Pool};
use spgemm_sparse::partitioned::column_nnz;
use spgemm_sparse::{stats, Csr, PartitionedCsr, PlusTimes, SparseError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The semiring the shard runtime executes (the paper's numeric
/// setting, matching the serving layer).
type S = PlusTimes<f64>;

/// Shard grid shape: `rows × cols` shards; the row dimension also
/// fixes the stage count (B is broadcast in `rows` row blocks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridSpec {
    rows: usize,
    cols: usize,
}

impl GridSpec {
    /// A `rows × cols` grid (both clamped to ≥ 1).
    pub fn new(rows: usize, cols: usize) -> Self {
        GridSpec {
            rows: rows.max(1),
            cols: cols.max(1),
        }
    }

    /// Row blocks (= shard rows = broadcast stages).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column blocks (= shard columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total shard count.
    pub fn shards(&self) -> usize {
        self.rows * self.cols
    }

    /// Broadcast stages per product (= [`GridSpec::rows`]).
    pub fn stages(&self) -> usize {
        self.rows
    }

    /// Parse `"RxC"` (e.g. `"2x2"`, `"4x1"`), as the bench CLI spells
    /// grids.
    pub fn parse(s: &str) -> Option<Self> {
        let (r, c) = s.split_once(['x', 'X'])?;
        Some(GridSpec::new(
            r.trim().parse().ok()?,
            c.trim().parse().ok()?,
        ))
    }
}

impl std::fmt::Display for GridSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Shard-runtime sizing and kernel policy.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Shard grid (default 2×1).
    pub grid: GridSpec,
    /// Width of each shard's execution [`Pool`] (default 1).
    pub threads_per_shard: usize,
    /// Local kernel for every shard's stage products (default
    /// [`Algorithm::Hash`]; `Auto` resolves per block).
    pub algo: Algorithm,
    /// Output order of stage products and of the gathered result
    /// (default sorted — required for byte-for-byte agreement with the
    /// `Reference` oracle).
    pub order: OutputOrder,
    /// Stage messages a shard's channel buffers beyond the one it is
    /// working on (default 2). Depth 1 serializes broadcast behind
    /// compute; deeper pipelines let the coordinator run further
    /// ahead at the cost of more in-flight `B` blocks.
    pub pipeline_depth: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            grid: GridSpec::new(2, 1),
            threads_per_shard: 1,
            algo: Algorithm::Hash,
            order: OutputOrder::Sorted,
            pipeline_depth: 2,
        }
    }
}

/// Approximate heap footprint of a CSR's arrays (row pointers +
/// column indices + values) — the unit of the runtime's
/// partial-memory accounting and the bench's monolithic comparison.
pub fn csr_bytes<T>(m: &Csr<T>) -> u64 {
    (std::mem::size_of_val(m.rpts())
        + m.nnz() * (std::mem::size_of::<spgemm_sparse::ColIdx>() + std::mem::size_of::<T>()))
        as u64
}

/// Per-product observability: partial-memory peaks and the plan-cache
/// counters that certify steady-state numeric-only execution.
#[derive(Clone, Debug)]
pub struct ProductStats {
    /// The grid this product ran on.
    pub grid: GridSpec,
    /// Broadcast stages (= grid rows).
    pub stages: usize,
    /// Peak bytes of stage partials (plus the merged block while both
    /// were alive) held by each shard during this product, flat
    /// row-major shard order. Input blocks are not counted: they are
    /// operand storage, not workspace.
    pub per_shard_peak_partial_bytes: Vec<u64>,
    /// Nanoseconds each shard spent in its stage multiplies during
    /// this product (flat row-major shard order) — the number behind
    /// [`ProductStats::compute_imbalance`]. Always measured: two clock
    /// reads per stage against a multiply.
    pub per_shard_compute_ns: Vec<u64>,
    /// Plan-cache hits summed over all shards and stages, cumulative
    /// since the runtime started. A stable structure re-executed `k`
    /// times shows `shards × stages × (k - 1)` hits.
    pub plan_hits: u64,
    /// Plan-cache (re)builds summed over all shards and stages,
    /// cumulative since the runtime started — constant across
    /// steady-state re-executions.
    pub plan_rebuilds: u64,
}

impl ProductStats {
    /// Largest per-shard peak — the number the bench compares against
    /// the monolithic workspace footprint.
    pub fn max_peak_partial_bytes(&self) -> u64 {
        self.per_shard_peak_partial_bytes
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Compute-time imbalance across shards: slowest shard over the
    /// mean (`1.0` = perfectly balanced; `2.0` = the critical shard
    /// worked twice the average). `0.0` when nothing was measured.
    pub fn compute_imbalance(&self) -> f64 {
        let n = self.per_shard_compute_ns.len();
        if n == 0 {
            return 0.0;
        }
        let max = *self.per_shard_compute_ns.iter().max().unwrap() as f64;
        let mean = self.per_shard_compute_ns.iter().sum::<u64>() as f64 / n as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Aggregate runtime counters (cumulative across products).
#[derive(Clone, Copy, Debug, Default)]
pub struct DistStats {
    /// Products executed.
    pub products: u64,
    /// Plan-cache hits summed over shards and stages.
    pub plan_hits: u64,
    /// Plan-cache (re)builds summed over shards and stages.
    pub plan_rebuilds: u64,
}

/// One product's worth of per-shard instructions.
struct ProductJob {
    /// This shard's row block of `A` (shared by the `C` shards of one
    /// grid row).
    a_block: Arc<Csr<f64>>,
    /// `B` row cuts = `A` column splits; `stage_cuts.len() - 1`
    /// stages follow as [`ShardMsg::Stage`] messages.
    stage_cuts: Arc<Vec<usize>>,
}

/// Every message carries the product's epoch: a coordinator that
/// aborts a product mid-scatter (a shard channel died) simply starts
/// the next epoch, and both sides discard stragglers from the aborted
/// one — shards skip stale `Stage` blocks, the gather skips stale
/// `ShardDone` results. No drain bookkeeping, no resynchronization
/// protocol.
enum ShardMsg {
    Begin {
        epoch: u64,
        job: ProductJob,
        /// The submitting request's trace context, captured from the
        /// coordinator thread's scope so the shard's spans join the
        /// same trace (inert when the product is untraced).
        ctx: obs::TraceCtx,
        /// The coordinator→shard causal flow opened at scatter.
        flow: obs::FlowLink,
    },
    Stage {
        epoch: u64,
        stage: usize,
        block: Arc<Csr<f64>>,
    },
    Shutdown,
}

struct ShardOutput {
    block: Csr<f64>,
    peak_partial_bytes: u64,
    compute_ns: u64,
    plan_hits: u64,
    plan_rebuilds: u64,
}

struct ShardDone {
    shard: usize,
    epoch: u64,
    result: Result<ShardOutput, DistError>,
    /// The shard→coordinator flow, accepted in the gather span so the
    /// trace shows one connected scatter→compute→gather graph.
    flow: obs::FlowLink,
}

/// Coordinator-side state behind the product lock.
struct CoordState {
    /// Small pool for cut selection (prefix scans).
    pool: Pool,
    next_epoch: u64,
    /// Cut selection for the most recent operand structure pair —
    /// the coordinator-side analogue of the shards' per-stage plan
    /// caches: steady-state re-execution skips the weight scans and
    /// balanced-offset searches, and cut stability across repeats is
    /// guaranteed by construction (the shards' plan-cache hit
    /// invariants rely on the blocks keeping their structure).
    cuts: Option<CutCache>,
}

/// Products currently occupying or queued for a fleet, summed across
/// every live runtime (one runtime runs one product at a time, so a
/// level above the runtime count means submitters are queueing).
static PRODUCTS_IN_FLIGHT: obs::GaugeSite = obs::GaugeSite::new("dist", "dist.products_in_flight");

/// RAII decrement for [`PRODUCTS_IN_FLIGHT`] — covers error returns
/// and shard-failure paths alike.
struct InFlight;

impl InFlight {
    fn enter() -> InFlight {
        PRODUCTS_IN_FLIGHT.add(1);
        InFlight
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        PRODUCTS_IN_FLIGHT.sub(1);
    }
}

/// Cached cut selection, keyed by the operands' structure
/// fingerprints.
struct CutCache {
    a_sig: u64,
    b_sig: u64,
    row_cuts: Vec<usize>,
    stage_cuts: Arc<Vec<usize>>,
    col_cuts: Vec<usize>,
}

/// A persistent fleet of worker shards executing `C = A · B` as a
/// pipelined, row-wise distributed product. See the module docs for
/// the algorithm; see [`ShardRuntime::multiply_with_stats`] for the
/// per-product counters.
///
/// The runtime is `Sync`: concurrent submitters serialize on an
/// internal product lock (one product occupies the whole fleet), so a
/// single shared runtime can safely back a multi-tenant server.
pub struct ShardRuntime {
    cfg: DistConfig,
    senders: Vec<Sender<ShardMsg>>,
    result_rx: Receiver<ShardDone>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// One product at a time occupies the fleet.
    coordinator: Mutex<CoordState>,
    /// Cumulative counters behind their own (briefly-held) lock, so
    /// [`ShardRuntime::stats`] never waits behind an in-flight
    /// product.
    stats: Mutex<DistStats>,
}

impl ShardRuntime {
    /// Spawn the shard fleet described by `cfg`.
    pub fn new(cfg: DistConfig) -> Self {
        let shards = cfg.grid.shards();
        let (result_tx, result_rx) = unbounded();
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for idx in 0..shards {
            let (tx, rx) = bounded(cfg.pipeline_depth.max(1) + 1);
            let done = result_tx.clone();
            let shard_cfg = cfg;
            let handle = std::thread::Builder::new()
                .name(format!(
                    "spgemm-dist-{}-{}",
                    idx / cfg.grid.cols(),
                    idx % cfg.grid.cols()
                ))
                .spawn(move || shard_loop(idx, shard_cfg, rx, done))
                .expect("failed to spawn shard thread");
            senders.push(tx);
            handles.push(handle);
        }
        ShardRuntime {
            cfg,
            senders,
            result_rx,
            handles,
            coordinator: Mutex::new(CoordState {
                pool: Pool::new(1),
                next_epoch: 0,
                cuts: None,
            }),
            stats: Mutex::new(DistStats::default()),
        }
    }

    /// The configured grid.
    pub fn grid(&self) -> GridSpec {
        self.cfg.grid
    }

    /// Cumulative counters. Non-blocking with respect to in-flight
    /// products (safe to call from a monitoring thread).
    pub fn stats(&self) -> DistStats {
        *self.stats.lock()
    }

    /// Sharded `C = A · B`, discarding the stats.
    pub fn multiply(&self, a: &Csr<f64>, b: &Csr<f64>) -> Result<Csr<f64>, DistError> {
        self.multiply_with_stats(a, b).map(|(c, _)| c)
    }

    /// Sharded `C = A · B` with per-product [`ProductStats`].
    ///
    /// Blocks until the whole fleet finishes the product; concurrent
    /// callers queue on the internal product lock.
    pub fn multiply_with_stats(
        &self,
        a: &Csr<f64>,
        b: &Csr<f64>,
    ) -> Result<(Csr<f64>, ProductStats), DistError> {
        if a.ncols() != b.nrows() {
            return Err(SparseError::ShapeMismatch {
                left: a.shape(),
                right: b.shape(),
                op: "sharded multiply",
            }
            .into());
        }
        let _in_flight = InFlight::enter();
        let (grid_rows, grid_cols) = (self.cfg.grid.rows(), self.cfg.grid.cols());
        let stages = self.cfg.grid.stages();
        let mut guard = self.coordinator.lock();
        let epoch = guard.next_epoch;
        guard.next_epoch += 1;

        // --- cut selection -------------------------------------------------
        // A's row cuts balance the product's flops (the §4.1 weight);
        // B's row (stage) cuts balance its nnz; column cuts balance
        // per-column nnz so shard columns carry similar volume. The
        // selection depends only on operand *structure*, so iterative
        // workloads (values drift, pattern stable) reuse the cached
        // cuts and skip the weight scans entirely.
        let (row_cuts, stage_cuts, col_cuts) = {
            let _g = obs::span!("dist", "dist.partition");
            let a_sig = a.structure_fingerprint();
            let b_sig = if std::ptr::eq(a, b) {
                a_sig
            } else {
                b.structure_fingerprint()
            };
            let reusable = guard
                .cuts
                .as_ref()
                .is_some_and(|c| c.a_sig == a_sig && c.b_sig == b_sig);
            if !reusable {
                let pool = &guard.pool;
                let cache = CutCache {
                    a_sig,
                    b_sig,
                    row_cuts: partition::balanced_offsets(&stats::row_flops(a, b), grid_rows, pool),
                    stage_cuts: Arc::new(partition::balanced_offsets(
                        &row_nnz_weights(b),
                        stages,
                        pool,
                    )),
                    col_cuts: partition::balanced_offsets(&column_nnz(b), grid_cols, pool),
                };
                guard.cuts = Some(cache);
            }
            let cuts = guard.cuts.as_ref().expect("cuts installed above");
            (
                cuts.row_cuts.clone(),
                Arc::clone(&cuts.stage_cuts),
                cuts.col_cuts.clone(),
            )
        };

        // --- scatter A, then pipeline B's stages ---------------------------
        // The caller's trace context (the serve worker runs the
        // coordinator inside its batch scope) rides every Begin so the
        // shard threads' spans join the request's trace; one flow link
        // per shard marks the cross-thread handoff.
        let ctx = obs::current_ctx();
        let scatter_span = obs::span!("dist", "dist.scatter");
        for r in 0..grid_rows {
            let a_block = Arc::new(a.extract_rows(row_cuts[r]..row_cuts[r + 1]));
            for c in 0..grid_cols {
                self.send(
                    r * grid_cols + c,
                    ShardMsg::Begin {
                        epoch,
                        job: ProductJob {
                            a_block: Arc::clone(&a_block),
                            stage_cuts: Arc::clone(&stage_cuts),
                        },
                        ctx,
                        flow: obs::flow_out("dist.begin"),
                    },
                )?;
            }
        }
        for s in 0..stages {
            let strip = b.extract_rows(stage_cuts[s]..stage_cuts[s + 1]);
            let blocks = strip
                .split_col_ranges(&col_cuts)
                .expect("col cuts span ncols by construction");
            for (c, block) in blocks.into_iter().enumerate() {
                let block = Arc::new(block);
                for r in 0..grid_rows {
                    self.send(
                        r * grid_cols + c,
                        ShardMsg::Stage {
                            epoch,
                            stage: s,
                            block: Arc::clone(&block),
                        },
                    )?;
                }
            }
        }

        drop(scatter_span);

        // --- gather --------------------------------------------------------
        let shards = self.cfg.grid.shards();
        let mut blocks: Vec<Option<Csr<f64>>> = (0..shards).map(|_| None).collect();
        let mut peaks = vec![0u64; shards];
        let mut compute_ns = vec![0u64; shards];
        let (mut hits, mut rebuilds) = (0u64, 0u64);
        let mut first_err: Option<DistError> = None;
        let mut collected = 0usize;
        {
            let _g = obs::span!("dist", "dist.gather");
            while collected < shards {
                let done = self.result_rx.recv().map_err(|_| DistError::ShardFailed {
                    shard: usize::MAX,
                    detail: "result channel severed (every shard thread died)".into(),
                })?;
                if done.epoch != epoch {
                    continue; // straggler from an aborted earlier product
                }
                done.flow.accept("dist.done");
                collected += 1;
                match done.result {
                    Ok(out) => {
                        peaks[done.shard] = out.peak_partial_bytes;
                        compute_ns[done.shard] = out.compute_ns;
                        hits += out.plan_hits;
                        rebuilds += out.plan_rebuilds;
                        blocks[done.shard] = Some(out.block);
                    }
                    Err(e) => first_err = first_err.or(Some(e)),
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let blocks: Vec<Csr<f64>> = blocks
            .into_iter()
            .map(|b| b.expect("all gathered"))
            .collect();
        let c = {
            let _g = obs::span!("dist", "dist.assemble");
            PartitionedCsr::from_blocks(row_cuts, col_cuts, blocks)
                .map_err(DistError::from)?
                .assemble()
        };
        {
            let mut stats = self.stats.lock();
            stats.products += 1;
            stats.plan_hits = hits;
            stats.plan_rebuilds = rebuilds;
        }
        let stats = ProductStats {
            grid: self.cfg.grid,
            stages,
            per_shard_peak_partial_bytes: peaks,
            per_shard_compute_ns: compute_ns,
            plan_hits: hits,
            plan_rebuilds: rebuilds,
        };
        Ok((c, stats))
    }

    fn send(&self, shard: usize, msg: ShardMsg) -> Result<(), DistError> {
        self.senders[shard]
            .send(msg)
            .map_err(|_| DistError::ShardFailed {
                shard,
                detail: "shard channel severed (shard thread died)".into(),
            })
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-row nnz of `b` — the stage-cut weight vector.
fn row_nnz_weights<T>(b: &Csr<T>) -> Vec<u64> {
    (0..b.nrows()).map(|i| b.row_nnz(i) as u64).collect()
}

/// What one product attempt on a shard resolved to.
enum ProductOutcome {
    /// Report this result for the product's epoch.
    Finished(Result<ShardOutput, DistError>),
    /// The coordinator abandoned this epoch and already started the
    /// next one; process its `Begin` without reporting.
    Preempted {
        epoch: u64,
        job: ProductJob,
        ctx: obs::TraceCtx,
        flow: obs::FlowLink,
    },
    /// Shutdown requested or channel severed: exit the thread.
    Exit,
}

/// A shard thread: receive a product's `Begin`, stream its stages,
/// merge, report. Lives until `Shutdown` or a severed channel.
///
/// Any panic inside a product — kernel, merge, bookkeeping — is
/// contained here: the shard reports `ShardFailed` for that epoch,
/// drops its (possibly poisoned) plan caches while carrying their
/// cumulative counters forward, and keeps serving. The coordinator can
/// therefore always count on one `ShardDone` per non-preempted epoch.
fn shard_loop(idx: usize, cfg: DistConfig, rx: Receiver<ShardMsg>, done: Sender<ShardDone>) {
    let pool = Pool::new(cfg.threads_per_shard.max(1));
    // One plan cache per stage: stage `s` always multiplies the same
    // `(A[r,s], B[s,c])` structure pair while operand structures are
    // stable, so each cache settles into numeric-only hits.
    let mut plan_caches: Vec<PlanCache<S>> = Vec::new();
    // Counters of caches dropped after a contained panic, so the
    // documented-cumulative `plan_hits`/`plan_rebuilds` never move
    // backwards across a failure.
    let (mut carry_hits, mut carry_rebuilds) = (0u64, 0u64);
    let mut pending: Option<(u64, ProductJob, obs::TraceCtx, obs::FlowLink)> = None;
    loop {
        let (epoch, job, ctx, flow) = match pending.take() {
            Some(begin) => begin,
            None => match rx.recv() {
                Ok(ShardMsg::Begin {
                    epoch,
                    job,
                    ctx,
                    flow,
                }) => (epoch, job, ctx, flow),
                Ok(ShardMsg::Stage { .. }) => continue, // straggler of an aborted epoch
                Ok(ShardMsg::Shutdown) | Err(_) => return,
            },
        };
        let stages = job.stage_cuts.len() - 1;
        if plan_caches.len() != stages {
            absorb_counters(&plan_caches, &mut carry_hits, &mut carry_rebuilds);
            plan_caches = (0..stages)
                .map(|_| PlanCache::new(cfg.algo, cfg.order))
                .collect();
        }
        // Run under the product's trace context: the shard's spans
        // join the submitting request's trace, rooted at the accepted
        // coordinator→shard flow. The product span closes before the
        // ShardDone send so the coordinator never finishes the trace
        // with this shard's span still open.
        let outcome = {
            let _scope = obs::ctx_scope(ctx);
            let _g = obs::span!("dist", "dist.shard.product");
            flow.accept("dist.begin");
            catch_unwind(AssertUnwindSafe(|| {
                run_product(epoch, &job, &rx, &pool, &mut plan_caches)
            }))
            .unwrap_or_else(|payload| {
                // The panic may have left a cache mid-rebind; retire
                // the set (counters carried) and rebuild lazily next
                // product.
                absorb_counters(&plan_caches, &mut carry_hits, &mut carry_rebuilds);
                plan_caches = Vec::new();
                ProductOutcome::Finished(Err(DistError::ShardFailed {
                    shard: idx,
                    detail: format!("shard panicked: {}", spgemm_par::panic_text(payload)),
                }))
            })
        };
        match outcome {
            ProductOutcome::Finished(result) => {
                let result = result
                    .map(|mut out| {
                        out.plan_hits += carry_hits;
                        out.plan_rebuilds += carry_rebuilds;
                        out
                    })
                    .map_err(|e| match e {
                        DistError::ShardFailed { detail, .. } => {
                            DistError::ShardFailed { shard: idx, detail }
                        }
                        other => other,
                    });
                // the shard→coordinator return flow, paired by the
                // gather loop on the coordinator thread
                let flow = {
                    let _scope = obs::ctx_scope(ctx);
                    obs::flow_out("dist.done")
                };
                if done
                    .send(ShardDone {
                        shard: idx,
                        epoch,
                        result,
                        flow,
                    })
                    .is_err()
                {
                    return; // runtime dropped mid-product
                }
            }
            ProductOutcome::Preempted {
                epoch,
                job,
                ctx,
                flow,
            } => pending = Some((epoch, job, ctx, flow)),
            ProductOutcome::Exit => return,
        }
    }
}

/// Fold retiring caches' counters into the carried totals.
fn absorb_counters(caches: &[PlanCache<S>], hits: &mut u64, rebuilds: &mut u64) {
    for c in caches {
        let s = c.stats();
        *hits += s.hits;
        *rebuilds += s.rebuilds;
    }
}

fn run_product(
    epoch: u64,
    job: &ProductJob,
    rx: &Receiver<ShardMsg>,
    pool: &Pool,
    plan_caches: &mut [PlanCache<S>],
) -> ProductOutcome {
    let stages = job.stage_cuts.len() - 1;
    let a_stages = match job.a_block.split_col_ranges(&job.stage_cuts) {
        Ok(v) => v,
        Err(e) => return ProductOutcome::Finished(Err(e.into())),
    };
    let mut partials: Vec<Csr<f64>> = Vec::with_capacity(stages);
    let mut live_bytes = 0u64;
    let mut peak = 0u64;
    let mut compute_ns = 0u64;
    // Per-stage shard compute times (enabled runs only): the raw
    // samples behind the coordinator's imbalance figure.
    static STAGE_COMPUTE: obs::HistogramSite =
        obs::HistogramSite::new("dist", "dist.shard.stage_compute_ns");
    for s in 0..stages {
        // Wait for this epoch's stage `s`, discarding stragglers of
        // aborted epochs; a fresh `Begin` means the coordinator gave
        // this epoch up and moved on.
        let block = {
            let _g = obs::span!("dist", "dist.shard.wait");
            loop {
                match rx.recv() {
                    Ok(ShardMsg::Stage {
                        epoch: e,
                        stage,
                        block,
                    }) if e == epoch => {
                        debug_assert_eq!(stage, s, "stages arrive in order per shard");
                        break block;
                    }
                    Ok(ShardMsg::Stage { .. }) => continue,
                    Ok(ShardMsg::Begin {
                        epoch,
                        job,
                        ctx,
                        flow,
                    }) => {
                        return ProductOutcome::Preempted {
                            epoch,
                            job,
                            ctx,
                            flow,
                        }
                    }
                    Ok(ShardMsg::Shutdown) | Err(_) => return ProductOutcome::Exit,
                }
            }
        };
        let stage_start = std::time::Instant::now();
        let partial = {
            let _g = obs::span!("dist", "dist.shard.compute");
            match plan_caches[s].multiply_in(&a_stages[s], &block, pool) {
                Ok(p) => p,
                Err(e) => return ProductOutcome::Finished(Err(e.into())),
            }
        };
        let stage_ns = stage_start.elapsed().as_nanos() as u64;
        compute_ns += stage_ns;
        STAGE_COMPUTE.record(stage_ns);
        live_bytes += csr_bytes(&partial);
        peak = peak.max(live_bytes);
        partials.push(partial);
    }
    // A single stage needs no reduction: move the partial out instead
    // of merge-copying it (this also keeps the 1×1 grid's partial
    // footprint at exactly the block size).
    let block = if partials.len() == 1 {
        partials.pop().expect("one partial")
    } else {
        let _g = obs::span!("dist", "dist.shard.merge");
        match merge_add(&partials, pool) {
            Ok(merged) => {
                // During the merge the partials and the merged block
                // coexist.
                peak = peak.max(live_bytes + csr_bytes(&merged));
                merged
            }
            Err(e) => return ProductOutcome::Finished(Err(e.into())),
        }
    };
    let (mut plan_hits, mut plan_rebuilds) = (0u64, 0u64);
    absorb_counters(plan_caches, &mut plan_hits, &mut plan_rebuilds);
    ProductOutcome::Finished(Ok(ShardOutput {
        block,
        peak_partial_bytes: peak,
        compute_ns,
        plan_hits,
        plan_rebuilds,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spec_parse_and_display() {
        let g = GridSpec::parse("2x2").unwrap();
        assert_eq!((g.rows(), g.cols(), g.shards(), g.stages()), (2, 2, 4, 2));
        assert_eq!(g.to_string(), "2x2");
        assert_eq!(GridSpec::parse("4X1"), Some(GridSpec::new(4, 1)));
        assert_eq!(GridSpec::parse("nope"), None);
        assert_eq!(GridSpec::new(0, 0).shards(), 1, "clamped");
    }

    #[test]
    fn identity_product_all_grids() {
        let a = Csr::<f64>::identity(17);
        for grid in [
            GridSpec::new(1, 1),
            GridSpec::new(2, 1),
            GridSpec::new(2, 2),
            GridSpec::new(3, 2),
        ] {
            let rt = ShardRuntime::new(DistConfig {
                grid,
                ..DistConfig::default()
            });
            let c = rt.multiply(&a, &a).unwrap();
            assert_eq!(c, a, "grid {grid}");
        }
    }

    #[test]
    fn shape_mismatch_reported() {
        let rt = ShardRuntime::new(DistConfig::default());
        let a = Csr::<f64>::zero(3, 4);
        let b = Csr::<f64>::zero(3, 4);
        assert!(matches!(
            rt.multiply(&a, &b),
            Err(DistError::Sparse(SparseError::ShapeMismatch { .. }))
        ));
        // The fleet survives a rejected product.
        let i = Csr::<f64>::identity(4);
        assert_eq!(rt.multiply(&i, &i).unwrap().nnz(), 4);
    }

    #[test]
    fn mid_product_kernel_error_is_contained_and_fleet_survives() {
        // Heap requires sorted inputs; an unsorted operand makes every
        // shard's stage product fail *mid-pipeline* (after Begin and
        // stage blocks were broadcast). The error must surface cleanly
        // and the very next product on the same runtime must succeed —
        // no stale results from the failed epoch, no stuck shards.
        let rt = ShardRuntime::new(DistConfig {
            grid: GridSpec::new(2, 2),
            algo: Algorithm::Heap,
            ..DistConfig::default()
        });
        let unsorted = Csr::from_parts(
            4,
            4,
            vec![0, 2, 2, 3, 4],
            vec![2, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert!(!unsorted.is_sorted());
        match rt.multiply(&unsorted, &unsorted) {
            Err(DistError::Sparse(SparseError::Unsorted { .. })) => {}
            other => panic!("expected Unsorted, got {other:?}"),
        }
        let i = Csr::<f64>::identity(8);
        for _ in 0..2 {
            assert_eq!(rt.multiply(&i, &i).unwrap(), i, "fleet still serves");
        }
        assert_eq!(rt.stats().products, 2, "only successful products count");
    }

    #[test]
    fn steady_state_hits_plans() {
        let a = Csr::<f64>::identity(32);
        let rt = ShardRuntime::new(DistConfig {
            grid: GridSpec::new(2, 2),
            ..DistConfig::default()
        });
        let (_, s1) = rt.multiply_with_stats(&a, &a).unwrap();
        let (_, s2) = rt.multiply_with_stats(&a, &a).unwrap();
        assert_eq!(
            s2.plan_rebuilds, s1.plan_rebuilds,
            "no symbolic recomputation on a stable structure"
        );
        assert_eq!(
            s2.plan_hits - s1.plan_hits,
            (rt.grid().shards() * rt.grid().stages()) as u64,
            "every shard × stage hit its cached plan"
        );
        assert_eq!(rt.stats().products, 2);
    }

    #[test]
    fn rectangular_product_matches_reference() {
        // 7x5 · 5x9 with a deliberately lumpy pattern.
        let a = Csr::from_triplets(
            7,
            5,
            &[
                (0, 0, 1.0),
                (0, 4, 2.0),
                (2, 1, 3.0),
                (3, 3, 4.0),
                (6, 0, 5.0),
                (6, 2, 6.0),
            ],
        )
        .unwrap();
        let b = Csr::from_triplets(
            5,
            9,
            &[
                (0, 8, 1.0),
                (1, 0, 2.0),
                (2, 4, 3.0),
                (3, 3, 4.0),
                (4, 7, 5.0),
                (4, 8, 6.0),
            ],
        )
        .unwrap();
        let oracle =
            spgemm::multiply_f64(&a, &b, Algorithm::Reference, OutputOrder::Sorted).unwrap();
        for grid in [GridSpec::new(2, 2), GridSpec::new(3, 1)] {
            let rt = ShardRuntime::new(DistConfig {
                grid,
                ..DistConfig::default()
            });
            let c = rt.multiply(&a, &b).unwrap();
            assert_eq!(c, oracle, "grid {grid}");
        }
    }
}
