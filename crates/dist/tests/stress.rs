//! Concurrency stress: one shared [`ShardRuntime`] hammered by
//! multiple submitter threads. Products serialize on the fleet's
//! internal lock; every submitter must get exactly its own, correct
//! result even as the plan caches rebind between the interleaved
//! structures.

use spgemm::{Algorithm, OutputOrder};
use spgemm_dist::{DistConfig, GridSpec, ShardRuntime};
use spgemm_sparse::Csr;
use std::sync::Arc;

fn integerize(m: &Csr<f64>) -> Csr<f64> {
    m.map(|v| (v * 1e4).abs().floor() % 4.0 + 1.0)
}

#[test]
fn shared_runtime_under_concurrent_submitters() {
    // Four structurally distinct inputs and their oracle squares.
    let inputs: Vec<Arc<Csr<f64>>> = (0..4)
        .map(|i| {
            Arc::new(integerize(&spgemm_gen::rmat::generate_kind(
                if i % 2 == 0 {
                    spgemm_gen::RmatKind::Er
                } else {
                    spgemm_gen::RmatKind::G500
                },
                6,
                3 + i,
                &mut spgemm_gen::rng(100 + i as u64),
            )))
        })
        .collect();
    let oracles: Vec<Arc<Csr<f64>>> = inputs
        .iter()
        .map(|a| {
            Arc::new(spgemm::multiply_f64(a, a, Algorithm::Reference, OutputOrder::Sorted).unwrap())
        })
        .collect();

    let rt = Arc::new(ShardRuntime::new(DistConfig {
        grid: GridSpec::new(2, 2),
        ..DistConfig::default()
    }));

    let submitters: Vec<_> = (0..4usize)
        .map(|t| {
            let rt = Arc::clone(&rt);
            let inputs = inputs.clone();
            let oracles = oracles.clone();
            std::thread::spawn(move || {
                // Each submitter walks the inputs in a different
                // rotation so structures interleave maximally.
                for round in 0..6 {
                    let i = (t + round) % inputs.len();
                    let c = rt.multiply(&inputs[i], &inputs[i]).unwrap();
                    assert_eq!(
                        &c,
                        oracles[i].as_ref(),
                        "submitter {t} round {round} input {i}"
                    );
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter panicked");
    }
    let stats = rt.stats();
    assert_eq!(stats.products, 24, "every submission executed");
}
