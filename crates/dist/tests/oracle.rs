//! Oracle tests: the sharded gather must equal the single-node
//! `Reference` kernel for every partition grid × output order, across
//! structurally **disjoint** sparsity patterns pushed through one
//! runtime — the pattern drift that forces per-stage plan rebinds and
//! would expose any stale-workspace reuse between products.

use spgemm::{Algorithm, OutputOrder};
use spgemm_dist::{DistConfig, DistError, GridSpec, ShardRuntime};
use spgemm_sparse::{approx_eq_f64, Csr};

/// Exactly-representable values in `{1, 2, 3, 4}` so additive
/// reductions are order-insensitive and oracle comparisons exact.
fn integerize(m: &Csr<f64>) -> Csr<f64> {
    m.map(|v| (v * 1e4).abs().floor() % 4.0 + 1.0)
}

/// Matrices whose sparsity patterns are pairwise disjoint-ish in
/// structure class: band, power-law, grid stencil, plus a shifted
/// band (same nnz budget, different columns).
fn disjoint_patterns() -> Vec<Csr<f64>> {
    let mut r = spgemm_gen::rng(20260728);
    let band = spgemm_gen::suite::band_matrix(96, 7, &mut r);
    let pl = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 7, 6, &mut r);
    let grid = spgemm_gen::poisson::poisson2d(10);
    let shifted = {
        let m = spgemm_gen::suite::band_matrix(96, 7, &mut r);
        let nr = m.nrows() as u32;
        // Move the band off the diagonal: permute columns cyclically.
        let perm: Vec<u32> = (0..nr).map(|i| (i + nr / 3) % nr).collect();
        spgemm_sparse::ops::permute_cols(&m, &perm).unwrap()
    };
    vec![
        integerize(&band),
        integerize(&pl),
        integerize(&grid),
        integerize(&shifted),
    ]
}

fn oracle(a: &Csr<f64>) -> Csr<f64> {
    spgemm::multiply_f64(a, a, Algorithm::Reference, OutputOrder::Sorted).unwrap()
}

#[test]
fn every_grid_and_order_matches_reference_across_disjoint_patterns() {
    let inputs = disjoint_patterns();
    let oracles: Vec<Csr<f64>> = inputs.iter().map(oracle).collect();
    for grid in [
        GridSpec::new(1, 1),
        GridSpec::new(2, 1),
        GridSpec::new(4, 1),
        GridSpec::new(2, 2),
    ] {
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let rt = ShardRuntime::new(DistConfig {
                grid,
                order,
                ..DistConfig::default()
            });
            for (round, (a, want)) in inputs.iter().zip(&oracles).enumerate() {
                let c = rt.multiply(a, a).unwrap_or_else(|e: DistError| {
                    panic!("grid {grid} order {order:?} round {round}: {e}")
                });
                if order == OutputOrder::Sorted {
                    assert_eq!(&c, want, "grid {grid} sorted round {round}: byte-for-byte");
                } else {
                    assert!(
                        approx_eq_f64(&c, want, 0.0),
                        "grid {grid} unsorted round {round}: content equality"
                    );
                }
            }
        }
    }
}

#[test]
fn pattern_drift_then_return_still_exact() {
    // A → B → A through one runtime: returning to a previously seen
    // structure after a rebind must still be exact (per-stage caches
    // rebound away and back).
    let inputs = disjoint_patterns();
    let (a, b) = (&inputs[0], &inputs[1]);
    let rt = ShardRuntime::new(DistConfig {
        grid: GridSpec::new(2, 2),
        ..DistConfig::default()
    });
    let first = rt.multiply(a, a).unwrap();
    assert_eq!(first, oracle(a));
    assert_eq!(rt.multiply(b, b).unwrap(), oracle(b));
    let back = rt.multiply(a, a).unwrap();
    assert_eq!(back, first, "return to a known structure is stable");
}

#[test]
fn steady_state_performs_no_symbolic_recomputation() {
    let a = integerize(&spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::Er,
        7,
        5,
        &mut spgemm_gen::rng(9),
    ));
    let rt = ShardRuntime::new(DistConfig {
        grid: GridSpec::new(2, 2),
        ..DistConfig::default()
    });
    let (_, s1) = rt.multiply_with_stats(&a, &a).unwrap();
    let per_round = (rt.grid().shards() * rt.grid().stages()) as u64;
    assert_eq!(s1.plan_rebuilds, per_round, "cold round builds every plan");
    for k in 2..=4u64 {
        let (_, s) = rt.multiply_with_stats(&a, &a).unwrap();
        assert_eq!(s.plan_rebuilds, per_round, "round {k}: rebuilds frozen");
        assert_eq!(s.plan_hits, (k - 1) * per_round, "round {k}: all hits");
    }
}
