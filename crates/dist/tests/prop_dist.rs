//! Property tests: for arbitrary generator inputs, grids and shard
//! widths, the sharded gather is **byte-for-byte** the single-node
//! `Reference` product (values are exactly-representable integers so
//! additive reduction order cannot perturb bits).

use proptest::prelude::*;
use spgemm::{Algorithm, OutputOrder};
use spgemm_dist::{DistConfig, GridSpec, ShardRuntime};
use spgemm_sparse::Csr;

fn integerize(m: &Csr<f64>) -> Csr<f64> {
    m.map(|v| (v * 1e4).abs().floor() % 4.0 + 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn gather_is_byte_for_byte_reference(
        scale in 5u32..7,
        ef in 1usize..6,
        seed in 0u64..1000,
        grid_rows in 1usize..4,
        grid_cols in 1usize..3,
        threads in 1usize..3,
        skew in prop::bool::ANY,
    ) {
        let kind = if skew { spgemm_gen::RmatKind::G500 } else { spgemm_gen::RmatKind::Er };
        let a = integerize(&spgemm_gen::rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(seed)));
        let want = spgemm::multiply_f64(&a, &a, Algorithm::Reference, OutputOrder::Sorted).unwrap();
        let rt = ShardRuntime::new(DistConfig {
            grid: GridSpec::new(grid_rows, grid_cols),
            threads_per_shard: threads,
            ..DistConfig::default()
        });
        let c = rt.multiply(&a, &a).unwrap();
        prop_assert_eq!(c, want);
    }

    #[test]
    fn rectangular_chain_matches_reference(
        seed in 0u64..1000,
        grid_rows in 1usize..4,
    ) {
        // A (square, power-law) times a tall-skinny block — the §5.5
        // shape — through a row-sharded grid.
        let a = integerize(&spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500, 6, 4, &mut spgemm_gen::rng(seed)));
        let b = integerize(
            &spgemm_gen::tallskinny::tall_skinny(&a, 9, &mut spgemm_gen::rng(seed ^ 1)).unwrap());
        let want = spgemm::multiply_f64(&a, &b, Algorithm::Reference, OutputOrder::Sorted).unwrap();
        let rt = ShardRuntime::new(DistConfig {
            grid: GridSpec::new(grid_rows, 2),
            ..DistConfig::default()
        });
        prop_assert_eq!(rt.multiply(&a, &b).unwrap(), want);
    }
}
