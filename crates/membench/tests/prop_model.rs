//! Property tests for the MCDRAM memory model: the substitution's
//! validity rests on these invariants holding for *every* input, not
//! just the calibration points.

use proptest::prelude::*;
use spgemm_membench::memmodel::{AccessProfile, MemoryModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ratio_bounded_and_monotone(s1 in 8.0f64..1e6, s2 in 8.0f64..1e6) {
        let m = MemoryModel::default();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let r_lo = m.cache_mode_ratio(lo);
        let r_hi = m.cache_mode_ratio(hi);
        prop_assert!((1.0..=m.mcdram_ratio + 1e-9).contains(&r_lo));
        prop_assert!((1.0..=m.mcdram_ratio + 1e-9).contains(&r_hi));
        prop_assert!(r_hi >= r_lo - 1e-12, "ratio must not decrease with stanza length");
    }

    #[test]
    fn bandwidth_never_exceeds_peak(s in 8.0f64..1e9) {
        let m = MemoryModel::default();
        prop_assert!(m.ddr_bandwidth(s) <= m.ddr_peak_gbs + 1e-9);
        prop_assert!(m.mcdram_bandwidth(s) <= m.ddr_peak_gbs * m.mcdram_ratio + 1e-9);
        prop_assert!(m.ddr_bandwidth(s) > 0.0);
    }

    #[test]
    fn speedup_bounded_by_model_ratio(
        stanzas in proptest::collection::vec((3u32..20, 1u64..1_000_000_000), 1..8),
        compute_mult in 0.0f64..10.0,
    ) {
        let m = MemoryModel::default();
        let mut p = AccessProfile::default();
        for (s, b) in stanzas {
            p.add(1usize << s, b);
        }
        let t_mem = m.ddr_time(&p);
        prop_assume!(t_mem > 0.0);
        let measured = t_mem * (1.0 + compute_mult);
        let sp = m.predict_speedup(measured, &p);
        prop_assert!(sp >= 0.99, "cache mode must never predict slowdown from the bw model: {sp}");
        prop_assert!(
            sp <= m.mcdram_ratio + 1e-9,
            "speedup cannot exceed the bandwidth ratio: {sp}"
        );
        // more compute -> less speedup
        let sp2 = m.predict_speedup(measured * 2.0, &p);
        prop_assert!(sp2 <= sp + 1e-9);
    }

    #[test]
    fn profile_total_is_sum_of_adds(
        adds in proptest::collection::vec((8usize..100_000, 1u64..1_000_000), 0..50),
    ) {
        let mut p = AccessProfile::default();
        let mut expect = 0u64;
        for (s, b) in adds {
            p.add(s, b);
            expect += b;
        }
        prop_assert_eq!(p.total_bytes(), expect);
        // buckets stay sorted and deduplicated
        prop_assert!(p.buckets.windows(2).all(|w| w[0].stanza_bytes < w[1].stanza_bytes));
    }

    #[test]
    fn calibration_scales_times_inversely(peak in 1.0f64..500.0) {
        let base = MemoryModel::default();
        let cal = MemoryModel::default().with_measured_ddr(peak);
        let mut p = AccessProfile::default();
        p.add(4096, 1 << 30);
        let ratio = base.ddr_time(&p) / cal.ddr_time(&p);
        prop_assert!((ratio - peak / base.ddr_peak_gbs).abs() < 1e-6);
    }
}
