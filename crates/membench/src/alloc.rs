//! Allocation / touch / deallocation cost, "single" vs "parallel"
//! (Figures 3 & 4 of the paper).
//!
//! The "single" scheme allocates one buffer of the full size on the
//! calling thread; the "parallel" scheme (Figure 3) has every worker
//! allocate, touch, and free `total / nthreads` privately. The paper's
//! KNL result — parallel deallocation of large buffers is order-of-
//! magnitude cheaper — motivates the thread-private scratch design
//! used by every kernel in this repository. A third, "pooled" scheme
//! measures what reuse via [`spgemm_par::alloc::ThreadScratch`] buys
//! over repeated parallel allocation.

use spgemm_par::Pool;
use std::time::Instant;

/// Phase timings in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocTimings {
    /// Reserve the address space (malloc).
    pub alloc_ms: f64,
    /// First write to every page.
    pub touch_ms: f64,
    /// Free (the paper's Figure 4 quantity).
    pub dealloc_ms: f64,
}

/// "Single" scheme: one thread, one buffer of `total_bytes`.
pub fn measure_single(total_bytes: usize) -> AllocTimings {
    let t0 = Instant::now();
    let mut v: Vec<u8> = Vec::with_capacity(total_bytes);
    let t1 = Instant::now();
    v.resize(total_bytes, 1);
    std::hint::black_box(v.as_ptr());
    let t2 = Instant::now();
    drop(v);
    let t3 = Instant::now();
    AllocTimings {
        alloc_ms: (t1 - t0).as_secs_f64() * 1e3,
        touch_ms: (t2 - t1).as_secs_f64() * 1e3,
        dealloc_ms: (t3 - t2).as_secs_f64() * 1e3,
    }
}

/// "Parallel" scheme (Figure 3): every worker allocates, touches, and
/// frees its `total_bytes / nthreads` share inside the parallel
/// region. Phases are separated by region barriers and timed on the
/// caller.
pub fn measure_parallel(pool: &Pool, total_bytes: usize) -> AllocTimings {
    let nt = pool.nthreads();
    let each = total_bytes / nt.max(1);
    let slots: Vec<parking_lot::Mutex<Option<Vec<u8>>>> =
        (0..nt).map(|_| parking_lot::Mutex::new(None)).collect();

    let t0 = Instant::now();
    pool.broadcast(|wid| {
        *slots[wid].lock() = Some(Vec::with_capacity(each));
    });
    let t1 = Instant::now();
    pool.broadcast(|wid| {
        let mut g = slots[wid].lock();
        let v = g.as_mut().expect("allocated in previous phase");
        v.resize(each, 1);
        std::hint::black_box(v.as_ptr());
    });
    let t2 = Instant::now();
    pool.broadcast(|wid| {
        drop(slots[wid].lock().take());
    });
    let t3 = Instant::now();
    AllocTimings {
        alloc_ms: (t1 - t0).as_secs_f64() * 1e3,
        touch_ms: (t2 - t1).as_secs_f64() * 1e3,
        dealloc_ms: (t3 - t2).as_secs_f64() * 1e3,
    }
}

/// "Pooled" scheme: the parallel scheme amortized through reusable
/// thread-private buffers — after the first call, allocation and
/// deallocation cost approaches zero. Returns timings of the *second*
/// use (steady state).
pub fn measure_pooled(pool: &Pool, total_bytes: usize) -> AllocTimings {
    let nt = pool.nthreads();
    let each = total_bytes / nt.max(1);
    let scratch = spgemm_par::alloc::ThreadScratch::<u8>::for_pool(pool);
    // warmup: first use pays the real allocation
    pool.broadcast(|wid| {
        scratch.with(wid, |b| b.resize(each, 1));
    });
    let t0 = Instant::now();
    pool.broadcast(|wid| {
        scratch.with(wid, |b| {
            b.clear();
            b.resize(each, 1); // no allocation: capacity retained
            std::hint::black_box(b.as_ptr());
        });
    });
    let t1 = Instant::now();
    AllocTimings {
        alloc_ms: 0.0,
        touch_ms: (t1 - t0).as_secs_f64() * 1e3,
        dealloc_ms: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_timings_nonnegative_and_touch_dominates_tiny_alloc() {
        let t = measure_single(1 << 22); // 4 MiB
        assert!(t.alloc_ms >= 0.0 && t.touch_ms >= 0.0 && t.dealloc_ms >= 0.0);
        assert!(t.touch_ms > 0.0, "writing 4 MiB takes measurable time");
    }

    #[test]
    fn parallel_scheme_covers_full_size() {
        let pool = Pool::new(2);
        let t = measure_parallel(&pool, 1 << 22);
        assert!(t.touch_ms > 0.0);
    }

    #[test]
    fn pooled_steady_state_reports_zero_alloc() {
        let pool = Pool::new(2);
        let t = measure_pooled(&pool, 1 << 20);
        assert_eq!(t.alloc_ms, 0.0);
        assert_eq!(t.dealloc_ms, 0.0);
    }
}
