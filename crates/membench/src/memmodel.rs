//! Two-level memory model standing in for MCDRAM (substitution S15,
//! DESIGN.md §2).
//!
//! This container has no MCDRAM, so the "MCDRAM as Cache" series of
//! Figure 5 and the Cache-vs-Flat speedups of Figure 10 cannot be
//! *measured*. They can be *modeled*: the paper's own Figure 5 gives
//! the shape — ≈3.4× peak bandwidth at wide stanzas, no benefit at
//! 8–64-byte stanzas (latency-bound regime), a smooth transition in
//! between. The model below reproduces exactly that curve and applies
//! it to the stanza profile of a real SpGEMM run (which *is* measured
//! on this machine) to predict the Cache-mode speedup.

use spgemm_sparse::Csr;

/// Bandwidth model for DDR and modeled-MCDRAM as a function of stanza
/// length.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// DDR peak bandwidth (GB/s) at wide stanzas. Calibrate with
    /// [`crate::stanza::stanza_bandwidth`] or use the paper default.
    pub ddr_peak_gbs: f64,
    /// MCDRAM peak over DDR peak; the paper measures "over 3.4×".
    pub mcdram_ratio: f64,
    /// Stanza length (bytes) below which MCDRAM gives no benefit
    /// (Figure 5: "when the stanza length is small, there is little
    /// benefit"); the paper's curves separate past ~64 B.
    pub latency_floor_bytes: f64,
    /// Stanza length (bytes) at which the MCDRAM ratio saturates
    /// (Figure 5 separates fully by a few KiB).
    pub saturation_bytes: f64,
    /// Half-saturation stanza length (bytes) of the DDR curve itself
    /// (both memories lose bandwidth on tiny stanzas).
    pub ddr_half_bytes: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        // Paper Figure 5: DDR ~90 GB/s class on KNL, MCDRAM 3.4x,
        // benefit visible from ~64 B, saturated by ~4 KiB.
        MemoryModel {
            ddr_peak_gbs: 90.0,
            mcdram_ratio: 3.4,
            latency_floor_bytes: 64.0,
            saturation_bytes: 4096.0,
            ddr_half_bytes: 64.0,
        }
    }
}

impl MemoryModel {
    /// Replace the DDR peak with a measured value (GB/s).
    pub fn with_measured_ddr(mut self, gbs: f64) -> Self {
        self.ddr_peak_gbs = gbs.max(0.1);
        self
    }

    /// DDR bandwidth (GB/s) at the given stanza length: a saturating
    /// curve `peak · s / (s + s_half)` matching the measured shape of
    /// random fine-grained access.
    pub fn ddr_bandwidth(&self, stanza_bytes: f64) -> f64 {
        let s = stanza_bytes.max(8.0);
        self.ddr_peak_gbs * s / (s + self.ddr_half_bytes)
    }

    /// Modeled MCDRAM-as-cache bandwidth at the given stanza length:
    /// the DDR curve times a ratio that interpolates log-linearly from
    /// 1.0 at the latency floor to `mcdram_ratio` at saturation.
    pub fn mcdram_bandwidth(&self, stanza_bytes: f64) -> f64 {
        self.ddr_bandwidth(stanza_bytes) * self.cache_mode_ratio(stanza_bytes)
    }

    /// The stanza-dependent MCDRAM/DDR ratio described above.
    pub fn cache_mode_ratio(&self, stanza_bytes: f64) -> f64 {
        let s = stanza_bytes.max(8.0);
        if s <= self.latency_floor_bytes {
            return 1.0;
        }
        if s >= self.saturation_bytes {
            return self.mcdram_ratio;
        }
        let t = (s.ln() - self.latency_floor_bytes.ln())
            / (self.saturation_bytes.ln() - self.latency_floor_bytes.ln());
        1.0 + t * (self.mcdram_ratio - 1.0)
    }

    /// Time (seconds) to move the given access profile through DDR.
    pub fn ddr_time(&self, profile: &AccessProfile) -> f64 {
        profile
            .buckets
            .iter()
            .map(|b| b.bytes as f64 / (self.ddr_bandwidth(b.stanza_bytes as f64) * 1e9))
            .sum()
    }

    /// Time (seconds) to move the profile through modeled MCDRAM.
    pub fn mcdram_time(&self, profile: &AccessProfile) -> f64 {
        profile
            .buckets
            .iter()
            .map(|b| b.bytes as f64 / (self.mcdram_bandwidth(b.stanza_bytes as f64) * 1e9))
            .sum()
    }

    /// Predict the Cache-mode speedup of a kernel whose *measured* DDR
    /// wall time is `measured_secs` and whose memory traffic is
    /// `profile`: the compute share `max(0, measured − t_mem_ddr)` is
    /// unchanged, the memory share scales by the model.
    pub fn predict_speedup(&self, measured_secs: f64, profile: &AccessProfile) -> f64 {
        let t_ddr = self.ddr_time(profile).min(measured_secs);
        let compute = (measured_secs - t_ddr).max(0.0);
        let t_mcd = self.mcdram_time(profile);
        measured_secs / (compute + t_mcd)
    }
}

/// A histogram of memory traffic by stanza length (power-of-two
/// buckets).
#[derive(Clone, Debug, Default)]
pub struct AccessProfile {
    /// Traffic buckets, ascending in stanza length.
    pub buckets: Vec<Bucket>,
}

/// One histogram bucket.
#[derive(Clone, Copy, Debug)]
pub struct Bucket {
    /// Representative stanza length (bytes).
    pub stanza_bytes: usize,
    /// Total bytes moved at this stanza length.
    pub bytes: u64,
}

impl AccessProfile {
    /// Total traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.buckets.iter().map(|b| b.bytes).sum()
    }

    /// Add `bytes` of traffic at `stanza_bytes` granularity (bucketed
    /// to the nearest power of two).
    pub fn add(&mut self, stanza_bytes: usize, bytes: u64) {
        let bucket = stanza_bytes.max(8).next_power_of_two();
        match self
            .buckets
            .binary_search_by_key(&bucket, |b| b.stanza_bytes)
        {
            Ok(i) => self.buckets[i].bytes += bytes,
            Err(i) => self.buckets.insert(
                i,
                Bucket {
                    stanza_bytes: bucket,
                    bytes,
                },
            ),
        }
    }
}

/// Entry size of a CSR element (4-byte column + 8-byte value), the
/// stanza unit of B-row accesses.
pub const CSR_ENTRY_BYTES: usize = 12;

/// Build the *B-row access profile* of `A · B` analytically: every
/// nonzero `a_ik` streams the `nnz(b_k*)` entries of row `k` of `B` —
/// a stanza of `nnz(b_k*) · 12` bytes from an effectively random
/// location (§3.3's "stanza-like memory access pattern").
pub fn b_access_profile<T, U>(a: &Csr<T>, b: &Csr<U>) -> AccessProfile
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync,
{
    let mut p = AccessProfile::default();
    for i in 0..a.nrows() {
        for &k in a.row_cols(i) {
            let len = b.row_nnz(k as usize);
            if len > 0 {
                p.add(len * CSR_ENTRY_BYTES, (len * CSR_ENTRY_BYTES) as u64);
            }
        }
    }
    p
}

/// Accumulator-traffic model: the extra fine-grained traffic of an
/// accumulator whose working set does **not** fit in cache. Heap
/// accumulation touches one ~16-byte entry per product; hash tables
/// smaller than `cache_bytes` are considered cache-resident and add
/// nothing (the paper's explanation for heap's missing MCDRAM
/// benefit).
pub fn accumulator_profile(
    flop: u64,
    working_set_bytes: usize,
    cache_bytes: usize,
) -> AccessProfile {
    let mut p = AccessProfile::default();
    if working_set_bytes > cache_bytes {
        p.add(16, flop.saturating_mul(16));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_matches_paper_endpoints() {
        let m = MemoryModel::default();
        assert_eq!(
            m.cache_mode_ratio(8.0),
            1.0,
            "8 B random access: no benefit"
        );
        assert_eq!(m.cache_mode_ratio(64.0), 1.0);
        assert!(
            (m.cache_mode_ratio(8192.0) - 3.4).abs() < 1e-9,
            "saturated at 3.4x"
        );
        let mid = m.cache_mode_ratio(512.0);
        assert!(mid > 1.0 && mid < 3.4, "transition region: {mid}");
    }

    #[test]
    fn bandwidth_monotone_in_stanza() {
        let m = MemoryModel::default();
        let mut prev = 0.0;
        for s in [8.0, 64.0, 512.0, 4096.0, 65536.0] {
            let bw = m.mcdram_bandwidth(s);
            assert!(bw >= prev, "stanza {s}: {bw} < {prev}");
            prev = bw;
        }
    }

    #[test]
    fn profile_bucketing_merges() {
        let mut p = AccessProfile::default();
        p.add(100, 1000); // -> 128 bucket
        p.add(120, 500); // -> 128 bucket
        p.add(8, 64);
        assert_eq!(p.buckets.len(), 2);
        assert_eq!(p.total_bytes(), 1564);
        assert!(p
            .buckets
            .windows(2)
            .all(|w| w[0].stanza_bytes < w[1].stanza_bytes));
    }

    #[test]
    fn speedup_bounded_by_ratio_and_one() {
        let m = MemoryModel::default();
        let mut wide = AccessProfile::default();
        wide.add(1 << 16, 1 << 30); // 1 GiB of wide stanzas
        let t_ddr = m.ddr_time(&wide);
        // fully memory bound: speedup approaches the ratio
        let s = m.predict_speedup(t_ddr, &wide);
        assert!(s > 3.0 && s <= 3.5, "memory-bound speedup {s}");
        // fully compute bound: speedup approaches 1
        let s = m.predict_speedup(t_ddr * 100.0, &wide);
        assert!(s < 1.05, "compute-bound speedup {s}");
    }

    #[test]
    fn fine_grained_profile_gets_no_speedup() {
        let m = MemoryModel::default();
        let mut fine = AccessProfile::default();
        fine.add(8, 1 << 28);
        let t = m.ddr_time(&fine);
        let s = m.predict_speedup(t, &fine);
        assert!((s - 1.0).abs() < 1e-9, "8 B stanzas: {s}");
    }

    #[test]
    fn b_profile_counts_all_traffic() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        let p = b_access_profile(&a, &a);
        // row 0 reads B rows 0 (2 entries) and 1 (1 entry); row 1 reads B row 1.
        assert_eq!(p.total_bytes(), (2 + 1 + 1) as u64 * CSR_ENTRY_BYTES as u64);
    }

    #[test]
    fn accumulator_profile_cache_resident_is_empty() {
        let p = accumulator_profile(1_000_000, 1 << 10, 1 << 20);
        assert_eq!(p.total_bytes(), 0);
        let p = accumulator_profile(1_000_000, 1 << 22, 1 << 20);
        assert_eq!(p.total_bytes(), 16_000_000);
    }
}
