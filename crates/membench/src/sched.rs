//! Scheduling-cost microbenchmark (Figure 2).
//!
//! "…running \[a\] simple program, which only repeats loop iterations
//! without doing anything in the loop. We measure the time during loop
//! iterations" — the loop body is an opaque no-op, so the measured
//! time is the scheduler's bookkeeping: block arithmetic for static,
//! one atomic RMW per chunk for dynamic, a CAS with shrinking chunks
//! for guided.

use spgemm_par::{Pool, Schedule};

/// One measured point of the Figure 2 sweep.
#[derive(Clone, Copy, Debug)]
pub struct SchedPoint {
    /// Loop trip count.
    pub iterations: usize,
    /// Median milliseconds for the whole loop.
    pub millis: f64,
}

/// Time an empty `parallel_for` of `iterations` under `sched`.
pub fn scheduling_cost(pool: &Pool, iterations: usize, sched: Schedule, reps: usize) -> f64 {
    crate::median_millis(reps, || {
        pool.parallel_for(iterations, sched, |i| {
            std::hint::black_box(i);
        });
    })
}

/// The full Figure 2 sweep: `iterations = 2^lo .. 2^hi` for the three
/// policies. Returns `(policy name, points)` series.
pub fn sweep(pool: &Pool, lo: u32, hi: u32, reps: usize) -> Vec<(&'static str, Vec<SchedPoint>)> {
    let policies: [(&'static str, Schedule); 3] = [
        ("static", Schedule::Static),
        ("dynamic", Schedule::DYNAMIC),
        ("guided", Schedule::GUIDED),
    ];
    policies
        .iter()
        .map(|&(name, sched)| {
            let pts = (lo..=hi)
                .map(|s| {
                    let iters = 1usize << s;
                    SchedPoint {
                        iterations: iters,
                        millis: scheduling_cost(pool, iters, sched, reps),
                    }
                })
                .collect();
            (name, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape() {
        let pool = Pool::new(2);
        let series = sweep(&pool, 5, 8, 2);
        assert_eq!(series.len(), 3);
        for (name, pts) in &series {
            assert_eq!(pts.len(), 4, "{name}");
            assert_eq!(pts[0].iterations, 32);
            assert_eq!(pts[3].iterations, 256);
            assert!(pts.iter().all(|p| p.millis >= 0.0));
        }
    }

    #[test]
    fn dynamic_chunk1_costs_more_than_static_at_scale() {
        // The qualitative Figure 2 claim. Measured at a size where the
        // per-iteration atomic clearly dominates; allow equality slack
        // for noisy CI machines.
        let pool = Pool::new(2);
        let st = scheduling_cost(&pool, 1 << 16, Schedule::Static, 3);
        let dy = scheduling_cost(&pool, 1 << 16, Schedule::DYNAMIC, 3);
        assert!(
            dy >= st * 0.8,
            "dynamic ({dy} ms) should not beat static ({st} ms) by much on an empty loop"
        );
    }
}
