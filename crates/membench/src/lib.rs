//! Microbenchmarks from Section 3 of the paper, plus the MCDRAM
//! memory model used where the hardware itself is unavailable.
//!
//! * [`sched`] — OpenMP-style scheduling cost (Figure 2): time an
//!   empty parallel loop under static/dynamic/guided policies.
//! * [`alloc`] — memory allocation/touch/deallocation cost, "single"
//!   vs "parallel" schemes (Figures 3 & 4).
//! * [`stanza`] — the stanza access-pattern bandwidth benchmark
//!   (Figure 5): contiguous blocks of varying length fetched from
//!   random locations.
//! * [`memmodel`] — a two-level bandwidth model calibrated on the
//!   paper's Figure 5 shape, standing in for physical MCDRAM when
//!   predicting Cache-mode speedups (Figure 10). See DESIGN.md §2 for
//!   the substitution rationale.

#![warn(missing_docs)]

pub mod alloc;
pub mod memmodel;
pub mod sched;
pub mod stanza;

use std::time::Instant;

/// Median wall-clock milliseconds of `reps` runs of `f` (one warmup
/// run is discarded).
pub fn median_millis(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    f(); // warmup
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_millis_is_positive_and_sane() {
        let ms = median_millis(3, || {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        assert!(ms >= 0.0);
        assert!(ms < 1_000.0, "10k adds should not take a second: {ms} ms");
    }

    #[test]
    fn median_resists_one_outlier() {
        let mut calls = 0u32;
        let ms = median_millis(5, || {
            calls += 1;
            if calls == 2 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
        });
        assert!(ms < 30.0, "median should discard the single slow rep: {ms}");
    }
}
