//! Stanza access-pattern bandwidth (Figure 5).
//!
//! "…a custom microbenchmark that provides stanza-like memory access
//! patterns (read or update) with spatial locality varying from 8
//! bytes (random access) to the size of the array (i.e. asymptotically
//! the STREAM benchmark)". Row-wise SpGEMM reads rows of `B` exactly
//! this way: small contiguous blocks from effectively random
//! locations, so this curve predicts when high-bandwidth memory can
//! help SpGEMM at all.

use spgemm_par::Pool;
use std::time::Instant;

/// Access mode of the benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Sum the stanza (read-only traffic).
    Read,
    /// Increment the stanza in place (read+write traffic).
    Update,
}

/// One measured point: stanza length and achieved bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct StanzaPoint {
    /// Contiguous bytes per access.
    pub stanza_bytes: usize,
    /// Achieved GB/s over the whole sweep.
    pub gbytes_per_sec: f64,
}

const WORD: usize = std::mem::size_of::<u64>();

/// Measure stanza bandwidth over an array of `total_bytes`, reading
/// (or updating) `stanza_bytes` contiguous bytes from pseudo-random
/// aligned offsets until every worker has moved its share of
/// `traffic_bytes`.
pub fn stanza_bandwidth(
    pool: &Pool,
    total_bytes: usize,
    stanza_bytes: usize,
    traffic_bytes: usize,
    mode: Mode,
) -> f64 {
    let words_total = (total_bytes / WORD).max(1);
    let words_stanza = (stanza_bytes / WORD).max(1).min(words_total);
    let nt = pool.nthreads();
    let per_thread_stanzas = (traffic_bytes / nt.max(1) / (words_stanza * WORD)).max(1);

    let mut array = vec![1u64; words_total];
    // pre-touch so page faults are not measured
    for (i, x) in array.iter_mut().enumerate() {
        *x = i as u64;
    }
    let array_cell = spgemm_par::unsync::SharedMutSlice::new(&mut array[..]);
    let nstanzas_in_array = (words_total / words_stanza).max(1);

    let t0 = Instant::now();
    pool.broadcast(|wid| {
        // per-worker LCG for offset selection
        let mut state = 0x9E3779B97F4A7C15u64 ^ (wid as u64);
        let mut acc = 0u64;
        for _ in 0..per_thread_stanzas {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (state >> 17) as usize % nstanzas_in_array;
            let start = s * words_stanza;
            match mode {
                Mode::Read => {
                    // SAFETY: read-only overlap between workers is
                    // benign for bandwidth measurement; values unused.
                    let block = unsafe { array_cell.slice_mut(start..start + words_stanza) };
                    for &w in block.iter() {
                        acc = acc.wrapping_add(w);
                    }
                }
                Mode::Update => {
                    // SAFETY: racy increments are acceptable — the
                    // benchmark measures traffic, not values.
                    let block = unsafe { array_cell.slice_mut(start..start + words_stanza) };
                    for w in block.iter_mut() {
                        *w = w.wrapping_add(1);
                    }
                }
            }
        }
        std::hint::black_box(acc);
    });
    let secs = t0.elapsed().as_secs_f64();
    let bytes_moved = per_thread_stanzas * words_stanza * WORD * nt;
    bytes_moved as f64 / secs / 1e9
}

/// The Figure 5 sweep: stanza length `2^lo..2^hi` bytes.
pub fn sweep(
    pool: &Pool,
    total_bytes: usize,
    traffic_bytes: usize,
    lo: u32,
    hi: u32,
    mode: Mode,
) -> Vec<StanzaPoint> {
    (lo..=hi)
        .map(|s| {
            let stanza = 1usize << s;
            StanzaPoint {
                stanza_bytes: stanza,
                gbytes_per_sec: stanza_bandwidth(pool, total_bytes, stanza, traffic_bytes, mode),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_positive_and_finite() {
        let pool = Pool::new(2);
        for mode in [Mode::Read, Mode::Update] {
            let g = stanza_bandwidth(&pool, 1 << 22, 64, 1 << 22, mode);
            assert!(g.is_finite() && g > 0.0, "{mode:?}: {g}");
        }
    }

    #[test]
    fn wide_stanzas_not_slower_than_tiny_ones() {
        // the qualitative Figure 5 claim on any real memory system;
        // allow generous slack for virtualized CI
        let pool = Pool::new(2);
        let tiny = stanza_bandwidth(&pool, 1 << 24, 8, 1 << 24, Mode::Read);
        let wide = stanza_bandwidth(&pool, 1 << 24, 1 << 16, 1 << 24, Mode::Read);
        assert!(
            wide > tiny * 0.8,
            "wide-stanza bandwidth {wide} should not fall below tiny-stanza {tiny}"
        );
    }

    #[test]
    fn sweep_has_expected_points() {
        let pool = Pool::new(1);
        let pts = sweep(&pool, 1 << 20, 1 << 20, 3, 6, Mode::Read);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].stanza_bytes, 8);
        assert_eq!(pts[3].stanza_bytes, 64);
    }
}
