//! End-to-end tests of the serving engine: correctness under
//! concurrency, queue semantics observable from outside, plan-cache
//! behaviour, and the exactly-once delivery invariant.

use spgemm::{Algorithm, OutputOrder};
use spgemm_dist::GridSpec;
use spgemm_serve::{DistRouting, Priority, ProductRequest, ServeConfig, ServeEngine, ServeError};
use spgemm_sparse::{approx_eq_f64, Csr, PlusTimes};

type P = PlusTimes<f64>;

fn rmat(scale: u32, ef: usize, seed: u64) -> Csr<f64> {
    let mut rng = spgemm_gen::rng(seed);
    spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, scale, ef, &mut rng)
}

#[test]
fn products_match_reference_across_algorithms() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let a = rmat(6, 4, 1);
    let expect = spgemm::algos::reference::multiply::<P>(&a, &a);
    engine.store().insert("a", a);
    let mut handles = Vec::new();
    for algo in [
        Algorithm::Auto,
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::KkHash,
    ] {
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            handles.push((
                algo,
                order,
                engine
                    .try_submit(ProductRequest::new("a", "a").algo(algo).order(order))
                    .unwrap(),
            ));
        }
    }
    for (algo, order, h) in handles {
        let mut c = (*h.wait().unwrap_or_else(|e| panic!("{algo} {order:?}: {e}"))).clone();
        if !c.is_sorted() {
            c.sort_rows();
        }
        assert!(approx_eq_f64(&expect, &c, 1e-12), "{algo} {order:?}");
    }
    let m = engine.shutdown();
    assert_eq!(m.completed, 12);
    assert_eq!(m.failed + m.cancelled + m.duplicate_completions, 0);
}

#[test]
fn submit_rejects_unknown_names_and_bad_shapes() {
    let engine = ServeEngine::new(ServeConfig::default());
    engine.store().insert("sq", Csr::<f64>::identity(4));
    engine.store().insert("wide", Csr::<f64>::zero(4, 7));
    match engine.try_submit(ProductRequest::new("sq", "missing")) {
        Err(ServeError::UnknownMatrix { name }) => assert_eq!(name, "missing"),
        other => panic!("expected UnknownMatrix, got {other:?}"),
    }
    assert!(matches!(
        engine.try_submit(ProductRequest::new("wide", "sq")),
        Err(ServeError::Sparse(_))
    ));
    let m = engine.shutdown();
    assert_eq!(m.rejected, 2);
    assert_eq!(m.accepted, 0);
}

#[test]
fn sortedness_contract_fails_the_job_not_the_engine() {
    // Heap requires sorted inputs; an unsorted operand must fail that
    // job cleanly and leave the engine serving.
    let engine = ServeEngine::new(ServeConfig::default());
    let mut rng = spgemm_gen::rng(7);
    let a = spgemm_gen::perm::randomize_columns(&rmat(5, 4, 3), &mut rng);
    assert!(!a.is_sorted());
    engine.store().insert("a", a);
    let bad = engine
        .try_submit(ProductRequest::new("a", "a").algo(Algorithm::Heap))
        .unwrap();
    assert!(matches!(bad.wait(), Err(ServeError::Sparse(_))));
    let ok = engine
        .try_submit(ProductRequest::new("a", "a").algo(Algorithm::Hash))
        .unwrap();
    assert!(ok.wait().is_ok());
    let m = engine.shutdown();
    assert_eq!((m.failed, m.completed), (1, 1));
}

#[test]
fn repeated_pattern_hits_shared_cache_and_tracks_new_values() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let a = rmat(6, 4, 11);
    engine.store().insert("a", a.clone());
    for _ in 0..10 {
        engine
            .try_submit(ProductRequest::new("a", "a").algo(Algorithm::Hash))
            .unwrap()
            .wait()
            .unwrap();
    }
    // Same structure, new values: fingerprint unchanged, so the plan
    // is reused numeric-only — and the numbers must be the new ones.
    let scaled = a.map(|v| v * -2.0);
    let expect = spgemm::algos::reference::multiply::<P>(&scaled, &scaled);
    engine.store().insert("a", scaled);
    let c = engine
        .try_submit(ProductRequest::new("a", "a").algo(Algorithm::Hash))
        .unwrap()
        .wait()
        .unwrap();
    assert!(approx_eq_f64(&expect, &c, 1e-12));
    let m = engine.shutdown();
    assert_eq!(m.completed, 11);
    assert!(
        m.plan_cache.hit_rate() > 0.5,
        "stable pattern must mostly hit: {:?}",
        m.plan_cache
    );
    assert_eq!(m.plan_cache.misses, 1, "one symbolic build total");
}

#[test]
fn cancellation_and_shutdown_deliver_every_job_exactly_once() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        queue_capacity: 4096,
        ..ServeConfig::default()
    });
    engine.store().insert("a", rmat(7, 8, 5));
    let handles: Vec<_> = (0..300)
        .map(|i| {
            engine
                .try_submit(
                    ProductRequest::new("a", "a")
                        .algo(Algorithm::Hash)
                        .priority(if i % 3 == 0 {
                            Priority::High
                        } else {
                            Priority::Low
                        }),
                )
                .unwrap()
        })
        .collect();
    // Cancel every third job; some are already running or done — for
    // those cancel() reports false and the normal result stands.
    let mut cancelled_won = 0u64;
    for h in handles.iter().skip(1).step_by(3) {
        if h.cancel() {
            cancelled_won += 1;
        }
    }
    let mut ok = 0u64;
    let mut cancelled_seen = 0u64;
    for h in &handles {
        match h.wait() {
            Ok(c) => {
                assert!(c.nnz() > 0);
                ok += 1;
            }
            Err(ServeError::Cancelled) => cancelled_seen += 1,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert_eq!(cancelled_seen, cancelled_won, "cancel() wins iff Cancelled");
    let m = engine.shutdown();
    assert_eq!(m.accepted, 300);
    assert_eq!(m.delivered(), 300, "every accepted job resolved");
    assert_eq!(m.completed, ok);
    assert_eq!(m.cancelled, cancelled_seen);
    assert_eq!(m.duplicate_completions, 0);
    assert_eq!(m.queue_depth, 0, "drained");
}

#[test]
fn overload_sheds_rather_than_blocks() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServeConfig::default()
    });
    engine.store().insert("a", rmat(8, 8, 9));
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..200 {
        match engine.try_submit(ProductRequest::new("a", "a").algo(Algorithm::Hash)) {
            Ok(h) => accepted.push(h),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(rejected > 0, "a 1-worker engine cannot absorb 200 bursts");
    for h in &accepted {
        h.wait().unwrap();
    }
    let m = engine.shutdown();
    assert_eq!(m.accepted as usize, accepted.len());
    assert_eq!(m.rejected, rejected);
    assert_eq!(m.delivered(), m.accepted);
}

#[test]
fn disabled_cache_still_serves_correctly() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        plan_cache_plans: 0,
        ..ServeConfig::default()
    });
    let a = rmat(5, 4, 21);
    let expect = spgemm::algos::reference::multiply::<P>(&a, &a);
    engine.store().insert("a", a);
    for _ in 0..6 {
        let c = engine
            .try_submit(ProductRequest::new("a", "a").algo(Algorithm::Hash))
            .unwrap()
            .wait()
            .unwrap();
        assert!(approx_eq_f64(&expect, &c, 1e-12));
    }
    let m = engine.shutdown();
    assert_eq!(m.completed, 6);
    assert_eq!(m.plan_cache.hits, 0, "cache disabled");
}

#[test]
fn oversized_jobs_route_to_the_shared_shard_backend() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        dist: Some(DistRouting {
            grid: GridSpec::new(2, 2),
            threads_per_shard: 1,
            // Low threshold: the scale-7 matrix crosses it, the
            // scale-4 one stays on the plan path.
            min_operand_nnz: 500,
            min_flop: None,
        }),
        ..ServeConfig::default()
    });
    let big = rmat(7, 6, 77);
    let small = rmat(4, 3, 78);
    assert!(big.nnz() + big.nnz() >= 500);
    assert!(small.nnz() + small.nnz() < 500);
    let expect_big = spgemm::algos::reference::multiply::<P>(&big, &big);
    let expect_small = spgemm::algos::reference::multiply::<P>(&small, &small);
    engine.store().insert("big", big);
    engine.store().insert("small", small);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let name = if i % 2 == 0 { "big" } else { "small" };
            (
                i,
                engine.try_submit(ProductRequest::new(name, name)).unwrap(),
            )
        })
        .collect();
    for (i, h) in handles {
        let c = h.wait().unwrap();
        let expect = if i % 2 == 0 {
            &expect_big
        } else {
            &expect_small
        };
        assert!(approx_eq_f64(expect, &c, 1e-12), "job {i}");
    }
    let m = engine.shutdown();
    assert_eq!(m.completed, 6);
    assert_eq!(m.dist_routed, 3, "only the big products route");
    assert_eq!(m.duplicate_completions, 0);
}

#[test]
fn flop_threshold_alone_can_route() {
    let engine = ServeEngine::new(ServeConfig {
        workers: 1,
        dist: Some(DistRouting {
            grid: GridSpec::new(2, 1),
            threads_per_shard: 1,
            min_operand_nnz: usize::MAX, // nnz test never fires
            min_flop: Some(1),           // any non-empty product routes
        }),
        ..ServeConfig::default()
    });
    let a = rmat(5, 4, 9);
    let expect = spgemm::algos::reference::multiply::<P>(&a, &a);
    engine.store().insert("a", a);
    let c = engine
        .try_submit(ProductRequest::new("a", "a"))
        .unwrap()
        .wait()
        .unwrap();
    assert!(approx_eq_f64(&expect, &c, 1e-12));
    let m = engine.shutdown();
    assert_eq!(m.dist_routed, 1);
}

#[test]
fn multi_worker_parallel_execution_pools() {
    // Workers with 2-thread pools share plans (same width) and stay
    // correct.
    let engine = ServeEngine::new(ServeConfig {
        workers: 3,
        threads_per_worker: 2,
        ..ServeConfig::default()
    });
    let a = rmat(6, 6, 31);
    let expect = spgemm::algos::reference::multiply::<P>(&a, &a);
    engine.store().insert("a", a);
    let handles: Vec<_> = (0..60)
        .map(|_| {
            engine
                .try_submit(ProductRequest::new("a", "a").algo(Algorithm::Hash))
                .unwrap()
        })
        .collect();
    for h in handles {
        assert!(approx_eq_f64(&expect, &h.wait().unwrap(), 1e-12));
    }
    let m = engine.shutdown();
    assert_eq!(m.completed, 60);
    assert!(m.plan_cache.hit_rate() > 0.9, "{:?}", m.plan_cache);
}

// ---------------------------------------------------------------
// Expression jobs
// ---------------------------------------------------------------

mod expr_jobs {
    use super::*;
    use spgemm::expr::{ElemMap, ExprGraph, ExprSpec};
    use spgemm::multiply_in;
    use spgemm_par::Pool;
    use spgemm_serve::ExprRequest;
    use spgemm_sparse::ops;

    fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
        a.shape() == b.shape()
            && a.rpts() == b.rpts()
            && a.cols() == b.cols()
            && a.vals()
                .iter()
                .zip(b.vals())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// normalize_cols(|A·A|^2) — the MCL expansion+inflation DAG.
    fn mcl_spec() -> ExprSpec {
        let mut g = ExprGraph::new();
        let a = g.input();
        let sq = g.multiply(a, a);
        let inf = g.map(sq, ElemMap::AbsPow(2.0));
        let root = g.normalize_cols(inf);
        ExprSpec::new(g, root)
    }

    #[test]
    fn expr_pipeline_matches_local_composition() {
        let engine = ServeEngine::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let a = rmat(6, 4, 7);
        let pool = Pool::new(1);
        let r = std::hint::black_box(2.0f64); // defeat powf const-folding
        let sq = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
        let expect = ops::normalize_columns(&sq.map(|v| v.abs().powf(r)));
        engine.store().insert("a", a);
        let job = engine
            .try_submit_expr(ExprRequest::new(mcl_spec(), ["a"]).algo(Algorithm::Hash))
            .unwrap();
        let got = job.wait().unwrap();
        assert!(bits_eq(&got, &expect), "expr result must equal composition");
        let m = engine.shutdown();
        assert_eq!(m.expr_jobs, 1);
        assert_eq!(
            m.expr_nodes_computed, 3,
            "the three interior nodes compute; the input leaf is served \
             from its snapshot, not the cache"
        );
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn identical_expr_jobs_share_the_cached_root() {
        let engine = ServeEngine::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        engine.store().insert("a", rmat(6, 4, 3));
        let first = engine
            .try_submit_expr(ExprRequest::new(mcl_spec(), ["a"]).algo(Algorithm::Hash))
            .unwrap();
        let r1 = first.wait().unwrap();
        let computed_after_first = engine.metrics().expr_nodes_computed;
        let second = engine
            .try_submit_expr(ExprRequest::new(mcl_spec(), ["a"]).algo(Algorithm::Hash))
            .unwrap();
        let r2 = second.wait().unwrap();
        assert!(bits_eq(&r1, &r2));
        let m = engine.shutdown();
        assert_eq!(
            m.expr_nodes_computed, computed_after_first,
            "the repeat run must be served entirely from the result cache"
        );
        assert!(m.expr_results.hits >= 1, "{:?}", m.expr_results);
        assert_eq!(m.expr_jobs, 2);
    }

    #[test]
    fn different_pipelines_share_subexpressions_cross_tenant() {
        let engine = ServeEngine::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        engine.store().insert("a", rmat(6, 4, 9));
        // tenant 1: scaled square; tenant 2: normalized square — the
        // A·A node is the shared subexpression.
        let spec1 = {
            let mut g = ExprGraph::new();
            let a = g.input();
            let sq = g.multiply(a, a);
            let root = g.map(sq, ElemMap::Scale(2.0));
            ExprSpec::new(g, root)
        };
        let spec2 = {
            let mut g = ExprGraph::new();
            let a = g.input();
            let sq = g.multiply(a, a);
            let root = g.normalize_cols(sq);
            ExprSpec::new(g, root)
        };
        engine
            .try_submit_expr(
                ExprRequest::new(spec1, ["a"])
                    .algo(Algorithm::Hash)
                    .tenant("t1"),
            )
            .unwrap()
            .wait()
            .unwrap();
        let before = engine.metrics().expr_results.hits;
        engine
            .try_submit_expr(
                ExprRequest::new(spec2, ["a"])
                    .algo(Algorithm::Hash)
                    .tenant("t2"),
            )
            .unwrap()
            .wait()
            .unwrap();
        let m = engine.shutdown();
        assert!(
            m.expr_results.hits > before,
            "tenant 2's A·A node must be served from tenant 1's result: {:?}",
            m.expr_results
        );
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn reregistration_changes_leaf_identity() {
        let engine = ServeEngine::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let a = rmat(6, 4, 11);
        engine.store().insert("a", a.clone());
        let first = engine
            .try_submit_expr(ExprRequest::new(mcl_spec(), ["a"]).algo(Algorithm::Hash))
            .unwrap();
        let r1 = first.wait().unwrap();
        // same structure, different values: the cached results must
        // NOT be reused (version bump changes every node fingerprint)
        engine.store().insert("a", a.map(|v| v * 3.0));
        let computed = engine.metrics().expr_nodes_computed;
        let second = engine
            .try_submit_expr(ExprRequest::new(mcl_spec(), ["a"]).algo(Algorithm::Hash))
            .unwrap();
        let r2 = second.wait().unwrap();
        let m = engine.shutdown();
        assert!(m.expr_nodes_computed > computed, "recompute on new values");
        // normalize_cols(|(3A)²|²) ≠ guaranteed equal; just sanity:
        assert_eq!(r1.shape(), r2.shape());
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn expr_submission_rejects_bad_requests() {
        let engine = ServeEngine::new(ServeConfig::default());
        engine.store().insert("a", Csr::<f64>::identity(8));
        // unknown input name
        assert!(matches!(
            engine.try_submit_expr(ExprRequest::new(mcl_spec(), ["nope"])),
            Err(ServeError::UnknownMatrix { .. })
        ));
        // wrong input count
        assert!(matches!(
            engine.try_submit_expr(ExprRequest::new(mcl_spec(), ["a", "a"])),
            Err(ServeError::Sparse(_))
        ));
        // vector-input graphs unsupported
        let vec_spec = {
            let mut g = ExprGraph::new();
            let a = g.input();
            let v = g.vec_input();
            let root = g.scale_rows(a, v);
            ExprSpec::new(g, root)
        };
        assert!(matches!(
            engine.try_submit_expr(ExprRequest::new(vec_spec, ["a"])),
            Err(ServeError::Sparse(
                spgemm_sparse::SparseError::Unsupported { .. }
            ))
        ));
        let m = engine.shutdown();
        assert_eq!(m.accepted, 0);
        assert_eq!(m.rejected, 3);
    }

    #[test]
    fn oversized_multiply_nodes_route_to_the_shard_fleet() {
        let engine = ServeEngine::new(ServeConfig {
            workers: 1,
            dist: Some(DistRouting {
                grid: GridSpec::new(2, 1),
                threads_per_shard: 1,
                min_operand_nnz: 1, // everything routes
                min_flop: None,
            }),
            ..ServeConfig::default()
        });
        let a = rmat(6, 4, 5);
        let pool = Pool::new(1);
        let expect = {
            let r = std::hint::black_box(2.0f64); // defeat powf const-folding
            let sq = multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool).unwrap();
            ops::normalize_columns(&sq.map(|v| v.abs().powf(r)))
        };
        engine.store().insert("a", a);
        let got = engine
            .try_submit_expr(ExprRequest::new(mcl_spec(), ["a"]).algo(Algorithm::Hash))
            .unwrap()
            .wait()
            .unwrap();
        let m = engine.shutdown();
        assert!(m.dist_routed >= 1, "the A·A node must route: {m:?}");
        // sharded product is numerically identical here (sorted gather
        // of exact sums of the same per-entry contributions)
        assert!(approx_eq_f64(&got, &expect, 1e-12));
        assert_eq!(m.failed, 0);
    }
}

mod tracing_and_slo {
    use super::*;
    use spgemm_obs as obs;
    use spgemm_serve::SloPolicy;
    use std::time::Duration;

    /// End-to-end: every accepted job opens a trace at submission that
    /// the worker joins, the slowest requests per tenant are retained
    /// as exportable exemplars, and the SLO tracker classifies every
    /// completion against the policy's targets.
    #[test]
    fn traces_follow_jobs_and_slo_accounts_every_completion() {
        obs::enable();
        let engine = ServeEngine::new(ServeConfig {
            workers: 2,
            slo: SloPolicy {
                // Unmissable default and unmeetable override make the
                // good/bad split deterministic.
                default_target: Some(Duration::from_secs(3600)),
                per_tenant: vec![("slo-probe-bad".into(), Duration::from_nanos(1))],
                goal: 0.9,
            },
            ..ServeConfig::default()
        });
        engine.store().insert("tr/a", rmat(5, 4, 77));

        // Sequential submits: at most one active-trace slot is held at
        // a time, so sampling survives slot pressure from tests running
        // in parallel in this binary.
        for i in 0..4 {
            let tenant = if i % 2 == 0 {
                "slo-probe-good"
            } else {
                "slo-probe-bad"
            };
            engine
                .try_submit(ProductRequest::new("tr/a", "tr/a").tenant(tenant))
                .unwrap()
                .wait()
                .unwrap();
        }
        let snap = engine.shutdown();
        obs::disable();

        let good = snap
            .slo
            .iter()
            .find(|s| s.tenant == "slo-probe-good")
            .expect("slo row for default-target tenant");
        assert_eq!((good.good, good.bad), (2, 0));
        assert!((good.target_ms - 3_600_000.0).abs() < 1e-6);
        assert_eq!(good.burn_rate(), 0.0);
        let bad = snap
            .slo
            .iter()
            .find(|s| s.tenant == "slo-probe-bad")
            .expect("slo row for per-tenant override");
        assert_eq!((bad.good, bad.bad), (0, 2));
        assert!((bad.bad_fraction() - 1.0).abs() < 1e-12);
        assert!(
            bad.burn_rate() > 1.0,
            "blown budget must burn faster than the goal allows"
        );
        let tracked: u64 = snap.slo.iter().map(|s| s.good + s.bad).sum();
        assert_eq!(tracked, snap.completed, "every completion is classified");

        // The slowest requests per tenant retained complete span trees.
        // (Tolerate total sampling-slot exhaustion from parallel tests;
        // trace_unsampled() accounts for it.)
        let ex: Vec<_> = obs::exemplars()
            .into_iter()
            .filter(|e| e.group.starts_with("slo-probe"))
            .collect();
        if ex.is_empty() {
            assert!(
                obs::trace_unsampled() > 0,
                "no exemplar retained and no slot exhaustion recorded: traces were lost"
            );
            return;
        }
        for e in &ex {
            e.validate()
                .expect("retained trace must be a well-formed span tree");
            assert!(
                e.spans.iter().any(|s| s.name == "serve.submit"),
                "submission-side span in trace"
            );
            assert!(
                e.spans.iter().any(|s| s.name == "serve.batch"),
                "worker-side span in trace"
            );
            assert!(e.total_ns >= e.service_ns);
            let json = obs::chrome_trace_for(e.trace_id)
                .expect("exemplar exports as a Chrome/Perfetto trace");
            assert!(json.contains("serve.batch"));
        }
    }
}
