//! The cross-tenant subexpression result cache.
//!
//! Expression jobs name their intermediates precisely: every node of
//! an [`spgemm::expr::ExprGraph`] has a 64-bit *value* fingerprint —
//! op kind, op parameters, operand fingerprints, and, at the leaves,
//! the [`crate::MatrixStore`] registration version of the bound input.
//! Stored matrices are immutable snapshots, so equal fingerprints mean
//! equal *results* (up to fingerprint collision — the same cooperating
//! -tenant trust model as the plan cache), and a node computed for one
//! tenant's pipeline can be handed, as a shared `Arc`, to any other
//! pipeline that contains the same subexpression over the same
//! snapshots — MCL tenants sharing one graph's `A²`, an AMG tenant
//! re-submitting `Pᵀ(AP)` after a no-op re-registration, or two
//! dashboards masking the same product differently.
//!
//! Eviction is least-recently-used over a fixed entry budget; `0`
//! disables the cache (every node recomputes).

use parking_lot::Mutex;
use spgemm_sparse::Csr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters of the subexpression result cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExprResultCacheStats {
    /// Node evaluations served by a cached result.
    pub hits: u64,
    /// Node lookups that missed (the node was then computed and
    /// stored).
    pub misses: u64,
    /// Entries evicted to stay within the budget.
    pub evictions: u64,
    /// Live cached results.
    pub entries: usize,
}

impl ExprResultCacheStats {
    /// Per-window deltas against an earlier snapshot of the same
    /// cache: counters are differenced, `entries` (a gauge) keeps its
    /// end-of-window value.
    pub fn since(&self, prev: &ExprResultCacheStats) -> ExprResultCacheStats {
        ExprResultCacheStats {
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            evictions: self.evictions.saturating_sub(prev.evictions),
            entries: self.entries,
        }
    }

    /// `hits / (hits + misses)`, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Live cached node results across every live cache (mirrors
/// `stats().entries`; published under the map lock).
static EXPR_RESULTS_ENTRIES: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("serve", "serve.expr_results.entries");

struct Entry {
    value: Arc<Csr<f64>>,
    last_used: u64,
}

pub(crate) struct ExprResultCache {
    map: Mutex<HashMap<u64, Entry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl ExprResultCache {
    /// A cache holding at most `capacity` node results; 0 disables it.
    pub(crate) fn new(capacity: usize) -> Self {
        ExprResultCache {
            map: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The cached result for a node fingerprint, if present (counts a
    /// hit/miss either way; disabled caches count nothing).
    pub(crate) fn get(&self, fp: u64) -> Option<Arc<Csr<f64>>> {
        if !self.enabled() {
            return None;
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock();
        match map.get_mut(&fp) {
            Some(entry) => {
                entry.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Like [`ExprResultCache::get`] but **without** touching the
    /// hit/miss counters or the LRU clock — a speculative probe. The
    /// delta patch-in-place path uses it to look for a *previous*
    /// version's product: finding one is not a serving hit (the
    /// current fingerprint already counted its miss), and failing to
    /// find one should not skew the hit rate.
    pub(crate) fn peek(&self, fp: u64) -> Option<Arc<Csr<f64>>> {
        if !self.enabled() {
            return None;
        }
        self.map.lock().get(&fp).map(|e| Arc::clone(&e.value))
    }

    /// Store a computed node result, LRU-evicting beyond the budget.
    pub(crate) fn insert(&self, fp: u64, value: Arc<Csr<f64>>) {
        if !self.enabled() {
            return;
        }
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock();
        if !map.contains_key(&fp) && map.len() >= self.capacity {
            let victim = map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k);
            if let Some(victim) = victim {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(
            fp,
            Entry {
                value,
                last_used: stamp,
            },
        );
        EXPR_RESULTS_ENTRIES.set(map.len() as i64);
    }

    pub(crate) fn stats(&self) -> ExprResultCacheStats {
        ExprResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(n: usize) -> Arc<Csr<f64>> {
        Arc::new(Csr::identity(n))
    }

    #[test]
    fn get_insert_roundtrip_and_counters() {
        let cache = ExprResultCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, arc(3));
        let hit = cache.get(1).expect("stored");
        assert_eq!(hit.nrows(), 3);
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
        assert!((st.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_coldest_entry() {
        let cache = ExprResultCache::new(2);
        cache.insert(1, arc(1));
        cache.insert(2, arc(2));
        let _ = cache.get(1); // 2 is now coldest
        cache.insert(3, arc(3)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some() && cache.get(3).is_some());
        let st = cache.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ExprResultCache::new(0);
        cache.insert(1, arc(1));
        assert!(cache.get(1).is_none());
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.entries), (0, 0, 0));
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let cache = ExprResultCache::new(2);
        cache.insert(1, arc(1));
        cache.insert(2, arc(2));
        cache.insert(1, arc(5)); // overwrite, no eviction
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1).unwrap().nrows(), 5);
        assert!(cache.get(2).is_some());
    }
}
