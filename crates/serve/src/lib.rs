//! In-process multi-tenant SpGEMM serving.
//!
//! Everything below `spgemm-serve` is a *library for one caller*: the
//! inspector–executor plan ([`spgemm::SpgemmPlan`]) and its pooled
//! workspaces amortize symbolic work and allocations — the paper's
//! Figure 4 insight — only within a single driver loop. This crate
//! turns that amortization into a shared, concurrent resource, the
//! way kernel-handle libraries (Deveci et al.'s multi-threaded SpGEMM
//! handles) and block-product engines (DBCSR) separate reusable
//! preparation from execution:
//!
//! * a [`MatrixStore`] of named, fingerprinted, immutable matrices —
//!   the `O(nnz)` structure fingerprint is paid **once at
//!   registration**, never per request;
//! * a bounded, prioritized submission queue whose
//!   [`ServeEngine::try_submit`] never blocks: a full queue is the
//!   backpressure signal ([`ServeError::Overloaded`]);
//! * worker threads that **batch** same-structure requests popped
//!   from the queue and execute them numeric-only under one plan;
//! * a shared, concurrency-safe **plan cache** keyed by operand
//!   fingerprints + kernel options, so repeated products — across
//!   tenants and across workers — reuse symbolic phases and pooled
//!   accumulators;
//! * [`JobHandle`]s (wait / poll / cancel) and [`MetricsSnapshot`]
//!   (p50/p99 latency, throughput, plan-cache hit rate, per-lane
//!   queue depths);
//! * optional **sharded routing** ([`ServeConfig::dist`]): products
//!   crossing a configurable nnz/flop threshold execute on a shared
//!   `spgemm_dist::ShardRuntime` instead of one worker's monolithic
//!   plan path ([`MetricsSnapshot::dist_routed`] counts them);
//! * **expression jobs** ([`ExprRequest`]): whole
//!   [`spgemm::expr::ExprGraph`] pipelines (MCL rounds, Galerkin
//!   triple products, masked wedge counts) evaluated node-by-node —
//!   every `Multiply` node shares the plan cache (and routes through
//!   the dist thresholds), and every node *result* is cached
//!   cross-tenant under its value fingerprint
//!   ([`ServeConfig::expr_result_entries`],
//!   [`MetricsSnapshot::expr_results`]), so pipelines sharing a
//!   subexpression over the same stored matrices share the computed
//!   intermediate;
//! * **streaming row updates**
//!   ([`ServeEngine::try_submit_row_update`]): registered matrices
//!   accept row-granular [`spgemm::delta::RowPatch`]es; the engine
//!   tracks which rows each update dirtied, and expression jobs
//!   submitted against the new version **patch** the previous
//!   version's cached products in place — recomputing only the
//!   invalidated output rows, byte-for-byte equal to a full
//!   re-evaluation ([`MetricsSnapshot::expr_results_patched`] counts
//!   the saves);
//! * **request tracing and SLO tracking**: every accepted job opens a
//!   `spgemm_obs` trace context at submission that follows it across
//!   the queue, the executing worker, and (for routed products) the
//!   shard fleet's threads, so the slowest requests per tenant retain
//!   complete cross-thread span trees exportable as Chrome/Perfetto
//!   traces ([`spgemm_obs::chrome_trace_for`]); per-tenant latency
//!   objectives ([`ServeConfig::slo`]) classify completions good/bad
//!   and surface error-budget burn rates ([`MetricsSnapshot::slo`]).
//!
//! The `spgemm-serve` binary in `spgemm-bench` drives the engine with
//! an open-loop synthetic traffic generator (MCL-style A² chains, AMG
//! triple products, one-shot products) and reports latency and
//! throughput against worker count and plan-cache policy.
//!
//! # Quick tour
//!
//! ```
//! use spgemm_serve::{Priority, ProductRequest, ServeConfig, ServeEngine};
//! use spgemm_sparse::Csr;
//!
//! let engine = ServeEngine::new(ServeConfig {
//!     workers: 2,
//!     ..ServeConfig::default()
//! });
//!
//! // Tenants register matrices once...
//! engine.store().insert("mcl/graph", Csr::<f64>::identity(64));
//!
//! // ...then submit products against them by name.
//! let job = engine
//!     .try_submit(
//!         ProductRequest::new("mcl/graph", "mcl/graph")
//!             .priority(Priority::High)
//!             .tenant("mcl"),
//!     )
//!     .unwrap();
//! let c = job.wait().unwrap();
//! assert_eq!(c.nnz(), 64);
//!
//! // Repeated same-structure products hit the shared plan cache.
//! for _ in 0..8 {
//!     engine
//!         .try_submit(ProductRequest::new("mcl/graph", "mcl/graph"))
//!         .unwrap()
//!         .wait()
//!         .unwrap();
//! }
//! let m = engine.shutdown();
//! assert_eq!(m.completed, 9);
//! assert!(m.plan_cache.hit_rate() > 0.5);
//! ```

#![warn(missing_docs)]

mod delta;
mod engine;
mod error;
mod expr_results;
mod job;
mod metrics;
mod plan_cache;
mod queue;
mod store;

pub use delta::RowUpdateReceipt;
pub use engine::{DistRouting, ServeConfig, ServeEngine};
pub use error::ServeError;
pub use expr_results::ExprResultCacheStats;
pub use job::{ExprRequest, JobHandle, JobOutput, JobResult, Priority, ProductRequest};
pub use metrics::{
    LatencySummary, MetricsSnapshot, SloPolicy, TenantLatency, TenantSlo, OVERFLOW_TENANT,
};
pub use plan_cache::{PlanCacheStats, PlanKey};
pub use store::{MatrixStore, StoredMatrix};
