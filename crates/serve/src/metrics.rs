//! Serving metrics: per-job latency decomposition, per-tenant
//! histograms, aggregate counters, and the snapshot the
//! `spgemm-serve` bench prints.
//!
//! Latencies are recorded into bounded log-bucketed histograms
//! ([`spgemm_obs::Histogram`]): every sample counts (nothing is
//! dropped), memory never grows with job count, and quantiles are
//! exact to within the histogram's bucket error bound (≤ 6.25%
//! relative). Each completed job is decomposed into queue delay
//! (submit → worker pickup) and service time (pickup → done), the
//! split the ROADMAP's async-ingress work needs to reason about
//! overload.

use parking_lot::Mutex;
use spgemm_obs::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::expr_results::ExprResultCacheStats;
use crate::job::Priority;
use crate::plan_cache::PlanCacheStats;

/// Hard cap on distinct per-tenant recorders; tenants beyond it are
/// aggregated under [`OVERFLOW_TENANT`] so a label-cardinality
/// explosion cannot grow memory without bound.
const MAX_TENANTS: usize = 64;

/// Aggregation label for tenants beyond the per-tenant recorder cap
/// (64 distinct tenants).
pub const OVERFLOW_TENANT: &str = "(other)";

/// Latency histograms for one scope (engine-wide or one tenant):
/// total latency plus its queue/service decomposition, nanoseconds.
#[derive(Default)]
pub(crate) struct LatencyRecorder {
    total: Histogram,
    queue: Histogram,
    service: Histogram,
}

impl LatencyRecorder {
    fn record(&self, total: Duration, queue: Duration, service: Duration) {
        self.total.record(total.as_nanos() as u64);
        self.queue.record(queue.as_nanos() as u64);
        self.service.record(service.as_nanos() as u64);
    }

    fn summaries(&self) -> (LatencySummary, LatencySummary, LatencySummary) {
        (
            LatencySummary::from_ns_histogram(&self.total),
            LatencySummary::from_ns_histogram(&self.queue),
            LatencySummary::from_ns_histogram(&self.service),
        )
    }
}

/// Shared counters, written by submitters, workers and job handles.
#[derive(Default)]
pub(crate) struct Metrics {
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    /// Second completions of one job — must stay 0; counted instead of
    /// panicking so the smoke harness can assert on it.
    pub(crate) duplicate_completions: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    /// Jobs executed on the sharded backend instead of the plan path.
    pub(crate) dist_routed: AtomicU64,
    /// Jobs that evaluated a whole expression DAG.
    pub(crate) expr_jobs: AtomicU64,
    /// Expression nodes actually computed (subexpression-cache misses
    /// and uncached evaluations; cache hits are counted by the cache).
    pub(crate) expr_nodes_computed: AtomicU64,
    /// Streaming row updates applied through
    /// `ServeEngine::try_submit_row_update`.
    pub(crate) row_updates: AtomicU64,
    /// Total rows dirtied by those updates (sum of per-update
    /// `DirtyRows` counts).
    pub(crate) rows_dirtied: AtomicU64,
    /// Expression `Multiply` nodes served by patching a previous
    /// version's cached product in place instead of recomputing it.
    pub(crate) expr_results_patched: AtomicU64,
    /// Engine-wide latency histograms (always on; fixed footprint).
    overall: LatencyRecorder,
    /// Per-tenant recorders, created on first submission, capped at
    /// [`MAX_TENANTS`]. The anonymous tenant (empty label) records
    /// only into `overall`.
    tenants: Mutex<HashMap<String, Arc<LatencyRecorder>>>,
}

impl Metrics {
    /// The recorder for `tenant`, creating it under the cap. `None`
    /// for the anonymous (empty) tenant label. Called once per job at
    /// submission, so completion stays lock-free.
    pub(crate) fn tenant_recorder(&self, tenant: &str) -> Option<Arc<LatencyRecorder>> {
        if tenant.is_empty() {
            return None;
        }
        let mut map = self.tenants.lock();
        if let Some(rec) = map.get(tenant) {
            return Some(Arc::clone(rec));
        }
        if map.len() < MAX_TENANTS {
            let rec = Arc::new(LatencyRecorder::default());
            map.insert(tenant.to_string(), Arc::clone(&rec));
            return Some(rec);
        }
        let rec = map
            .entry(OVERFLOW_TENANT.to_string())
            .or_insert_with(|| Arc::new(LatencyRecorder::default()));
        Some(Arc::clone(rec))
    }

    /// Record one completed job's decomposed latency into the
    /// engine-wide histograms and (when resolved) the tenant's.
    pub(crate) fn record_job(
        &self,
        tenant_rec: Option<&LatencyRecorder>,
        total: Duration,
        queue: Duration,
        service: Duration,
    ) {
        self.overall.record(total, queue, service);
        if let Some(rec) = tenant_rec {
            rec.record(total, queue, service);
        }
    }

    pub(crate) fn note_batch(&self, jobs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth_per_lane: [usize; Priority::COUNT],
        plan_cache: PlanCacheStats,
        expr_results: ExprResultCacheStats,
        since: Instant,
    ) -> MetricsSnapshot {
        let (latency, queue_delay, service) = self.overall.summaries();
        let per_tenant = {
            let map = self.tenants.lock();
            let mut rows: Vec<TenantLatency> = map
                .iter()
                .map(|(tenant, rec)| {
                    let (latency, queue_delay, service) = rec.summaries();
                    TenantLatency {
                        tenant: tenant.clone(),
                        latency,
                        queue_delay,
                        service,
                    }
                })
                .collect();
            rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
            rows
        };
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = since.elapsed();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            duplicate_completions: self.duplicate_completions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            dist_routed: self.dist_routed.load(Ordering::Relaxed),
            expr_jobs: self.expr_jobs.load(Ordering::Relaxed),
            expr_nodes_computed: self.expr_nodes_computed.load(Ordering::Relaxed),
            row_updates: self.row_updates.load(Ordering::Relaxed),
            rows_dirtied: self.rows_dirtied.load(Ordering::Relaxed),
            expr_results_patched: self.expr_results_patched.load(Ordering::Relaxed),
            queue_depth: queue_depth_per_lane.iter().sum(),
            queue_depth_per_lane,
            plan_cache,
            expr_results,
            elapsed,
            throughput_jps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            latency,
            queue_delay,
            service,
            per_tenant,
        }
    }
}

/// Order statistics over completed-job latencies, derived from a
/// bounded log-bucketed histogram: every completed job is counted
/// (no sample cap), and quantiles carry the histogram's ≤ 6.25%
/// relative bucket error (the mean and max are exact).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Recorded samples (every one — histograms never drop).
    pub count: u64,
    /// Arithmetic mean, milliseconds (exact).
    pub mean_ms: f64,
    /// Median, milliseconds (within bucket error).
    pub p50_ms: f64,
    /// 99th percentile, milliseconds (within bucket error).
    pub p99_ms: f64,
    /// Maximum, milliseconds (exact).
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_ns_histogram(h: &Histogram) -> Self {
        let s = h.snapshot();
        LatencySummary {
            count: s.count,
            mean_ms: s.mean() / 1e6,
            p50_ms: s.quantile(0.50) as f64 / 1e6,
            p99_ms: s.quantile(0.99) as f64 / 1e6,
            max_ms: s.max as f64 / 1e6,
        }
    }
}

/// One tenant's latency decomposition at snapshot time.
#[derive(Clone, Debug)]
pub struct TenantLatency {
    /// The tenant label ([`OVERFLOW_TENANT`] aggregates the tail
    /// beyond the per-tenant cap).
    pub tenant: String,
    /// Submit → done.
    pub latency: LatencySummary,
    /// Submit → worker pickup (time spent queued).
    pub queue_delay: LatencySummary,
    /// Worker pickup → done (time spent executing).
    pub service: LatencySummary,
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Submissions rejected (overload, unknown matrix, shape mismatch,
    /// shutdown).
    pub rejected: u64,
    /// Jobs that produced a product.
    pub completed: u64,
    /// Jobs whose execution failed.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs that reached a terminal state twice — always 0 unless the
    /// exactly-once delivery invariant is broken.
    pub duplicate_completions: u64,
    /// Worker batch count (a batch is ≥ 1 job under one plan).
    pub batches: u64,
    /// Jobs executed through batches (`batched_jobs / batches` is the
    /// mean batch size).
    pub batched_jobs: u64,
    /// Jobs executed on the sharded (`spgemm-dist`) backend because
    /// they crossed the configured size threshold (see
    /// `ServeConfig::dist`) — whole products and routed expression
    /// `Multiply` nodes alike.
    pub dist_routed: u64,
    /// Jobs that evaluated a whole expression DAG
    /// (`ServeEngine::try_submit_expr`).
    pub expr_jobs: u64,
    /// Expression nodes computed (as opposed to served from the
    /// subexpression result cache).
    pub expr_nodes_computed: u64,
    /// Streaming row updates applied
    /// (`ServeEngine::try_submit_row_update`).
    pub row_updates: u64,
    /// Total matrix rows dirtied across those updates.
    pub rows_dirtied: u64,
    /// Expression `Multiply` nodes served by **patching** a previous
    /// version's cached product (recomputing only the rows the
    /// intervening row updates invalidated) instead of evaluating the
    /// node from scratch.
    pub expr_results_patched: u64,
    /// Queued jobs at snapshot time (sum of the per-lane depths).
    pub queue_depth: usize,
    /// Queued jobs per priority lane at snapshot time: `[High,
    /// Normal, Low]`, one consistent snapshot.
    pub queue_depth_per_lane: [usize; Priority::COUNT],
    /// Shared plan cache counters.
    pub plan_cache: PlanCacheStats,
    /// Cross-tenant subexpression result cache counters.
    pub expr_results: ExprResultCacheStats,
    /// Time since the engine started.
    pub elapsed: Duration,
    /// `completed / elapsed`, jobs per second.
    pub throughput_jps: f64,
    /// Latency order statistics over completed jobs (submit → done).
    pub latency: LatencySummary,
    /// Queue-delay component (submit → worker pickup) over completed
    /// jobs; with [`MetricsSnapshot::service`] this decomposes
    /// [`MetricsSnapshot::latency`].
    pub queue_delay: LatencySummary,
    /// Service-time component (worker pickup → done) over completed
    /// jobs.
    pub service: LatencySummary,
    /// Per-tenant latency decomposition, sorted by tenant label.
    /// Anonymous (empty-label) jobs appear only in the engine-wide
    /// summaries.
    pub per_tenant: Vec<TenantLatency>,
}

impl MetricsSnapshot {
    /// Terminal outcomes delivered (completed + failed + cancelled) —
    /// the number the exactly-once smoke check compares to accepted.
    pub fn delivered(&self) -> u64 {
        self.completed + self.failed + self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles_within_bucket_error() {
        // 1..=100 ms recorded as ns: exact order stats are known, the
        // histogram summary must land within its 6.25% bucket bound
        let rec = LatencyRecorder::default();
        for i in 1..=100u64 {
            let d = Duration::from_millis(i);
            rec.record(d, d / 2, d / 2);
        }
        let (s, q, v) = rec.summaries();
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.0).abs() <= 50.0 * 0.07, "{}", s.p50_ms);
        assert!((s.p99_ms - 99.0).abs() <= 99.0 * 0.07, "{}", s.p99_ms);
        assert!((s.max_ms - 100.0).abs() < 1e-9, "max is exact");
        assert!((s.mean_ms - 50.5).abs() < 1e-9, "mean is exact");
        // decomposition components recorded alongside
        assert_eq!(q.count, 100);
        assert_eq!(v.count, 100);
        assert!((q.max_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_reports_per_lane_depths_and_their_sum() {
        let m = Metrics::default();
        let s = m.snapshot(
            [2, 5, 1],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(s.queue_depth_per_lane, [2, 5, 1]);
        assert_eq!(s.queue_depth, 8, "aggregate is the lane sum");
        assert_eq!(s.dist_routed, 0);
        assert!(s.per_tenant.is_empty());
    }

    #[test]
    fn empty_summary_is_zero() {
        let m = Metrics::default();
        let (s, q, v) = m.overall.summaries();
        for sum in [s, q, v] {
            assert_eq!(sum.count, 0);
            assert_eq!(sum.p99_ms, 0.0);
            assert_eq!(sum.max_ms, 0.0);
        }
    }

    #[test]
    fn per_tenant_decomposition_adds_up() {
        let m = Metrics::default();
        let rec = m.tenant_recorder("acme").unwrap();
        for i in 1..=50u64 {
            let queue = Duration::from_millis(i);
            let service = Duration::from_millis(2 * i);
            m.record_job(Some(&rec), queue + service, queue, service);
        }
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(snap.per_tenant.len(), 1);
        let t = &snap.per_tenant[0];
        assert_eq!(t.tenant, "acme");
        assert_eq!(t.latency.count, 50);
        // mean(total) = mean(queue) + mean(service), exactly
        assert!(
            (t.latency.mean_ms - t.queue_delay.mean_ms - t.service.mean_ms).abs() < 1e-9,
            "decomposition must add up: {t:?}"
        );
        assert!(t.queue_delay.p99_ms > 0.0 && t.service.p99_ms > 0.0);
        // engine-wide histograms saw the same jobs
        assert_eq!(snap.latency.count, 50);
    }

    #[test]
    fn anonymous_tenant_records_only_engine_wide() {
        let m = Metrics::default();
        assert!(m.tenant_recorder("").is_none());
        m.record_job(
            None,
            Duration::from_millis(3),
            Duration::from_millis(1),
            Duration::from_millis(2),
        );
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert!(snap.per_tenant.is_empty());
        assert_eq!(snap.latency.count, 1);
    }

    #[test]
    fn tenant_cardinality_is_capped() {
        let m = Metrics::default();
        for i in 0..(MAX_TENANTS + 10) {
            let rec = m.tenant_recorder(&format!("tenant-{i}")).unwrap();
            m.record_job(
                Some(&rec),
                Duration::from_micros(10),
                Duration::from_micros(4),
                Duration::from_micros(6),
            );
        }
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(snap.per_tenant.len(), MAX_TENANTS + 1, "cap + overflow");
        let other = snap
            .per_tenant
            .iter()
            .find(|t| t.tenant == OVERFLOW_TENANT)
            .expect("overflow bucket present");
        assert_eq!(other.latency.count, 10, "tail tenants aggregate");
    }
}
