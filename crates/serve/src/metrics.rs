//! Serving metrics: per-job latency decomposition, per-tenant
//! histograms, aggregate counters, and the snapshot the
//! `spgemm-serve` bench prints.
//!
//! Latencies are recorded into bounded log-bucketed histograms
//! ([`spgemm_obs::Histogram`]): every sample counts (nothing is
//! dropped), memory never grows with job count, and quantiles are
//! exact to within the histogram's bucket error bound (≤ 6.25%
//! relative). Each completed job is decomposed into queue delay
//! (submit → worker pickup) and service time (pickup → done), the
//! split the ROADMAP's async-ingress work needs to reason about
//! overload.

use parking_lot::Mutex;
use spgemm_obs::{Histogram, HistogramSnapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::expr_results::ExprResultCacheStats;
use crate::job::Priority;
use crate::plan_cache::PlanCacheStats;

/// Hard cap on distinct *named* per-tenant recorders; tenants beyond
/// it are aggregated under [`OVERFLOW_TENANT`] (which rides on top of
/// the cap, so a map holds at most `MAX_TENANTS + 1` entries) and a
/// label-cardinality explosion cannot grow memory without bound.
const MAX_TENANTS: usize = 64;

/// Aggregation label for tenants beyond the per-tenant recorder cap
/// (64 distinct tenants).
pub const OVERFLOW_TENANT: &str = "(other)";

/// Latency histograms for one scope (engine-wide or one tenant):
/// total latency plus its queue/service decomposition, nanoseconds.
#[derive(Default)]
pub(crate) struct LatencyRecorder {
    total: Histogram,
    queue: Histogram,
    service: Histogram,
}

impl LatencyRecorder {
    fn record(&self, total: Duration, queue: Duration, service: Duration) {
        self.total.record(total.as_nanos() as u64);
        self.queue.record(queue.as_nanos() as u64);
        self.service.record(service.as_nanos() as u64);
    }

    /// Raw (total, queue, service) histogram snapshots — carried in
    /// [`MetricsSnapshot`] so [`MetricsSnapshot::since`] can diff
    /// windows bucket-wise.
    fn raw_snapshots(&self) -> (HistogramSnapshot, HistogramSnapshot, HistogramSnapshot) {
        (
            self.total.snapshot(),
            self.queue.snapshot(),
            self.service.snapshot(),
        )
    }
}

/// Latency-objective configuration for the engine: which tenants get
/// an SLO, at what latency target, and the fraction of jobs that must
/// meet it. Set on `ServeConfig::slo`.
#[derive(Clone, Debug)]
pub struct SloPolicy {
    /// Latency target applied to every named tenant without an
    /// override; `None` disables SLO tracking for un-overridden
    /// tenants. Anonymous (empty-label) jobs are never SLO-tracked.
    pub default_target: Option<Duration>,
    /// Per-tenant target overrides `(tenant, target)`.
    pub per_tenant: Vec<(String, Duration)>,
    /// The objective: the fraction of a tenant's jobs that must
    /// finish within the target (the error budget is `1 - goal`).
    pub goal: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            default_target: None,
            per_tenant: Vec::new(),
            goal: 0.99,
        }
    }
}

impl SloPolicy {
    /// The target for `tenant`, if SLO-tracked under this policy.
    fn target_for(&self, tenant: &str) -> Option<Duration> {
        if tenant.is_empty() {
            return None;
        }
        self.per_tenant
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, d)| *d)
            .or(self.default_target)
    }
}

/// Shared good/bad counters for one SLO aggregation bucket (a named
/// tenant, or [`OVERFLOW_TENANT`] for the tail beyond the cap).
struct SloCounts {
    good: AtomicU64,
    bad: AtomicU64,
}

/// A tenant's latency target paired with the counters its outcomes
/// aggregate into. Resolved at submission (like the latency
/// recorder), bumped lock-free at completion. Tenants beyond the cap
/// share the [`OVERFLOW_TENANT`] counters but each keeps its *own*
/// resolved target, so a strict per-tenant override is still
/// classified against its override while aggregating under the
/// overflow label.
pub(crate) struct SloCell {
    target_ns: u64,
    counts: Arc<SloCounts>,
}

impl SloCell {
    fn new(target_ns: u64) -> SloCell {
        SloCell {
            target_ns,
            counts: Arc::new(SloCounts {
                good: AtomicU64::new(0),
                bad: AtomicU64::new(0),
            }),
        }
    }

    /// Classify one completed job's total latency.
    pub(crate) fn record(&self, total_ns: u64) {
        if total_ns <= self.target_ns {
            self.counts.good.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counts.bad.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shared counters, written by submitters, workers and job handles.
#[derive(Default)]
pub(crate) struct Metrics {
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    /// Second completions of one job — must stay 0; counted instead of
    /// panicking so the smoke harness can assert on it.
    pub(crate) duplicate_completions: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    /// Jobs executed on the sharded backend instead of the plan path.
    pub(crate) dist_routed: AtomicU64,
    /// Jobs that evaluated a whole expression DAG.
    pub(crate) expr_jobs: AtomicU64,
    /// Expression nodes actually computed (subexpression-cache misses
    /// and uncached evaluations; cache hits are counted by the cache).
    pub(crate) expr_nodes_computed: AtomicU64,
    /// Streaming row updates applied through
    /// `ServeEngine::try_submit_row_update`.
    pub(crate) row_updates: AtomicU64,
    /// Total rows dirtied by those updates (sum of per-update
    /// `DirtyRows` counts).
    pub(crate) rows_dirtied: AtomicU64,
    /// Expression `Multiply` nodes served by patching a previous
    /// version's cached product in place instead of recomputing it.
    pub(crate) expr_results_patched: AtomicU64,
    /// Engine-wide latency histograms (always on; fixed footprint).
    overall: LatencyRecorder,
    /// Per-tenant recorders, created on first submission, capped at
    /// [`MAX_TENANTS`]. The anonymous tenant (empty label) records
    /// only into `overall`.
    tenants: Mutex<HashMap<String, Arc<LatencyRecorder>>>,
    /// The engine's SLO policy (installed at construction).
    slo_policy: SloPolicy,
    /// Per-tenant SLO cells, resolved at submission, capped like the
    /// latency recorders (tail tenants aggregate under
    /// [`OVERFLOW_TENANT`], each still classified against its own
    /// resolved target).
    slo: Mutex<HashMap<String, Arc<SloCell>>>,
}

impl Metrics {
    /// Metrics with an SLO policy installed.
    pub(crate) fn with_slo(policy: SloPolicy) -> Metrics {
        Metrics {
            slo_policy: policy,
            ..Metrics::default()
        }
    }

    /// The SLO cell for `tenant`, creating it under the cap; `None`
    /// when the policy gives the tenant no target. Resolved once per
    /// job at submission, so completion stays lock-free.
    pub(crate) fn slo_cell(&self, tenant: &str) -> Option<Arc<SloCell>> {
        let target = self.slo_policy.target_for(tenant)?;
        let target_ns = target.as_nanos() as u64;
        let mut map = self.slo.lock();
        if let Some(cell) = map.get(tenant) {
            return Some(Arc::clone(cell));
        }
        if map.len() < MAX_TENANTS {
            let cell = Arc::new(SloCell::new(target_ns));
            map.insert(tenant.to_string(), Arc::clone(&cell));
            return Some(cell);
        }
        // At the cap: aggregate counts under the overflow bucket, but
        // classify against *this tenant's* resolved target (a strict
        // override stays strict; the overflow row's displayed target
        // is the default, or the first overflowing tenant's).
        let overflow = map.entry(OVERFLOW_TENANT.to_string()).or_insert_with(|| {
            let shown_ns = self
                .slo_policy
                .default_target
                .map_or(target_ns, |d| d.as_nanos() as u64);
            Arc::new(SloCell::new(shown_ns))
        });
        if overflow.target_ns == target_ns {
            return Some(Arc::clone(overflow));
        }
        Some(Arc::new(SloCell {
            target_ns,
            counts: Arc::clone(&overflow.counts),
        }))
    }
    /// The recorder for `tenant`, creating it under the cap. `None`
    /// for the anonymous (empty) tenant label. Called once per job at
    /// submission, so completion stays lock-free.
    pub(crate) fn tenant_recorder(&self, tenant: &str) -> Option<Arc<LatencyRecorder>> {
        if tenant.is_empty() {
            return None;
        }
        let mut map = self.tenants.lock();
        if let Some(rec) = map.get(tenant) {
            return Some(Arc::clone(rec));
        }
        if map.len() < MAX_TENANTS {
            let rec = Arc::new(LatencyRecorder::default());
            map.insert(tenant.to_string(), Arc::clone(&rec));
            return Some(rec);
        }
        let rec = map
            .entry(OVERFLOW_TENANT.to_string())
            .or_insert_with(|| Arc::new(LatencyRecorder::default()));
        Some(Arc::clone(rec))
    }

    /// Record one completed job's decomposed latency into the
    /// engine-wide histograms and (when resolved) the tenant's.
    pub(crate) fn record_job(
        &self,
        tenant_rec: Option<&LatencyRecorder>,
        total: Duration,
        queue: Duration,
        service: Duration,
    ) {
        self.overall.record(total, queue, service);
        if let Some(rec) = tenant_rec {
            rec.record(total, queue, service);
        }
    }

    pub(crate) fn note_batch(&self, jobs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth_per_lane: [usize; Priority::COUNT],
        plan_cache: PlanCacheStats,
        expr_results: ExprResultCacheStats,
        since: Instant,
    ) -> MetricsSnapshot {
        let (latency_hist, queue_delay_hist, service_hist) = self.overall.raw_snapshots();
        let latency = LatencySummary::from_snapshot(&latency_hist);
        let queue_delay = LatencySummary::from_snapshot(&queue_delay_hist);
        let service = LatencySummary::from_snapshot(&service_hist);
        let per_tenant = {
            let map = self.tenants.lock();
            let mut rows: Vec<TenantLatency> = map
                .iter()
                .map(|(tenant, rec)| {
                    let (lat, q, sv) = rec.raw_snapshots();
                    TenantLatency {
                        tenant: tenant.clone(),
                        latency: LatencySummary::from_snapshot(&lat),
                        queue_delay: LatencySummary::from_snapshot(&q),
                        service: LatencySummary::from_snapshot(&sv),
                        latency_hist: lat,
                        queue_delay_hist: q,
                        service_hist: sv,
                    }
                })
                .collect();
            rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
            rows
        };
        let slo = {
            let map = self.slo.lock();
            let mut rows: Vec<TenantSlo> = map
                .iter()
                .map(|(tenant, cell)| TenantSlo {
                    tenant: tenant.clone(),
                    target_ms: cell.target_ns as f64 / 1e6,
                    goal: self.slo_policy.goal,
                    good: cell.counts.good.load(Ordering::Relaxed),
                    bad: cell.counts.bad.load(Ordering::Relaxed),
                })
                .collect();
            rows.sort_by(|a, b| a.tenant.cmp(&b.tenant));
            rows
        };
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = since.elapsed();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            duplicate_completions: self.duplicate_completions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            dist_routed: self.dist_routed.load(Ordering::Relaxed),
            expr_jobs: self.expr_jobs.load(Ordering::Relaxed),
            expr_nodes_computed: self.expr_nodes_computed.load(Ordering::Relaxed),
            row_updates: self.row_updates.load(Ordering::Relaxed),
            rows_dirtied: self.rows_dirtied.load(Ordering::Relaxed),
            expr_results_patched: self.expr_results_patched.load(Ordering::Relaxed),
            queue_depth: queue_depth_per_lane.iter().sum(),
            queue_depth_per_lane,
            plan_cache,
            expr_results,
            elapsed,
            throughput_jps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            latency,
            queue_delay,
            service,
            latency_hist,
            queue_delay_hist,
            service_hist,
            per_tenant,
            slo,
        }
    }
}

/// Order statistics over completed-job latencies, derived from a
/// bounded log-bucketed histogram: every completed job is counted
/// (no sample cap), and quantiles carry the histogram's ≤ 6.25%
/// relative bucket error (the mean and max are exact).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Recorded samples (every one — histograms never drop).
    pub count: u64,
    /// Arithmetic mean, milliseconds (exact).
    pub mean_ms: f64,
    /// Median, milliseconds (within bucket error).
    pub p50_ms: f64,
    /// 99th percentile, milliseconds (within bucket error).
    pub p99_ms: f64,
    /// Maximum, milliseconds (exact).
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_snapshot(s: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: s.count,
            mean_ms: s.mean() / 1e6,
            p50_ms: s.quantile(0.50) as f64 / 1e6,
            p99_ms: s.quantile(0.99) as f64 / 1e6,
            max_ms: s.max as f64 / 1e6,
        }
    }
}

/// One tenant's SLO standing at snapshot time.
#[derive(Clone, Debug)]
pub struct TenantSlo {
    /// Tenant label ([`OVERFLOW_TENANT`] aggregates the tail beyond
    /// the cap).
    pub tenant: String,
    /// Latency objective for this tenant, milliseconds.
    pub target_ms: f64,
    /// Fraction of jobs that must meet the target (policy-wide).
    pub goal: f64,
    /// Completed jobs within the target.
    pub good: u64,
    /// Completed jobs over the target.
    pub bad: u64,
}

impl TenantSlo {
    /// Observed bad fraction `bad / (good + bad)` (0 with no
    /// traffic).
    pub fn bad_fraction(&self) -> f64 {
        let n = self.good + self.bad;
        if n == 0 {
            0.0
        } else {
            self.bad as f64 / n as f64
        }
    }

    /// Error-budget burn rate: the observed bad fraction over the
    /// budget `1 - goal`. 1.0 means the tenant is burning exactly its
    /// budget; above 1.0 it is on track to exhaust it. Computed over
    /// whatever window the snapshot covers — combine with
    /// [`MetricsSnapshot::since`] for a *rolling* burn rate.
    pub fn burn_rate(&self) -> f64 {
        let budget = (1.0 - self.goal).max(1e-9);
        self.bad_fraction() / budget
    }
}

/// One tenant's latency decomposition at snapshot time.
#[derive(Clone, Debug)]
pub struct TenantLatency {
    /// The tenant label ([`OVERFLOW_TENANT`] aggregates the tail
    /// beyond the per-tenant cap).
    pub tenant: String,
    /// Submit → done.
    pub latency: LatencySummary,
    /// Submit → worker pickup (time spent queued).
    pub queue_delay: LatencySummary,
    /// Worker pickup → done (time spent executing).
    pub service: LatencySummary,
    /// Raw total-latency histogram (ns) behind
    /// [`TenantLatency::latency`]; kept so
    /// [`MetricsSnapshot::since`] can diff windows.
    pub latency_hist: HistogramSnapshot,
    /// Raw queue-delay histogram (ns).
    pub queue_delay_hist: HistogramSnapshot,
    /// Raw service-time histogram (ns).
    pub service_hist: HistogramSnapshot,
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Submissions rejected (overload, unknown matrix, shape mismatch,
    /// shutdown).
    pub rejected: u64,
    /// Jobs that produced a product.
    pub completed: u64,
    /// Jobs whose execution failed.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs that reached a terminal state twice — always 0 unless the
    /// exactly-once delivery invariant is broken.
    pub duplicate_completions: u64,
    /// Worker batch count (a batch is ≥ 1 job under one plan).
    pub batches: u64,
    /// Jobs executed through batches (`batched_jobs / batches` is the
    /// mean batch size).
    pub batched_jobs: u64,
    /// Jobs executed on the sharded (`spgemm-dist`) backend because
    /// they crossed the configured size threshold (see
    /// `ServeConfig::dist`) — whole products and routed expression
    /// `Multiply` nodes alike.
    pub dist_routed: u64,
    /// Jobs that evaluated a whole expression DAG
    /// (`ServeEngine::try_submit_expr`).
    pub expr_jobs: u64,
    /// Expression nodes computed (as opposed to served from the
    /// subexpression result cache).
    pub expr_nodes_computed: u64,
    /// Streaming row updates applied
    /// (`ServeEngine::try_submit_row_update`).
    pub row_updates: u64,
    /// Total matrix rows dirtied across those updates.
    pub rows_dirtied: u64,
    /// Expression `Multiply` nodes served by **patching** a previous
    /// version's cached product (recomputing only the rows the
    /// intervening row updates invalidated) instead of evaluating the
    /// node from scratch.
    pub expr_results_patched: u64,
    /// Queued jobs at snapshot time (sum of the per-lane depths).
    pub queue_depth: usize,
    /// Queued jobs per priority lane at snapshot time: `[High,
    /// Normal, Low]`, one consistent snapshot.
    pub queue_depth_per_lane: [usize; Priority::COUNT],
    /// Shared plan cache counters.
    pub plan_cache: PlanCacheStats,
    /// Cross-tenant subexpression result cache counters.
    pub expr_results: ExprResultCacheStats,
    /// Time since the engine started.
    pub elapsed: Duration,
    /// `completed / elapsed`, jobs per second.
    pub throughput_jps: f64,
    /// Latency order statistics over completed jobs (submit → done).
    pub latency: LatencySummary,
    /// Queue-delay component (submit → worker pickup) over completed
    /// jobs; with [`MetricsSnapshot::service`] this decomposes
    /// [`MetricsSnapshot::latency`].
    pub queue_delay: LatencySummary,
    /// Service-time component (worker pickup → done) over completed
    /// jobs.
    pub service: LatencySummary,
    /// Raw engine-wide total-latency histogram (ns) behind
    /// [`MetricsSnapshot::latency`]; kept so
    /// [`MetricsSnapshot::since`] can diff windows.
    pub latency_hist: HistogramSnapshot,
    /// Raw engine-wide queue-delay histogram (ns).
    pub queue_delay_hist: HistogramSnapshot,
    /// Raw engine-wide service-time histogram (ns).
    pub service_hist: HistogramSnapshot,
    /// Per-tenant latency decomposition, sorted by tenant label.
    /// Anonymous (empty-label) jobs appear only in the engine-wide
    /// summaries.
    pub per_tenant: Vec<TenantLatency>,
    /// Per-tenant SLO standing (good/bad counts against each tenant's
    /// latency target), sorted by tenant label. Empty unless
    /// `ServeConfig::slo` gives tenants a target.
    pub slo: Vec<TenantSlo>,
}

impl MetricsSnapshot {
    /// Terminal outcomes delivered (completed + failed + cancelled) —
    /// the number the exactly-once smoke check compares to accepted.
    pub fn delivered(&self) -> u64 {
        self.completed + self.failed + self.cancelled
    }

    /// Append this snapshot as OpenMetrics families (engine job
    /// counters, cache hit/miss counters, the engine-wide and
    /// per-tenant latency histograms, and per-tenant SLO series) —
    /// the serving layer's contribution to a `/metrics` page, designed
    /// to plug into `spgemm_obs::http::ScrapeServer::start_with` as
    /// the extra-exposition hook. Families are prefixed
    /// `spgemm_serve_` and deliberately disjoint from the registry's
    /// gauge families (queue depth, cache entries/bytes live there —
    /// one read path, not two).
    pub fn openmetrics_into(&self, out: &mut String) {
        use spgemm_obs::openmetrics::{
            append_counter, append_gauge, append_histogram, append_type,
        };
        let counters: [(&str, u64); 14] = [
            ("spgemm_serve_jobs_accepted", self.accepted),
            ("spgemm_serve_jobs_rejected", self.rejected),
            ("spgemm_serve_jobs_completed", self.completed),
            ("spgemm_serve_jobs_failed", self.failed),
            ("spgemm_serve_jobs_cancelled", self.cancelled),
            (
                "spgemm_serve_duplicate_completions",
                self.duplicate_completions,
            ),
            ("spgemm_serve_batches", self.batches),
            ("spgemm_serve_batched_jobs", self.batched_jobs),
            ("spgemm_serve_dist_routed", self.dist_routed),
            ("spgemm_serve_expr_jobs", self.expr_jobs),
            ("spgemm_serve_expr_nodes_computed", self.expr_nodes_computed),
            ("spgemm_serve_row_updates", self.row_updates),
            ("spgemm_serve_rows_dirtied", self.rows_dirtied),
            (
                "spgemm_serve_expr_results_patched",
                self.expr_results_patched,
            ),
        ];
        for (fam, v) in counters {
            append_type(out, fam, "counter");
            append_counter(out, fam, &[], v);
        }
        let caches: [(&str, u64, u64, u64); 2] = [
            (
                "plan",
                self.plan_cache.hits,
                self.plan_cache.misses,
                self.plan_cache.evictions,
            ),
            (
                "expr_results",
                self.expr_results.hits,
                self.expr_results.misses,
                self.expr_results.evictions,
            ),
        ];
        for (kind, fam) in [
            ("hits", "spgemm_serve_cache_hits"),
            ("misses", "spgemm_serve_cache_misses"),
            ("evictions", "spgemm_serve_cache_evictions"),
        ] {
            append_type(out, fam, "counter");
            for (cache, hits, misses, evictions) in caches {
                let v = match kind {
                    "hits" => hits,
                    "misses" => misses,
                    _ => evictions,
                };
                append_counter(out, fam, &[("cache", cache)], v);
            }
        }
        let phases: [(&str, &HistogramSnapshot); 3] = [
            ("total", &self.latency_hist),
            ("queue", &self.queue_delay_hist),
            ("service", &self.service_hist),
        ];
        let fam = "spgemm_serve_latency_ns";
        append_type(out, fam, "histogram");
        for (phase, hist) in phases {
            append_histogram(out, fam, &[("phase", phase)], hist);
        }
        if !self.per_tenant.is_empty() {
            let fam = "spgemm_serve_tenant_latency_ns";
            append_type(out, fam, "histogram");
            for t in &self.per_tenant {
                append_histogram(out, fam, &[("tenant", t.tenant.as_str())], &t.latency_hist);
            }
        }
        if !self.slo.is_empty() {
            let fam = "spgemm_serve_slo_jobs";
            append_type(out, fam, "counter");
            for s in &self.slo {
                append_counter(
                    out,
                    fam,
                    &[("tenant", s.tenant.as_str()), ("outcome", "good")],
                    s.good,
                );
                append_counter(
                    out,
                    fam,
                    &[("tenant", s.tenant.as_str()), ("outcome", "bad")],
                    s.bad,
                );
            }
            let fam = "spgemm_serve_slo_target_ms";
            append_type(out, fam, "gauge");
            for s in &self.slo {
                append_gauge(out, fam, &[("tenant", s.tenant.as_str())], s.target_ms);
            }
            let fam = "spgemm_serve_slo_burn_rate";
            append_type(out, fam, "gauge");
            for s in &self.slo {
                append_gauge(out, fam, &[("tenant", s.tenant.as_str())], s.burn_rate());
            }
        }
    }

    /// The interval view between `prev` (an earlier snapshot of the
    /// same engine) and `self`: counters become per-window deltas,
    /// latency summaries and SLO counts are recomputed over only the
    /// window's samples (bucket-wise histogram differences, see
    /// [`HistogramSnapshot::since`]), and `throughput_jps` becomes
    /// the window rate. Gauges (`queue_depth`, cache `entries`) keep
    /// their end-of-window value. `since` of an identical snapshot is
    /// all-zero. Tenants absent from `prev` diff against empty.
    pub fn since(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        let latency_hist = self.latency_hist.since(&prev.latency_hist);
        let queue_delay_hist = self.queue_delay_hist.since(&prev.queue_delay_hist);
        let service_hist = self.service_hist.since(&prev.service_hist);
        let empty = Histogram::new().snapshot();
        let per_tenant = self
            .per_tenant
            .iter()
            .map(|t| {
                let p = prev.per_tenant.iter().find(|p| p.tenant == t.tenant);
                let lat = t.latency_hist.since(p.map_or(&empty, |p| &p.latency_hist));
                let q = t
                    .queue_delay_hist
                    .since(p.map_or(&empty, |p| &p.queue_delay_hist));
                let sv = t.service_hist.since(p.map_or(&empty, |p| &p.service_hist));
                TenantLatency {
                    tenant: t.tenant.clone(),
                    latency: LatencySummary::from_snapshot(&lat),
                    queue_delay: LatencySummary::from_snapshot(&q),
                    service: LatencySummary::from_snapshot(&sv),
                    latency_hist: lat,
                    queue_delay_hist: q,
                    service_hist: sv,
                }
            })
            .collect();
        let slo = self
            .slo
            .iter()
            .map(|s| {
                let p = prev.slo.iter().find(|p| p.tenant == s.tenant);
                TenantSlo {
                    tenant: s.tenant.clone(),
                    target_ms: s.target_ms,
                    goal: s.goal,
                    good: s.good.saturating_sub(p.map_or(0, |p| p.good)),
                    bad: s.bad.saturating_sub(p.map_or(0, |p| p.bad)),
                }
            })
            .collect();
        let completed = self.completed.saturating_sub(prev.completed);
        let elapsed = self.elapsed.saturating_sub(prev.elapsed);
        MetricsSnapshot {
            accepted: self.accepted.saturating_sub(prev.accepted),
            rejected: self.rejected.saturating_sub(prev.rejected),
            completed,
            failed: self.failed.saturating_sub(prev.failed),
            cancelled: self.cancelled.saturating_sub(prev.cancelled),
            duplicate_completions: self
                .duplicate_completions
                .saturating_sub(prev.duplicate_completions),
            batches: self.batches.saturating_sub(prev.batches),
            batched_jobs: self.batched_jobs.saturating_sub(prev.batched_jobs),
            dist_routed: self.dist_routed.saturating_sub(prev.dist_routed),
            expr_jobs: self.expr_jobs.saturating_sub(prev.expr_jobs),
            expr_nodes_computed: self
                .expr_nodes_computed
                .saturating_sub(prev.expr_nodes_computed),
            row_updates: self.row_updates.saturating_sub(prev.row_updates),
            rows_dirtied: self.rows_dirtied.saturating_sub(prev.rows_dirtied),
            expr_results_patched: self
                .expr_results_patched
                .saturating_sub(prev.expr_results_patched),
            queue_depth: self.queue_depth,
            queue_depth_per_lane: self.queue_depth_per_lane,
            plan_cache: self.plan_cache.since(&prev.plan_cache),
            expr_results: self.expr_results.since(&prev.expr_results),
            elapsed,
            throughput_jps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            latency: LatencySummary::from_snapshot(&latency_hist),
            queue_delay: LatencySummary::from_snapshot(&queue_delay_hist),
            service: LatencySummary::from_snapshot(&service_hist),
            latency_hist,
            queue_delay_hist,
            service_hist,
            per_tenant,
            slo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (total, queue, service) summaries of a recorder (test probe).
    fn summaries(rec: &LatencyRecorder) -> (LatencySummary, LatencySummary, LatencySummary) {
        let (t, q, s) = rec.raw_snapshots();
        (
            LatencySummary::from_snapshot(&t),
            LatencySummary::from_snapshot(&q),
            LatencySummary::from_snapshot(&s),
        )
    }

    #[test]
    fn summary_percentiles_within_bucket_error() {
        // 1..=100 ms recorded as ns: exact order stats are known, the
        // histogram summary must land within its 6.25% bucket bound
        let rec = LatencyRecorder::default();
        for i in 1..=100u64 {
            let d = Duration::from_millis(i);
            rec.record(d, d / 2, d / 2);
        }
        let (s, q, v) = summaries(&rec);
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.0).abs() <= 50.0 * 0.07, "{}", s.p50_ms);
        assert!((s.p99_ms - 99.0).abs() <= 99.0 * 0.07, "{}", s.p99_ms);
        assert!((s.max_ms - 100.0).abs() < 1e-9, "max is exact");
        assert!((s.mean_ms - 50.5).abs() < 1e-9, "mean is exact");
        // decomposition components recorded alongside
        assert_eq!(q.count, 100);
        assert_eq!(v.count, 100);
        assert!((q.max_ms - 50.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_reports_per_lane_depths_and_their_sum() {
        let m = Metrics::default();
        let s = m.snapshot(
            [2, 5, 1],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(s.queue_depth_per_lane, [2, 5, 1]);
        assert_eq!(s.queue_depth, 8, "aggregate is the lane sum");
        assert_eq!(s.dist_routed, 0);
        assert!(s.per_tenant.is_empty());
    }

    #[test]
    fn empty_summary_is_zero() {
        let m = Metrics::default();
        let (s, q, v) = summaries(&m.overall);
        for sum in [s, q, v] {
            assert_eq!(sum.count, 0);
            assert_eq!(sum.p99_ms, 0.0);
            assert_eq!(sum.max_ms, 0.0);
        }
    }

    #[test]
    fn per_tenant_decomposition_adds_up() {
        let m = Metrics::default();
        let rec = m.tenant_recorder("acme").unwrap();
        for i in 1..=50u64 {
            let queue = Duration::from_millis(i);
            let service = Duration::from_millis(2 * i);
            m.record_job(Some(&rec), queue + service, queue, service);
        }
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(snap.per_tenant.len(), 1);
        let t = &snap.per_tenant[0];
        assert_eq!(t.tenant, "acme");
        assert_eq!(t.latency.count, 50);
        // mean(total) = mean(queue) + mean(service), exactly
        assert!(
            (t.latency.mean_ms - t.queue_delay.mean_ms - t.service.mean_ms).abs() < 1e-9,
            "decomposition must add up: {t:?}"
        );
        assert!(t.queue_delay.p99_ms > 0.0 && t.service.p99_ms > 0.0);
        // engine-wide histograms saw the same jobs
        assert_eq!(snap.latency.count, 50);
    }

    #[test]
    fn anonymous_tenant_records_only_engine_wide() {
        let m = Metrics::default();
        assert!(m.tenant_recorder("").is_none());
        m.record_job(
            None,
            Duration::from_millis(3),
            Duration::from_millis(1),
            Duration::from_millis(2),
        );
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert!(snap.per_tenant.is_empty());
        assert_eq!(snap.latency.count, 1);
    }

    #[test]
    fn slo_cells_classify_and_snapshot() {
        let m = Metrics::with_slo(SloPolicy {
            default_target: Some(Duration::from_millis(10)),
            per_tenant: vec![("strict".to_string(), Duration::from_millis(1))],
            goal: 0.9,
        });
        assert!(m.slo_cell("").is_none(), "anonymous jobs untracked");
        let lax = m.slo_cell("lax").unwrap();
        let strict = m.slo_cell("strict").unwrap();
        // 5 ms: within the 10 ms default, over the 1 ms override
        let five_ms = 5_000_000u64;
        for _ in 0..8 {
            lax.record(five_ms);
        }
        lax.record(50_000_000); // one breach
        strict.record(five_ms);
        strict.record(500_000);
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(snap.slo.len(), 2);
        let lax_row = snap.slo.iter().find(|s| s.tenant == "lax").unwrap();
        assert_eq!((lax_row.good, lax_row.bad), (8, 1));
        assert!((lax_row.target_ms - 10.0).abs() < 1e-9);
        // bad fraction 1/9 over a 0.1 budget ⇒ burn ≈ 1.11
        assert!((lax_row.burn_rate() - (1.0 / 9.0) / 0.1).abs() < 1e-9);
        let strict_row = snap.slo.iter().find(|s| s.tenant == "strict").unwrap();
        assert_eq!((strict_row.good, strict_row.bad), (1, 1));
        assert!((strict_row.target_ms - 1.0).abs() < 1e-9);
        assert!((strict_row.burn_rate() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn slo_overflow_tenants_keep_their_own_targets() {
        // No default target: only overridden tenants are tracked, and
        // the ones beyond the cap must keep their override's
        // classification while aggregating under the overflow label.
        let mut per_tenant: Vec<(String, Duration)> = (0..MAX_TENANTS)
            .map(|i| (format!("t-{i}"), Duration::from_millis(10)))
            .collect();
        per_tenant.push(("lax-tail".to_string(), Duration::from_millis(10)));
        per_tenant.push(("strict-tail".to_string(), Duration::from_millis(1)));
        let m = Metrics::with_slo(SloPolicy {
            default_target: None,
            per_tenant,
            goal: 0.9,
        });
        for i in 0..MAX_TENANTS {
            m.slo_cell(&format!("t-{i}")).unwrap();
        }
        let lax = m.slo_cell("lax-tail").expect("tracked beyond the cap");
        let strict = m.slo_cell("strict-tail").expect("tracked beyond the cap");
        let five_ms = 5_000_000u64;
        lax.record(five_ms); // within its 10 ms target
        strict.record(five_ms); // over its 1 ms target
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(snap.slo.len(), MAX_TENANTS + 1, "cap + overflow");
        let other = snap
            .slo
            .iter()
            .find(|s| s.tenant == OVERFLOW_TENANT)
            .expect("overflow bucket present");
        assert_eq!(
            (other.good, other.bad),
            (1, 1),
            "each tail tenant classified against its own target"
        );
    }

    #[test]
    fn no_policy_means_no_slo_rows() {
        let m = Metrics::default();
        assert!(m.slo_cell("anyone").is_none());
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert!(snap.slo.is_empty());
    }

    #[test]
    fn since_of_identical_snapshots_is_zero() {
        let m = Metrics::with_slo(SloPolicy {
            default_target: Some(Duration::from_millis(5)),
            ..SloPolicy::default()
        });
        m.accepted.store(7, Ordering::Relaxed);
        m.completed.store(7, Ordering::Relaxed);
        let rec = m.tenant_recorder("acme").unwrap();
        let slo = m.slo_cell("acme").unwrap();
        for i in 1..=7u64 {
            let d = Duration::from_millis(i);
            m.record_job(Some(&rec), d, d / 2, d / 2);
            slo.record(d.as_nanos() as u64);
        }
        let start = Instant::now();
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats {
                hits: 3,
                misses: 4,
                evictions: 1,
                entries: 2,
            },
            ExprResultCacheStats::default(),
            start,
        );
        let d = snap.since(&snap.clone());
        assert_eq!(d.accepted, 0);
        assert_eq!(d.completed, 0);
        assert_eq!(d.delivered(), 0);
        assert_eq!(d.batches, 0);
        assert_eq!(d.latency.count, 0);
        assert_eq!(d.latency.max_ms, 0.0);
        assert_eq!(d.queue_delay.count, 0);
        assert_eq!(d.plan_cache.hits, 0);
        assert_eq!(d.plan_cache.entries, 2, "gauge keeps its value");
        assert_eq!(d.throughput_jps, 0.0);
        assert_eq!(d.per_tenant.len(), 1);
        assert_eq!(d.per_tenant[0].latency.count, 0);
        assert_eq!(d.slo.len(), 1);
        assert_eq!((d.slo[0].good, d.slo[0].bad), (0, 0));
        assert_eq!(d.slo[0].burn_rate(), 0.0);
    }

    #[test]
    fn since_isolates_the_window() {
        let m = Metrics::with_slo(SloPolicy {
            default_target: Some(Duration::from_millis(5)),
            ..SloPolicy::default()
        });
        let rec = m.tenant_recorder("w").unwrap();
        let slo = m.slo_cell("w").unwrap();
        let job = |ms: u64| {
            let d = Duration::from_millis(ms);
            m.record_job(Some(&rec), d, d / 2, d / 2);
            slo.record(d.as_nanos() as u64);
            m.completed.fetch_add(1, Ordering::Relaxed);
        };
        let start = Instant::now();
        job(1);
        job(100); // slow outlier in the *first* window
        let prev = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            start,
        );
        job(2);
        job(3);
        job(4);
        let cur = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            start,
        );
        let w = cur.since(&prev);
        assert_eq!(w.completed, 3);
        assert_eq!(w.latency.count, 3);
        // the first window's 100 ms outlier must not leak into the
        // window's max (cumulative max would be ~100)
        assert!(
            w.latency.max_ms < 10.0,
            "window max {} leaked the outlier",
            w.latency.max_ms
        );
        let t = &w.per_tenant[0];
        assert_eq!(t.latency.count, 3);
        assert_eq!((w.slo[0].good, w.slo[0].bad), (3, 0));
        assert!(w.elapsed <= cur.elapsed);
    }

    #[test]
    fn openmetrics_exposition_is_valid_and_covers_tenants() {
        let m = Metrics::with_slo(SloPolicy {
            default_target: Some(Duration::from_millis(5)),
            ..SloPolicy::default()
        });
        let rec = m.tenant_recorder("acme \"prod\"\n").unwrap();
        let slo = m.slo_cell("acme \"prod\"\n").unwrap();
        for i in 1..=20u64 {
            let d = Duration::from_millis(i);
            m.record_job(Some(&rec), d, d / 2, d / 2);
            slo.record(d.as_nanos() as u64);
        }
        m.accepted.store(20, Ordering::Relaxed);
        m.completed.store(20, Ordering::Relaxed);
        let snap = m.snapshot(
            [1, 2, 3],
            PlanCacheStats {
                hits: 9,
                misses: 3,
                evictions: 1,
                entries: 2,
            },
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        let mut page = String::new();
        snap.openmetrics_into(&mut page);
        page.push_str("# EOF\n");
        spgemm_obs::openmetrics::validate(&page).expect("serve exposition must validate");
        assert!(page.contains("spgemm_serve_jobs_completed_total 20"));
        assert!(page.contains("spgemm_serve_cache_hits_total{cache=\"plan\"} 9"));
        // hostile tenant label escaped, never raw
        assert!(!page.contains("acme \"prod\"\n\""));
        assert!(page.contains("tenant=\"acme \\\"prod\\\"\\n\""));
        assert!(page.contains("spgemm_serve_slo_jobs_total"));
        assert!(page.contains("spgemm_serve_latency_ns_bucket"));
    }

    #[test]
    fn tenant_cardinality_is_capped() {
        let m = Metrics::default();
        for i in 0..(MAX_TENANTS + 10) {
            let rec = m.tenant_recorder(&format!("tenant-{i}")).unwrap();
            m.record_job(
                Some(&rec),
                Duration::from_micros(10),
                Duration::from_micros(4),
                Duration::from_micros(6),
            );
        }
        let snap = m.snapshot(
            [0, 0, 0],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(snap.per_tenant.len(), MAX_TENANTS + 1, "cap + overflow");
        let other = snap
            .per_tenant
            .iter()
            .find(|t| t.tenant == OVERFLOW_TENANT)
            .expect("overflow bucket present");
        assert_eq!(other.latency.count, 10, "tail tenants aggregate");
    }
}
