//! Serving metrics: per-job latency, aggregate counters, and the
//! snapshot the `spgemm-serve` bench prints.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::expr_results::ExprResultCacheStats;
use crate::job::Priority;
use crate::plan_cache::PlanCacheStats;

/// Hard cap on retained latency samples; beyond it new samples are
/// counted but not stored (`LatencySummary::dropped`). At the serving
/// rates this workspace benches, the cap is never approached.
const MAX_SAMPLES: usize = 1 << 20;

/// Shared counters, written by submitters, workers and job handles.
#[derive(Default)]
pub(crate) struct Metrics {
    pub(crate) accepted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    /// Second completions of one job — must stay 0; counted instead of
    /// panicking so the smoke harness can assert on it.
    pub(crate) duplicate_completions: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_jobs: AtomicU64,
    /// Jobs executed on the sharded backend instead of the plan path.
    pub(crate) dist_routed: AtomicU64,
    /// Jobs that evaluated a whole expression DAG.
    pub(crate) expr_jobs: AtomicU64,
    /// Expression nodes actually computed (subexpression-cache misses
    /// and uncached evaluations; cache hits are counted by the cache).
    pub(crate) expr_nodes_computed: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
    dropped_samples: AtomicU64,
}

impl Metrics {
    pub(crate) fn record_latency(&self, since_submit: Duration) {
        let mut samples = self.latencies_us.lock();
        if samples.len() < MAX_SAMPLES {
            samples.push(since_submit.as_micros() as u64);
        } else {
            self.dropped_samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn note_batch(&self, jobs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth_per_lane: [usize; Priority::COUNT],
        plan_cache: PlanCacheStats,
        expr_results: ExprResultCacheStats,
        since: Instant,
    ) -> MetricsSnapshot {
        let latency = {
            let samples = self.latencies_us.lock();
            LatencySummary::from_us(&samples, self.dropped_samples.load(Ordering::Relaxed))
        };
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = since.elapsed();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            duplicate_completions: self.duplicate_completions.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_jobs: self.batched_jobs.load(Ordering::Relaxed),
            dist_routed: self.dist_routed.load(Ordering::Relaxed),
            expr_jobs: self.expr_jobs.load(Ordering::Relaxed),
            expr_nodes_computed: self.expr_nodes_computed.load(Ordering::Relaxed),
            queue_depth: queue_depth_per_lane.iter().sum(),
            queue_depth_per_lane,
            plan_cache,
            expr_results,
            elapsed,
            throughput_jps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
            latency,
        }
    }
}

/// Order statistics over completed-job latencies (submit → done, i.e.
/// queue wait + execution).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Retained samples.
    pub count: usize,
    /// Samples beyond the retention cap (counted, not stored).
    pub dropped: u64,
    /// Arithmetic mean, milliseconds.
    pub mean_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_us(samples: &[u64], dropped: u64) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                dropped,
                ..Default::default()
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |q: f64| -> f64 {
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx] as f64 / 1e3
        };
        LatencySummary {
            count: sorted.len(),
            dropped,
            mean_ms: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1e3,
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            max_ms: *sorted.last().unwrap() as f64 / 1e3,
        }
    }
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Submissions rejected (overload, unknown matrix, shape mismatch,
    /// shutdown).
    pub rejected: u64,
    /// Jobs that produced a product.
    pub completed: u64,
    /// Jobs whose execution failed.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs that reached a terminal state twice — always 0 unless the
    /// exactly-once delivery invariant is broken.
    pub duplicate_completions: u64,
    /// Worker batch count (a batch is ≥ 1 job under one plan).
    pub batches: u64,
    /// Jobs executed through batches (`batched_jobs / batches` is the
    /// mean batch size).
    pub batched_jobs: u64,
    /// Jobs executed on the sharded (`spgemm-dist`) backend because
    /// they crossed the configured size threshold (see
    /// `ServeConfig::dist`) — whole products and routed expression
    /// `Multiply` nodes alike.
    pub dist_routed: u64,
    /// Jobs that evaluated a whole expression DAG
    /// (`ServeEngine::try_submit_expr`).
    pub expr_jobs: u64,
    /// Expression nodes computed (as opposed to served from the
    /// subexpression result cache).
    pub expr_nodes_computed: u64,
    /// Queued jobs at snapshot time (sum of the per-lane depths).
    pub queue_depth: usize,
    /// Queued jobs per priority lane at snapshot time: `[High,
    /// Normal, Low]`, one consistent snapshot.
    pub queue_depth_per_lane: [usize; Priority::COUNT],
    /// Shared plan cache counters.
    pub plan_cache: PlanCacheStats,
    /// Cross-tenant subexpression result cache counters.
    pub expr_results: ExprResultCacheStats,
    /// Time since the engine started.
    pub elapsed: Duration,
    /// `completed / elapsed`, jobs per second.
    pub throughput_jps: f64,
    /// Latency order statistics over completed jobs.
    pub latency: LatencySummary,
}

impl MetricsSnapshot {
    /// Terminal outcomes delivered (completed + failed + cancelled) —
    /// the number the exactly-once smoke check compares to accepted.
    pub fn delivered(&self) -> u64 {
        self.completed + self.failed + self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_percentiles() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        let s = LatencySummary::from_us(&us, 0);
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.0).abs() <= 1.0, "{}", s.p50_ms);
        assert!((s.p99_ms - 99.0).abs() <= 1.0, "{}", s.p99_ms);
        assert!((s.max_ms - 100.0).abs() < 1e-9);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_reports_per_lane_depths_and_their_sum() {
        let m = Metrics::default();
        let s = m.snapshot(
            [2, 5, 1],
            PlanCacheStats::default(),
            ExprResultCacheStats::default(),
            Instant::now(),
        );
        assert_eq!(s.queue_depth_per_lane, [2, 5, 1]);
        assert_eq!(s.queue_depth, 8, "aggregate is the lane sum");
        assert_eq!(s.dist_routed, 0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = LatencySummary::from_us(&[], 3);
        assert_eq!(s.count, 0);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.p99_ms, 0.0);
    }
}
