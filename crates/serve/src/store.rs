//! Named, fingerprinted, shared matrices — the serving layer's data
//! plane.
//!
//! Tenants register matrices once under a name; jobs reference them by
//! name and capture an [`Arc`] snapshot at submission, so a tenant
//! re-registering a name (new values, possibly new structure) never
//! races in-flight jobs. The store computes each matrix's `O(nnz)`
//! [`Csr::structure_fingerprint`] **once at registration**, which is
//! what lets the plan cache key products by structure without paying a
//! per-request fingerprint pass.

use parking_lot::Mutex;
use spgemm_sparse::Csr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Registered names across every live store (gauge: replacing a name
/// does not move it; insert/remove of distinct names do).
static STORE_REGISTRATIONS: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("serve", "serve.store.registrations");
/// Approximate CSR bytes ([`spgemm_dist::csr_bytes`]) held by current
/// registrations (snapshots captured by in-flight jobs not counted).
static STORE_BYTES: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("serve", "serve.store.approx_bytes");

/// An immutable registered matrix: the payload plus the metadata the
/// scheduler keys on.
pub struct StoredMatrix {
    name: String,
    /// Monotone per-store registration counter. Two registrations of
    /// the same name get different versions, so result deduplication
    /// (same operands ⇒ same product) can use `(name, version)` as an
    /// identity without comparing values.
    version: u64,
    fingerprint: u64,
    matrix: Arc<Csr<f64>>,
}

impl StoredMatrix {
    /// The name this matrix is registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registration counter value (unique within one store).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The structure fingerprint computed at registration
    /// ([`Csr::structure_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The matrix itself.
    pub fn csr(&self) -> &Csr<f64> {
        &self.matrix
    }

    /// Shared handle to the matrix.
    pub fn csr_arc(&self) -> Arc<Csr<f64>> {
        Arc::clone(&self.matrix)
    }
}

impl std::fmt::Debug for StoredMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StoredMatrix({:?} v{} {}x{} nnz={} fp={:#018x})",
            self.name,
            self.version,
            self.matrix.nrows(),
            self.matrix.ncols(),
            self.matrix.nnz(),
            self.fingerprint
        )
    }
}

/// Concurrent name → matrix registry.
///
/// ```
/// use spgemm_serve::MatrixStore;
/// use spgemm_sparse::Csr;
///
/// let store = MatrixStore::new();
/// let a = store.insert("a", Csr::<f64>::identity(4));
/// assert_eq!(store.get("a").unwrap().version(), a.version());
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Default)]
pub struct MatrixStore {
    inner: Mutex<HashMap<String, Arc<StoredMatrix>>>,
    next_version: AtomicU64,
}

impl MatrixStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `matrix` under `name`, replacing any previous
    /// registration. Jobs that captured the previous registration keep
    /// using it (snapshot semantics). Computes the structure
    /// fingerprint once, here.
    pub fn insert(&self, name: impl Into<String>, matrix: Csr<f64>) -> Arc<StoredMatrix> {
        let name = name.into();
        let stored = Arc::new(StoredMatrix {
            fingerprint: matrix.structure_fingerprint(),
            version: self.next_version.fetch_add(1, Ordering::Relaxed),
            matrix: Arc::new(matrix),
            name: name.clone(),
        });
        let bytes = spgemm_dist::csr_bytes(stored.csr()) as i64;
        let mut map = self.inner.lock();
        let prev = map.insert(name, Arc::clone(&stored));
        if prev.is_none() {
            STORE_REGISTRATIONS.add(1);
        }
        let prev_bytes = prev.map_or(0, |p| spgemm_dist::csr_bytes(p.csr()) as i64);
        STORE_BYTES.add(bytes - prev_bytes);
        drop(map);
        stored
    }

    /// The current registration of `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<StoredMatrix>> {
        self.inner.lock().get(name).cloned()
    }

    /// Remove `name`; returns whether it was present. In-flight jobs
    /// holding the matrix are unaffected.
    pub fn remove(&self, name: &str) -> bool {
        match self.inner.lock().remove(name) {
            Some(prev) => {
                STORE_BYTES.sub(spgemm_dist::csr_bytes(prev.csr()) as i64);
                STORE_REGISTRATIONS.sub(1);
                true
            }
            None => false,
        }
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered names, unordered.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistration_bumps_version_and_keeps_snapshots() {
        let store = MatrixStore::new();
        let first = store.insert("m", Csr::<f64>::identity(3));
        let second = store.insert("m", Csr::<f64>::identity(5));
        assert!(second.version() > first.version());
        assert_eq!(first.csr().nrows(), 3, "snapshot unaffected by replace");
        assert_eq!(store.get("m").unwrap().csr().nrows(), 5);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fingerprint_matches_csr_method() {
        let store = MatrixStore::new();
        let m = Csr::<f64>::identity(7);
        let fp = m.structure_fingerprint();
        let stored = store.insert("id", m);
        assert_eq!(stored.fingerprint(), fp);
    }

    #[test]
    fn remove_and_names() {
        let store = MatrixStore::new();
        store.insert("x", Csr::<f64>::identity(2));
        store.insert("y", Csr::<f64>::identity(2));
        let mut names = store.names();
        names.sort();
        assert_eq!(names, ["x", "y"]);
        assert!(store.remove("x"));
        assert!(!store.remove("x"));
        assert_eq!(store.len(), 1);
    }
}
