//! The bounded, prioritized submission queue.
//!
//! One `Mutex<Inner>` + `Condvar` protect three FIFO lanes (one per
//! [`Priority`] level). `try_push` never blocks — a full queue is the
//! backpressure signal ([`ServeError::Overloaded`]) — while workers
//! block in [`JobQueue::pop_batch`] until work arrives or the queue is
//! closed and drained.
//!
//! Popping is where request **batching** happens: the head job is
//! taken from the highest non-empty lane, then every queued job with
//! the *same plan key* (same operand structures and options) is pulled
//! out with it, up to the batch cap. The worker executes the whole
//! batch under one plan, so all but the first job skip the symbolic
//! phase even when the plan cache is cold. Batch-mates ride along at
//! the head job's scheduling slot — coalescing trades a little
//! priority strictness for symbolic-phase reuse, the standard batching
//! bargain.

use crate::error::ServeError;
use crate::job::{JobCore, Priority};
use crate::plan_cache::PlanKey;
use crate::store::StoredMatrix;
use parking_lot::{Condvar, Mutex};
use spgemm::expr::ExprSpec;
use spgemm::Algorithm;
use std::collections::VecDeque;
use std::sync::Arc;

/// What a batch coalesces on: jobs with equal keys execute together
/// under one plan (products) or share one evaluation (identical
/// expression jobs over identical snapshots).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BatchKey {
    /// Same operand structures + kernel options.
    Product(PlanKey),
    /// Same DAG + same input snapshots + same kernel (the root node's
    /// value fingerprint): byte-identical results by construction.
    Expr(u64),
}

/// A resolved expression job: the spec, the captured input snapshots,
/// and the per-node value fingerprints (leaf = registration version)
/// the subexpression cache keys on.
pub(crate) struct ExprJob {
    pub(crate) spec: ExprSpec,
    pub(crate) inputs: Vec<Arc<StoredMatrix>>,
    pub(crate) algo: Algorithm,
    pub(crate) node_fps: Arc<Vec<u64>>,
}

/// What the worker executes for one job.
pub(crate) enum JobPayload {
    /// Plain `C = A · B` over resolved snapshots.
    Product {
        a: Arc<StoredMatrix>,
        b: Arc<StoredMatrix>,
        key: PlanKey,
    },
    /// A whole expression DAG.
    Expr(ExprJob),
}

/// A job as it sits in the queue: resolved operands plus shared state.
pub(crate) struct QueuedJob {
    pub(crate) core: Arc<JobCore>,
    pub(crate) key: BatchKey,
    pub(crate) payload: JobPayload,
}

struct Inner {
    lanes: [VecDeque<QueuedJob>; Priority::COUNT],
    len: usize,
    closed: bool,
}

/// Per-lane depth gauges, highest priority first — the same order as
/// [`Priority::lane`]. Published by [`publish_lane_gauges`] from
/// under the queue lock, so the gauge levels and
/// [`JobQueue::lane_depths`] always come from the same consistent
/// read of [`Inner`] (the dedup contract the metrics tests assert).
static LANE_DEPTH_GAUGES: [spgemm_obs::GaugeSite; Priority::COUNT] = [
    spgemm_obs::GaugeSite::new("serve", "serve.queue_depth.high"),
    spgemm_obs::GaugeSite::new("serve", "serve.queue_depth.normal"),
    spgemm_obs::GaugeSite::new("serve", "serve.queue_depth.low"),
];

/// Read the lane depths and mirror them into the per-lane gauges.
/// Callers must hold the queue lock (enforced by the `&Inner`).
fn publish_lane_gauges(inner: &Inner) -> [usize; Priority::COUNT] {
    std::array::from_fn(|l| {
        let depth = inner.lanes[l].len();
        LANE_DEPTH_GAUGES[l].set(depth as i64);
        depth
    })
}

pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                lanes: std::array::from_fn(|_| VecDeque::new()),
                len: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue without blocking. Fails with `Overloaded` at capacity
    /// and `ShuttingDown` after [`JobQueue::close`].
    pub(crate) fn try_push(&self, priority: Priority, job: QueuedJob) -> Result<(), ServeError> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(ServeError::ShuttingDown);
        }
        if inner.len >= self.capacity {
            return Err(ServeError::Overloaded {
                capacity: self.capacity,
            });
        }
        inner.lanes[priority.lane()].push_back(job);
        inner.len += 1;
        publish_lane_gauges(&inner);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Take the next batch: the head job of the highest non-empty
    /// lane plus up to `max_batch - 1` queued jobs sharing its plan
    /// key (scanned in priority order). Blocks while the queue is
    /// empty and open; returns an empty vec once it is closed *and*
    /// drained — the worker's signal to exit.
    pub(crate) fn pop_batch(&self, max_batch: usize) -> Vec<QueuedJob> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock();
        loop {
            if inner.len > 0 {
                let mut batch = Vec::new();
                let head = inner
                    .lanes
                    .iter_mut()
                    .find_map(|lane| lane.pop_front())
                    .expect("len > 0 but all lanes empty");
                let key = head.key;
                batch.push(head);
                for lane in &mut inner.lanes {
                    let mut i = 0;
                    while i < lane.len() && batch.len() < max_batch {
                        if lane[i].key == key {
                            batch.push(lane.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                }
                inner.len -= batch.len();
                publish_lane_gauges(&inner);
                return batch;
            }
            if inner.closed {
                return Vec::new();
            }
            self.cv.wait(&mut inner);
        }
    }

    /// Stop accepting; wake every worker so they can drain and exit.
    pub(crate) fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }

    /// Queued (not yet popped) jobs. Cancelled jobs still occupy a
    /// slot until a worker pops and skips them.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().len
    }

    /// Queued jobs per priority lane, highest priority first (the
    /// same order as [`Priority::lane`]). One lock acquisition, so
    /// the lane counts are a consistent snapshot that sums to
    /// [`JobQueue::depth`] at the same instant — and the per-lane
    /// gauges are refreshed from the same locked read, so both
    /// reporting paths agree.
    pub(crate) fn lane_depths(&self) -> [usize; Priority::COUNT] {
        let inner = self.inner.lock();
        publish_lane_gauges(&inner)
    }

    /// The per-lane gauge levels, highest priority first (test probe
    /// for the gauge/snapshot dedup contract).
    #[cfg(test)]
    pub(crate) fn lane_gauge_levels() -> [i64; Priority::COUNT] {
        std::array::from_fn(|l| LANE_DEPTH_GAUGES[l].value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::store::MatrixStore;
    use spgemm::{Algorithm, OutputOrder};
    use spgemm_sparse::Csr;

    /// A queued job over an `n × n` identity; the structure (and so
    /// the plan key) is distinct per `n`.
    fn job(store: &MatrixStore, id: u64, n: usize) -> QueuedJob {
        let name = format!("m{n}");
        let m = store
            .get(&name)
            .unwrap_or_else(|| store.insert(name, Csr::<f64>::identity(n)));
        let key =
            crate::plan_cache::PlanKey::for_product(&m, &m, Algorithm::Hash, OutputOrder::Sorted);
        QueuedJob {
            core: JobCore::new(
                id,
                String::new(),
                Arc::new(Metrics::default()),
                spgemm_obs::TraceCtx::INERT,
            ),
            key: BatchKey::Product(key),
            payload: JobPayload::Product {
                a: Arc::clone(&m),
                b: m,
                key,
            },
        }
    }

    /// The row count of a product job's left operand (test probe).
    fn rows(j: &QueuedJob) -> usize {
        match &j.payload {
            JobPayload::Product { a, .. } => a.csr().nrows(),
            JobPayload::Expr(_) => unreachable!("product jobs only in these tests"),
        }
    }

    #[test]
    fn backpressure_overloaded_exactly_at_capacity() {
        let store = MatrixStore::new();
        let q = JobQueue::new(2);
        q.try_push(Priority::Normal, job(&store, 0, 3)).unwrap();
        q.try_push(Priority::Normal, job(&store, 1, 3)).unwrap();
        match q.try_push(Priority::Normal, job(&store, 2, 3)) {
            Err(ServeError::Overloaded { capacity: 2 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
        // Popping frees a slot.
        let batch = q.pop_batch(1);
        assert_eq!(batch.len(), 1);
        q.try_push(Priority::Normal, job(&store, 3, 3)).unwrap();
    }

    #[test]
    fn priority_order_then_fifo_within_level() {
        let store = MatrixStore::new();
        let q = JobQueue::new(16);
        // Distinct structures so batching can't merge them.
        q.try_push(Priority::Low, job(&store, 0, 2)).unwrap();
        q.try_push(Priority::Normal, job(&store, 1, 3)).unwrap();
        q.try_push(Priority::High, job(&store, 2, 4)).unwrap();
        q.try_push(Priority::High, job(&store, 3, 5)).unwrap();
        q.try_push(Priority::Normal, job(&store, 4, 6)).unwrap();
        let order: Vec<usize> = (0..5).map(|_| rows(&q.pop_batch(1)[0])).collect();
        assert_eq!(order, [4, 5, 3, 6, 2], "high first, FIFO within level");
    }

    #[test]
    fn pop_batches_same_key_across_lanes() {
        let store = MatrixStore::new();
        let q = JobQueue::new(16);
        q.try_push(Priority::Normal, job(&store, 0, 4)).unwrap();
        q.try_push(Priority::Normal, job(&store, 1, 9)).unwrap();
        q.try_push(Priority::Low, job(&store, 2, 4)).unwrap();
        q.try_push(Priority::Normal, job(&store, 3, 4)).unwrap();
        let batch = q.pop_batch(8);
        assert_eq!(batch.len(), 3, "all three n=4 jobs coalesce");
        assert!(batch.iter().all(|j| rows(j) == 4));
        assert_eq!(q.depth(), 1);
        assert_eq!(rows(&q.pop_batch(8)[0]), 9);
    }

    #[test]
    fn batch_cap_respected() {
        let store = MatrixStore::new();
        let q = JobQueue::new(16);
        for i in 0..5 {
            q.try_push(Priority::Normal, job(&store, i, 4)).unwrap();
        }
        assert_eq!(q.pop_batch(3).len(), 3);
        assert_eq!(q.pop_batch(3).len(), 2);
    }

    #[test]
    fn lane_depths_track_each_priority() {
        let store = MatrixStore::new();
        let q = JobQueue::new(16);
        assert_eq!(q.lane_depths(), [0, 0, 0]);
        q.try_push(Priority::Low, job(&store, 0, 2)).unwrap();
        q.try_push(Priority::Normal, job(&store, 1, 3)).unwrap();
        q.try_push(Priority::Normal, job(&store, 2, 4)).unwrap();
        q.try_push(Priority::High, job(&store, 3, 5)).unwrap();
        let lanes = q.lane_depths();
        assert_eq!(lanes, [1, 2, 1], "high, normal, low");
        assert_eq!(lanes.iter().sum::<usize>(), q.depth());
        // Popping the high-priority head drains its lane first.
        q.pop_batch(1);
        assert_eq!(q.lane_depths(), [0, 2, 1]);
    }

    #[test]
    fn lane_gauges_agree_with_lane_depths() {
        spgemm_obs::enable_with_capacity(0);
        let store = MatrixStore::new();
        let q = JobQueue::new(16);
        q.try_push(Priority::Low, job(&store, 0, 2)).unwrap();
        q.try_push(Priority::High, job(&store, 1, 3)).unwrap();
        q.try_push(Priority::High, job(&store, 2, 4)).unwrap();
        q.pop_batch(1);
        // Both read paths come from one locked read of `Inner`; the
        // retry only absorbs another test's queue publishing to the
        // shared gauges between our read and the assertion.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let depths = q.lane_depths();
            let gauges = JobQueue::lane_gauge_levels();
            if std::array::from_fn::<i64, { Priority::COUNT }, _>(|l| depths[l] as i64) == gauges {
                assert_eq!(depths, [1, 0, 1]);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "lane gauges {gauges:?} never converged to depths {depths:?}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn close_rejects_new_work_and_drains_old() {
        let store = MatrixStore::new();
        let q = JobQueue::new(8);
        q.try_push(Priority::Normal, job(&store, 0, 3)).unwrap();
        q.close();
        assert!(matches!(
            q.try_push(Priority::Normal, job(&store, 1, 3)),
            Err(ServeError::ShuttingDown)
        ));
        assert_eq!(q.pop_batch(4).len(), 1, "accepted work still drains");
        assert!(q.pop_batch(4).is_empty(), "then signals exit");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_batch(1).len());
        std::thread::sleep(std::time::Duration::from_millis(20));
        let store = MatrixStore::new();
        q.try_push(Priority::Normal, job(&store, 0, 3)).unwrap();
        assert_eq!(t.join().unwrap(), 1);
    }
}
