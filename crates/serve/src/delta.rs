//! Streaming row updates: the serving layer's bridge to the
//! incremental machinery in `spgemm::delta`.
//!
//! [`ServeEngine::try_submit_row_update`] edits a registered matrix a
//! few rows at a time instead of re-registering it wholesale. The
//! store still gets a brand-new immutable version (snapshot semantics
//! for in-flight jobs are untouched), but the engine additionally
//! remembers *what changed*: a [`DeltaTracker`] record per name with
//! the pre-edit version, the post-edit version, and the
//! [`DirtyRows`] the patch produced. Consecutive updates to one name
//! compose (dirty sets union, the window stretches back to the oldest
//! un-consumed version), so the tracker stays one bounded record per
//! name no matter how fast edits arrive.
//!
//! Expression evaluation consumes those records for **patch-in-place**
//! of the cross-tenant subexpression cache: a `Multiply`-of-inputs
//! node whose fingerprint misses because an operand was row-updated
//! can recover the *old* version's cached product, recompute only the
//! invalidated output rows (`dirty(A) ∪ {i : A[i] ∩ dirty(B) ≠ ∅}`)
//! with [`spgemm::delta::recompute_product_rows`], and re-cache the
//! result under the new fingerprint — byte-for-byte what a full
//! evaluation would have produced. Full re-registration (or any
//! version the tracker no longer covers) simply misses and
//! recomputes: divergence invalidates, it never corrupts.
//!
//! [`ServeEngine::try_submit_row_update`]: crate::ServeEngine::try_submit_row_update

use parking_lot::Mutex;
use spgemm::delta::DirtyRows;
use std::collections::HashMap;

/// What [`crate::ServeEngine::try_submit_row_update`] returns: the
/// version transition the patch caused and how many rows it touched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowUpdateReceipt {
    /// Store version the patch was applied against.
    pub old_version: u64,
    /// Store version now registered under the name.
    pub new_version: u64,
    /// Rows of the matrix the patch structurally or numerically
    /// edited (the [`DirtyRows`] count).
    pub rows_dirtied: usize,
}

/// One name's un-consumed edit window: everything that changed between
/// `from_version` (a version whose derived results may still be
/// cached) and `to_version` (the current registration).
#[derive(Clone, Debug)]
pub(crate) struct DeltaRecord {
    pub(crate) from_version: u64,
    pub(crate) to_version: u64,
    pub(crate) dirty: DirtyRows,
}

/// Per-name edit windows, plus the lock that serializes
/// read-modify-write row updates against the store.
#[derive(Default)]
pub(crate) struct DeltaTracker {
    map: Mutex<HashMap<String, DeltaRecord>>,
    /// Held across a whole get → patch → re-insert row update so two
    /// concurrent updates to one store can't both apply against the
    /// same base version and silently drop one patch.
    update_lock: Mutex<()>,
}

impl DeltaTracker {
    /// Serialize a read-modify-write row update (see `update_lock`).
    pub(crate) fn update_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.update_lock.lock()
    }
    /// Record an update `old_version → new_version` of `name` with the
    /// given dirty set, composing with an existing record when it
    /// chains (its `to_version` is exactly `old_version` and the shape
    /// is unchanged). A record that does not chain — the name was
    /// re-registered wholesale in between — is replaced, narrowing the
    /// window to this single step.
    pub(crate) fn record(&self, name: &str, old_version: u64, new_version: u64, dirty: &DirtyRows) {
        let mut map = self.map.lock();
        let rec = match map.remove(name) {
            Some(prev) if prev.to_version == old_version && prev.dirty.nrows() == dirty.nrows() => {
                let mut merged = prev.dirty;
                merged.union_with(dirty);
                DeltaRecord {
                    from_version: prev.from_version,
                    to_version: new_version,
                    dirty: merged,
                }
            }
            _ => DeltaRecord {
                from_version: old_version,
                to_version: new_version,
                dirty: dirty.clone(),
            },
        };
        map.insert(name.to_string(), rec);
    }

    /// The edit window ending at exactly `version` of `name`, if the
    /// tracker holds one. `None` means no patch-in-place is possible
    /// for results derived from older versions of this name.
    pub(crate) fn applicable(&self, name: &str, version: u64) -> Option<DeltaRecord> {
        let map = self.map.lock();
        map.get(name)
            .filter(|rec| rec.to_version == version)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_updates_compose_their_windows() {
        let t = DeltaTracker::default();
        t.record("m", 0, 1, &DirtyRows::from_rows(8, [2]));
        t.record("m", 1, 2, &DirtyRows::from_rows(8, [5]));
        let rec = t.applicable("m", 2).expect("window covers v2");
        assert_eq!(rec.from_version, 0);
        assert_eq!(rec.dirty.iter().collect::<Vec<_>>(), vec![2, 5]);
        assert!(t.applicable("m", 1).is_none(), "stale version misses");
    }

    #[test]
    fn non_chaining_update_resets_the_window() {
        let t = DeltaTracker::default();
        t.record("m", 0, 1, &DirtyRows::from_rows(8, [2]));
        // A wholesale re-registration happened: versions skip.
        t.record("m", 5, 6, &DirtyRows::from_rows(8, [7]));
        let rec = t.applicable("m", 6).expect("new single-step window");
        assert_eq!(rec.from_version, 5);
        assert_eq!(rec.dirty.iter().collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn shape_change_resets_instead_of_unioning() {
        let t = DeltaTracker::default();
        t.record("m", 0, 1, &DirtyRows::from_rows(8, [2]));
        t.record("m", 1, 2, &DirtyRows::from_rows(16, [9]));
        let rec = t.applicable("m", 2).expect("replaced record");
        assert_eq!(rec.from_version, 1);
        assert_eq!(rec.dirty.nrows(), 16);
    }
}
