//! The serving engine: worker threads draining the queue through the
//! shared plan cache.

use crate::delta::{DeltaTracker, RowUpdateReceipt};
use crate::error::ServeError;
use crate::expr_results::ExprResultCache;
use crate::job::{ExprRequest, JobCore, JobHandle, ProductRequest};
use crate::metrics::{Metrics, MetricsSnapshot, SloPolicy};
use crate::plan_cache::{PlanKey, SharedPlanCache, S};
use crate::queue::{BatchKey, ExprJob, JobPayload, JobQueue, QueuedJob};
use crate::store::MatrixStore;
use spgemm::delta::{recompute_product_rows, DirtyRows, RowPatch};
use spgemm::expr::{fnv64, ExprOp};
use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_dist::{DistConfig, DistError, GridSpec, ShardRuntime};
use spgemm_obs as obs;
use spgemm_par::{panic_text, Pool};
use spgemm_sparse::{ops, stats, Csr, SparseError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue (each executes one batch at a
    /// time). Clamped to ≥ 1.
    pub workers: usize,
    /// Width of each worker's execution [`Pool`]. All workers use the
    /// same width so cached plans are interchangeable between them.
    pub threads_per_worker: usize,
    /// Submission queue capacity; `try_submit` returns
    /// [`ServeError::Overloaded`] beyond it.
    pub queue_capacity: usize,
    /// Most jobs one worker coalesces under a single plan per pop.
    pub max_batch: usize,
    /// Shared plan cache budget in **keys** (distinct operand
    /// structures × options); LRU beyond it. Each hot key retains up
    /// to one plan *instance* per worker that demanded it
    /// concurrently, so worst-case retained plans are
    /// `plan_cache_plans × workers`. **0 disables the cache**, making
    /// every job a cold one-shot multiply (the baseline the
    /// `spgemm-serve --compare` bench measures against).
    pub plan_cache_plans: usize,
    /// Install this host's calibrated tuning profile for
    /// `threads_per_worker` workers at startup (nearest calibrated
    /// thread count when the exact one is missing), so `Auto` requests
    /// resolve through measured data.
    ///
    /// The installed selector is **process-global**
    /// (`spgemm::recipe`'s auto hook): it also affects `Auto`
    /// resolution outside this engine, the last installer wins, and
    /// dropping the engine does not uninstall it. Leave this off when
    /// the process manages the hook itself.
    pub use_tuned_profile: bool,
    /// Route oversized products to a shared sharded backend
    /// (`spgemm_dist::ShardRuntime`) instead of the monolithic plan
    /// path. `None` (the default) disables routing. Expression jobs
    /// route their `Multiply` *nodes* through the same thresholds.
    pub dist: Option<DistRouting>,
    /// Budget (in entries) of the cross-tenant **subexpression result
    /// cache** for expression jobs: every evaluated DAG node is cached
    /// under its value fingerprint (op lineage + input registration
    /// versions), so pipelines sharing a subexpression over the same
    /// stored matrices — across tenants and workers — reuse the
    /// computed intermediate instead of recomputing it. LRU beyond the
    /// budget; **0 disables** result sharing (plan-cache sharing still
    /// applies per node).
    pub expr_result_entries: usize,
    /// Per-tenant latency objectives. Jobs of a tenant with a target
    /// are classified good/bad on completion and surfaced as
    /// [`crate::TenantSlo`] rows (error-budget burn rate included) in
    /// [`MetricsSnapshot::slo`]. The default policy tracks nothing.
    pub slo: SloPolicy,
}

/// When and how the engine hands a job to the sharded backend.
///
/// One [`ShardRuntime`] is spawned at engine startup and **shared by
/// all workers**; a routed job occupies the whole shard fleet, so
/// oversized products serialize there (by design — they are the jobs
/// a single workspace could not serve well). The routed job executes
/// under the backend's own kernel policy; the request's `algo` is
/// treated as advisory, like `Auto`, and the result honours either
/// output-order contract (the sharded merge always emits sorted
/// rows). Shard-fleet infrastructure failures are not surfaced to the
/// job: the worker falls back to its monolithic path and the product
/// still completes.
#[derive(Clone, Copy, Debug)]
pub struct DistRouting {
    /// Shard grid for the shared runtime.
    pub grid: GridSpec,
    /// Pool width of each shard.
    pub threads_per_shard: usize,
    /// Route when `nnz(A) + nnz(B)` reaches this.
    pub min_operand_nnz: usize,
    /// Also route when the product's estimated flop reaches this
    /// (`None` disables the flop test). Checked only when the nnz
    /// test fails; costs one `O(nnz(A))` pass per routed decision.
    pub min_flop: Option<u64>,
}

impl Default for DistRouting {
    fn default() -> Self {
        DistRouting {
            grid: GridSpec::new(2, 1),
            threads_per_shard: 1,
            min_operand_nnz: 1 << 22,
            min_flop: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            threads_per_worker: 1,
            queue_capacity: 1024,
            max_batch: 16,
            plan_cache_plans: 64,
            use_tuned_profile: false,
            dist: None,
            expr_result_entries: 128,
            slo: SloPolicy::default(),
        }
    }
}

struct EngineShared {
    store: MatrixStore,
    queue: JobQueue,
    cache: SharedPlanCache,
    expr_results: ExprResultCache,
    metrics: Arc<Metrics>,
    /// Per-name edit windows behind `try_submit_row_update`; also the
    /// lock serializing its read-modify-write against the store.
    deltas: DeltaTracker,
    next_job: AtomicU64,
    max_batch: usize,
    started: Instant,
    /// The sharded backend plus its routing thresholds, when enabled.
    dist: Option<(ShardRuntime, DistRouting)>,
}

/// The in-process SpGEMM service: register matrices, submit products,
/// hold [`JobHandle`]s.
///
/// ```
/// use spgemm_serve::{ProductRequest, ServeConfig, ServeEngine};
/// use spgemm_sparse::Csr;
///
/// let engine = ServeEngine::new(ServeConfig::default());
/// engine.store().insert("a", Csr::<f64>::identity(16));
/// let job = engine.try_submit(ProductRequest::new("a", "a")).unwrap();
/// let c = job.wait().unwrap();
/// assert_eq!(c.nnz(), 16);
/// let m = engine.shutdown();
/// assert_eq!(m.completed, 1);
/// ```
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    tuned_profile_threads: Option<usize>,
}

impl ServeEngine {
    /// Start the engine: spawns `cfg.workers` worker threads, each
    /// owning an execution pool of `cfg.threads_per_worker` threads.
    pub fn new(cfg: ServeConfig) -> Self {
        let tuned_profile_threads = if cfg.use_tuned_profile {
            spgemm_tune::init_from_saved_at(cfg.threads_per_worker.max(1))
        } else {
            None
        };
        let dist = cfg.dist.map(|routing| {
            let runtime = ShardRuntime::new(DistConfig {
                grid: routing.grid,
                threads_per_shard: routing.threads_per_shard.max(1),
                ..DistConfig::default()
            });
            (runtime, routing)
        });
        let shared = Arc::new(EngineShared {
            store: MatrixStore::new(),
            queue: JobQueue::new(cfg.queue_capacity),
            cache: SharedPlanCache::new(cfg.plan_cache_plans),
            expr_results: ExprResultCache::new(cfg.expr_result_entries),
            metrics: Arc::new(Metrics::with_slo(cfg.slo.clone())),
            deltas: DeltaTracker::default(),
            next_job: AtomicU64::new(0),
            max_batch: cfg.max_batch.max(1),
            started: Instant::now(),
            dist,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let width = cfg.threads_per_worker.max(1);
                std::thread::Builder::new()
                    .name(format!("spgemm-serve-{i}"))
                    .spawn(move || {
                        let pool = Pool::new(width);
                        worker_loop(&shared, &pool);
                    })
                    .expect("failed to spawn serve worker")
            })
            .collect();
        ServeEngine {
            shared,
            workers,
            tuned_profile_threads,
        }
    }

    /// The matrix registry.
    pub fn store(&self) -> &MatrixStore {
        &self.shared.store
    }

    /// Apply a row-granular edit to the registered matrix `name`
    /// without blocking on the job queue: the patched matrix is
    /// registered as a new immutable version (in-flight jobs keep
    /// their snapshots — the usual bounded-staleness contract), and
    /// the engine records *which rows changed* so expression jobs
    /// submitted against the new version can **patch** previous
    /// versions' cached products in place instead of recomputing them
    /// (see [`MetricsSnapshot::expr_results_patched`]).
    ///
    /// Errors mirror the patch contract of
    /// [`spgemm_sparse::Csr::apply_patch`]: an unknown name is
    /// [`ServeError::UnknownMatrix`], out-of-bounds coordinates and
    /// updates of absent entries surface as [`ServeError::Sparse`] and
    /// leave the registration untouched. Concurrent updates to one
    /// engine serialize; each sees the previous one's result.
    ///
    /// ```
    /// use spgemm::delta::RowPatch;
    /// use spgemm_serve::{ServeConfig, ServeEngine};
    /// use spgemm_sparse::Csr;
    ///
    /// let engine = ServeEngine::new(ServeConfig::default());
    /// engine.store().insert("g", Csr::<f64>::identity(8));
    /// let mut patch = RowPatch::new();
    /// patch.insert(2, 5, 1.0).delete(3, 3);
    /// let receipt = engine.try_submit_row_update("g", &patch).unwrap();
    /// assert_eq!(receipt.rows_dirtied, 2);
    /// assert!(receipt.new_version > receipt.old_version);
    /// let m = engine.shutdown();
    /// assert_eq!(m.row_updates, 1);
    /// assert_eq!(m.rows_dirtied, 2);
    /// ```
    pub fn try_submit_row_update(
        &self,
        name: &str,
        patch: &RowPatch<f64>,
    ) -> Result<RowUpdateReceipt, ServeError> {
        // Row updates run synchronously on the caller's thread, so
        // their trace opens and finishes right here (no job core).
        let ctx = obs::TraceCtx::root();
        let started = Instant::now();
        let result = {
            let _scope = obs::ctx_scope(ctx);
            let _g = obs::span!("serve", "serve.row_update");
            self.row_update_inner(name, patch)
        };
        let total_ns = started.elapsed().as_nanos() as u64;
        obs::finish_request(ctx, "(row-update)", total_ns, total_ns);
        result
    }

    fn row_update_inner(
        &self,
        name: &str,
        patch: &RowPatch<f64>,
    ) -> Result<RowUpdateReceipt, ServeError> {
        let shared = &self.shared;
        let _g = shared.deltas.update_guard();
        let cur = shared
            .store
            .get(name)
            .ok_or_else(|| ServeError::UnknownMatrix { name: name.into() })?;
        let (patched, dirty) = cur.csr().apply_patch(patch).map_err(ServeError::Sparse)?;
        let stored = shared.store.insert(name, patched);
        shared
            .deltas
            .record(name, cur.version(), stored.version(), &dirty);
        shared.metrics.row_updates.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .rows_dirtied
            .fetch_add(dirty.count() as u64, Ordering::Relaxed);
        Ok(RowUpdateReceipt {
            old_version: cur.version(),
            new_version: stored.version(),
            rows_dirtied: dirty.count(),
        })
    }

    /// Submit a product without blocking. A full queue is reported as
    /// [`ServeError::Overloaded`] — the caller sheds or retries; the
    /// engine never blocks a submitter.
    pub fn try_submit(&self, req: ProductRequest) -> Result<JobHandle, ServeError> {
        let result = self.submit_inner(&req);
        match &result {
            Ok(_) => self.shared.metrics.accepted.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn submit_inner(&self, req: &ProductRequest) -> Result<JobHandle, ServeError> {
        let a = self
            .shared
            .store
            .get(&req.a)
            .ok_or_else(|| ServeError::UnknownMatrix {
                name: req.a.clone(),
            })?;
        let b = self
            .shared
            .store
            .get(&req.b)
            .ok_or_else(|| ServeError::UnknownMatrix {
                name: req.b.clone(),
            })?;
        if a.csr().ncols() != b.csr().nrows() {
            return Err(ServeError::Sparse(SparseError::ShapeMismatch {
                left: a.csr().shape(),
                right: b.csr().shape(),
                op: "serve submit",
            }));
        }
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        // The request's trace opens here and travels with the core.
        // The submit span must close *before* the push: once the job
        // is visible to a worker the trace can finish at any moment,
        // and spans recorded after that are dropped.
        let ctx = obs::TraceCtx::root();
        let (core, job) = {
            let _scope = obs::ctx_scope(ctx);
            let _g = obs::span!("serve", "serve.submit");
            let core = JobCore::new(
                id,
                req.tenant.clone(),
                Arc::clone(&self.shared.metrics),
                ctx,
            );
            let key = PlanKey::for_product(&a, &b, req.algo, req.order);
            let job = QueuedJob {
                core: Arc::clone(&core),
                key: BatchKey::Product(key),
                payload: JobPayload::Product { a, b, key },
            };
            (core, job)
        };
        if let Err(e) = self.shared.queue.try_push(req.priority, job) {
            core.finish_trace(); // rejected: the trace ends at the queue
            return Err(e);
        }
        Ok(JobHandle::new(core))
    }

    /// Submit a whole expression pipeline without blocking. Same
    /// backpressure contract as [`ServeEngine::try_submit`]; the
    /// result delivered to the handle is the root node's value.
    ///
    /// Rejected up front: unknown input names, an input count that
    /// does not match the graph's slots, unsorted inputs, and graphs
    /// using vector input slots (unsupported in the serving layer).
    pub fn try_submit_expr(&self, req: ExprRequest) -> Result<JobHandle, ServeError> {
        let result = self.submit_expr_inner(&req);
        match &result {
            Ok(_) => self.shared.metrics.accepted.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn submit_expr_inner(&self, req: &ExprRequest) -> Result<JobHandle, ServeError> {
        let graph = &req.spec.graph;
        if graph.num_vec_inputs() != 0 {
            return Err(ServeError::Sparse(SparseError::Unsupported {
                what: "expression graphs with vector input slots; \
                       bake scaling factors into Map nodes or pre-scaled matrices"
                    .into(),
            }));
        }
        if req.inputs.len() != graph.num_inputs() {
            return Err(ServeError::Sparse(SparseError::PlanMismatch {
                detail: format!(
                    "expression graph declares {} input slots; request names {}",
                    graph.num_inputs(),
                    req.inputs.len()
                ),
            }));
        }
        let mut inputs = Vec::with_capacity(req.inputs.len());
        for name in &req.inputs {
            let m = self
                .shared
                .store
                .get(name)
                .ok_or_else(|| ServeError::UnknownMatrix { name: name.clone() })?;
            if !m.csr().is_sorted() {
                return Err(ServeError::Sparse(SparseError::Unsorted {
                    op: "expr submit",
                }));
            }
            inputs.push(m);
        }
        // Value-identity fingerprints: leaves are registration
        // versions (snapshots are immutable), so equal node
        // fingerprints mean equal results across tenants.
        let node_fps =
            Arc::new(graph.node_fingerprints(|slot| inputs[slot].version(), req.algo as u64));
        let batch_fp = fnv64(&[node_fps[req.spec.root.index()], req.algo as u64]);
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        // Same ordering constraint as `submit_inner`: close the submit
        // span before the job becomes visible to workers.
        let ctx = obs::TraceCtx::root();
        let (core, job) = {
            let _scope = obs::ctx_scope(ctx);
            let _g = obs::span!("serve", "serve.submit");
            let core = JobCore::new(
                id,
                req.tenant.clone(),
                Arc::clone(&self.shared.metrics),
                ctx,
            );
            let job = QueuedJob {
                core: Arc::clone(&core),
                key: BatchKey::Expr(batch_fp),
                payload: JobPayload::Expr(ExprJob {
                    spec: req.spec.clone(),
                    inputs,
                    algo: req.algo,
                    node_fps,
                }),
            };
            (core, job)
        };
        if let Err(e) = self.shared.queue.try_push(req.priority, job) {
            core.finish_trace(); // rejected: the trace ends at the queue
            return Err(e);
        }
        Ok(JobHandle::new(core))
    }

    /// Jobs currently queued (excludes running ones).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The submission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Thread count of the tuning profile installed at startup, if
    /// [`ServeConfig::use_tuned_profile`] found one (may differ from
    /// `threads_per_worker` after the nearest-count fallback).
    pub fn tuned_profile_threads(&self) -> Option<usize> {
        self.tuned_profile_threads
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(
            self.shared.queue.lane_depths(),
            self.shared.cache.stats(),
            self.shared.expr_results.stats(),
            self.shared.started,
        )
    }

    /// Stop accepting, drain every accepted job, join the workers and
    /// return the final counters. Every job accepted before the call
    /// still reaches its handle exactly once.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close_and_join();
        self.metrics()
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Workers currently executing a batch (not blocked in `pop_batch`),
/// summed across every live engine.
static WORKERS_BUSY: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("serve", "serve.workers_busy");

fn worker_loop(shared: &EngineShared, pool: &Pool) {
    loop {
        let batch = shared.queue.pop_batch(shared.max_batch);
        if batch.is_empty() {
            return; // closed and drained
        }
        // Per-job panics are contained inside execute_batch; this
        // outer net catches panics in the batch *bookkeeping* (plan
        // checkout, metrics, ...) so a popped job can never be
        // orphaned with its waiters blocked forever — the worker
        // fails whatever is still unresolved and keeps serving.
        let cores: Vec<_> = batch.iter().map(|j| Arc::clone(&j.core)).collect();
        WORKERS_BUSY.add(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| execute_batch(shared, pool, batch)));
        WORKERS_BUSY.sub(1);
        if let Err(payload) = outcome {
            let detail = panic_text(payload);
            for core in &cores {
                core.fail_if_unresolved(ServeError::Internal {
                    detail: detail.clone(),
                });
                // the unwind closed every span guard on this thread,
                // so the traces are safe to finish here
                core.finish_trace();
            }
        }
    }
}

/// Execute one same-key batch: skip jobs cancelled while queued, then
/// dispatch on the payload kind — products run numeric-only under the
/// cached plan (building it once on miss) or as cold one-shot
/// multiplies when the cache is disabled; expression batches evaluate
/// their (identical) DAG once and fan the shared result out.
fn execute_batch(shared: &EngineShared, pool: &Pool, batch: Vec<QueuedJob>) {
    let runnable: Vec<QueuedJob> = batch.into_iter().filter(|j| j.core.start()).collect();
    let Some(first) = runnable.first() else {
        return; // whole batch was cancelled while queued
    };
    shared.metrics.note_batch(runnable.len());
    // The batch leader's trace hosts the worker-side spans; every
    // batch-mate's trace gets a flow link into it at batch formation,
    // so a deduplicated follower still explains where its time went.
    let leader_ctx = first.core.trace_ctx();
    {
        let _scope = obs::ctx_scope(leader_ctx);
        let _g = obs::span!("serve", "serve.batch");
        for j in &runnable[1..] {
            j.core
                .trace_ctx()
                .link_to(&leader_ctx, "serve.batch.member");
        }
        match &first.payload {
            JobPayload::Product { .. } => execute_product_batch(shared, pool, &runnable),
            JobPayload::Expr(job) => {
                // Same batch key = same DAG over the same snapshots
                // with the same kernel: one evaluation serves the
                // whole batch.
                let result = run_expr(shared, job, pool);
                shared
                    .metrics
                    .expr_jobs
                    .fetch_add(runnable.len() as u64, Ordering::Relaxed);
                for j in &runnable {
                    j.core.complete(result.clone());
                }
            }
        }
    }
    // every span working on the batch is closed: the traces can
    // finish (idempotent; the cores' Drop would backstop it anyway)
    for j in &runnable {
        j.core.finish_trace();
    }
}

/// The operands and plan key of a product job (batch invariant: every
/// job in a product batch is a product).
fn product_parts(job: &QueuedJob) -> (&Csr<f64>, &Csr<f64>, PlanKey) {
    match &job.payload {
        JobPayload::Product { a, b, key } => (a.csr(), b.csr(), *key),
        JobPayload::Expr(_) => unreachable!("product batch holds a non-product job"),
    }
}

fn execute_product_batch(shared: &EngineShared, pool: &Pool, runnable: &[QueuedJob]) {
    let (first_a, first_b, key) = product_parts(&runnable[0]);
    let n = runnable.len() as u64;
    // Oversized products leave the plan path for the shared shard
    // fleet; the whole batch shares one structure, so one decision
    // covers it.
    if let Some((runtime, routing)) = &shared.dist {
        if routes_to_dist(first_a, first_b, routing) {
            for job in runnable {
                let (a, b, _) = product_parts(job);
                // An infrastructure failure in the shard fleet
                // (`ShardFailed`) is not the job's fault: fall back to
                // this worker's monolithic path so the product still
                // completes, just without sharding — and without
                // counting as dist-served. Sparse errors (shapes,
                // contracts) would fail either way and are reported
                // as-is.
                let result = match run_dist(runtime, a, b) {
                    Err(ServeError::Internal { .. }) => run_cold(a, b, key, pool),
                    other => {
                        shared.metrics.dist_routed.fetch_add(1, Ordering::Relaxed);
                        other
                    }
                };
                job.core.complete(result);
            }
            return;
        }
    }
    if !shared.cache.enabled() {
        for job in runnable {
            let (a, b, _) = product_parts(job);
            job.core.complete(run_cold(a, b, key, pool));
        }
        return;
    }
    // Check a plan instance out of the shared slot so same-key batches
    // on other workers keep executing in parallel on their own
    // instances; no slot lock is held during execution.
    let slot = shared.cache.slot(key);
    let plan = match slot.checkout(pool.nthreads()) {
        Some(plan) => {
            shared.cache.note_hits(n);
            plan
        }
        None => match build_plan(first_a, first_b, key, pool) {
            Ok(plan) => {
                // The builder pays the symbolic phase; its batch-mates
                // already reuse it numeric-only.
                shared.cache.note_misses(1);
                shared.cache.note_hits(n - 1);
                plan
            }
            Err(e) => {
                shared.cache.note_misses(n);
                for job in runnable {
                    job.core.complete(Err(e.clone()));
                }
                return;
            }
        },
    };
    // Execute everything first and return the instance *before*
    // delivering results: a waiter woken by its result may submit the
    // next same-key job immediately, and it should find the instance
    // already pooled.
    let results: Vec<_> = runnable
        .iter()
        .map(|job| {
            let (a, b, _) = product_parts(job);
            run_planned(&plan, a, b, pool)
        })
        .collect();
    slot.checkin(plan);
    for (job, result) in runnable.iter().zip(results) {
        job.core.complete(result);
    }
}

/// Evaluate one expression job node-by-node, panic-contained like
/// every other execution path.
fn run_expr(shared: &EngineShared, job: &ExprJob, pool: &Pool) -> crate::job::JobResult {
    let _g = obs::span!("serve", "serve.expr_eval");
    match catch_unwind(AssertUnwindSafe(|| eval_expr(shared, job, pool))) {
        Ok(result) => result,
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

/// The DAG interpreter: walk the topological order, serving each node
/// from the cross-tenant subexpression cache when possible and
/// computing it otherwise — `Multiply` through the shared plan cache
/// (or the shard fleet past the dist thresholds), element-wise ops
/// through `spgemm_sparse::ops`.
fn eval_expr(
    shared: &EngineShared,
    job: &ExprJob,
    pool: &Pool,
) -> Result<Arc<Csr<f64>>, ServeError> {
    let graph = &job.spec.graph;
    let root = job.spec.root.index();
    let needed = graph.reachable(job.spec.root);
    let mut values: Vec<Option<Arc<Csr<f64>>>> = vec![None; graph.len()];
    // Structure fingerprints of computed intermediates, memoized for
    // plan-cache keys (input leaves reuse the store's fingerprint).
    let mut struct_fps: Vec<Option<u64>> = vec![None; graph.len()];
    for i in 0..graph.len() {
        if !needed[i] {
            continue;
        }
        // Input leaves are snapshots the job already holds: serving
        // them through the result cache would spend LRU slots (and
        // the computed-nodes counter) on matrices the store pins
        // anyway.
        if let ExprOp::Input { slot } = graph.nodes()[i] {
            values[i] = Some(job.inputs[slot].csr_arc());
            continue;
        }
        if let Some(cached) = shared.expr_results.get(job.node_fps[i]) {
            values[i] = Some(cached);
            continue;
        }
        // Before recomputing a multiply of row-updated inputs, try to
        // recover the previous version's cached product and patch only
        // the invalidated rows.
        if let Some(patched) = try_patch_multiply(shared, job, i) {
            shared
                .metrics
                .expr_results_patched
                .fetch_add(1, Ordering::Relaxed);
            shared
                .expr_results
                .insert(job.node_fps[i], Arc::clone(&patched));
            values[i] = Some(patched);
            continue;
        }
        let value_at = |k: usize| -> &Arc<Csr<f64>> {
            values[k].as_ref().expect("operands precede consumers")
        };
        let value: Arc<Csr<f64>> = match graph.nodes()[i] {
            ExprOp::Input { .. } => unreachable!("inputs handled above"),
            ExprOp::Multiply { a, b } => {
                let (ai, bi) = (a.index(), b.index());
                let fp_a = structure_fp(graph, job, &values, &mut struct_fps, ai);
                let fp_b = structure_fp(graph, job, &values, &mut struct_fps, bi);
                let key = PlanKey {
                    fp_a,
                    fp_b,
                    algo: job.algo,
                    order: OutputOrder::Sorted,
                };
                Arc::new(expr_multiply(
                    shared,
                    value_at(ai),
                    value_at(bi),
                    key,
                    pool,
                )?)
            }
            ExprOp::Transpose { a } => Arc::new(ops::transpose_in(value_at(a.index()), pool)),
            ExprOp::Add { a, b } => Arc::new(ops::add(value_at(a.index()), value_at(b.index()))?),
            ExprOp::Hadamard { a, b } => {
                Arc::new(ops::hadamard(value_at(a.index()), value_at(b.index()))?)
            }
            ExprOp::ScaleRows { .. } | ExprOp::ScaleCols { .. } => {
                unreachable!("vector-input graphs are rejected at submission")
            }
            ExprOp::Map { a, f } => Arc::new(value_at(a.index()).map(|v| f.apply(v))),
            ExprOp::NormalizeCols { a } => Arc::new(ops::normalize_columns(value_at(a.index()))),
        };
        shared
            .metrics
            .expr_nodes_computed
            .fetch_add(1, Ordering::Relaxed);
        shared
            .expr_results
            .insert(job.node_fps[i], Arc::clone(&value));
        values[i] = Some(value);
    }
    Ok(values[root].take().expect("root is needed"))
}

/// Patch-in-place for one expression node: when node `i` is a
/// `Multiply` of two input leaves, at least one of which was
/// row-updated since a previous evaluation, recover the *previous*
/// version's cached product and recompute only the output rows the
/// edits invalidated (`dirty(A) ∪ {i : A[i] ∩ dirty(B) ≠ ∅}`) via
/// [`recompute_product_rows`]. Returns `None` whenever any
/// precondition fails — the caller then evaluates the node normally,
/// so this path can only save work, never change results.
///
/// Byte-for-byte safety: `recompute_product_rows` reproduces the
/// sorted output of the ascending-`k` accumulator family (Hash,
/// HashVec, SPA, KkHash, IKJ, and RowClass — whose per-class kernels
/// all accumulate in `k`-encounter order and are byte-identical to
/// Hash) exactly, so the patch is gated on those kernels and on the
/// node *not* routing to the shard fleet (whose merge path
/// accumulates in its own order).
fn try_patch_multiply(shared: &EngineShared, job: &ExprJob, node: usize) -> Option<Arc<Csr<f64>>> {
    if !matches!(
        job.algo,
        Algorithm::Hash
            | Algorithm::HashVec
            | Algorithm::Spa
            | Algorithm::KkHash
            | Algorithm::Ikj
            | Algorithm::RowClass
    ) {
        return None;
    }
    let graph = &job.spec.graph;
    let ExprOp::Multiply { a, b } = graph.nodes()[node] else {
        return None;
    };
    let ExprOp::Input { slot: sa } = graph.nodes()[a.index()] else {
        return None;
    };
    let ExprOp::Input { slot: sb } = graph.nodes()[b.index()] else {
        return None;
    };
    let am = job.inputs[sa].csr();
    let bm = job.inputs[sb].csr();
    if let Some((_, routing)) = &shared.dist {
        if routes_to_dist(am, bm, routing) {
            return None;
        }
    }
    // Resolve each operand's edit window once, so the old fingerprint
    // and the dirty sets describe the same version transition even if
    // further updates land concurrently.
    let rec_a = shared
        .deltas
        .applicable(job.inputs[sa].name(), job.inputs[sa].version());
    let rec_b = if sb == sa {
        rec_a.clone()
    } else {
        shared
            .deltas
            .applicable(job.inputs[sb].name(), job.inputs[sb].version())
    };
    if rec_a.is_none() && rec_b.is_none() {
        return None; // nothing upstream changed incrementally
    }
    let old_version = |slot: usize| -> u64 {
        let rec = if slot == sa {
            &rec_a
        } else if slot == sb {
            &rec_b
        } else {
            &None
        };
        rec.as_ref()
            .map(|r| r.from_version)
            .unwrap_or_else(|| job.inputs[slot].version())
    };
    let old_fp = graph.node_fingerprints(old_version, job.algo as u64)[node];
    let old_c = shared.expr_results.peek(old_fp)?;
    if (old_c.nrows(), old_c.ncols()) != (am.nrows(), bm.ncols()) || !old_c.is_sorted() {
        return None; // fingerprint collision or foreign entry: recompute
    }
    let dirty_for = |rec: &Option<crate::delta::DeltaRecord>, nrows: usize| match rec {
        Some(r) if r.dirty.nrows() == nrows => Some(r.dirty.clone()),
        Some(_) => None, // universe drifted from the snapshot: recompute
        None => Some(DirtyRows::new(nrows)),
    };
    let dirty_a = dirty_for(&rec_a, am.nrows())?;
    let dirty_b = dirty_for(&rec_b, bm.nrows())?;
    let mut out = dirty_a;
    for i in 0..am.nrows() {
        if !out.contains(i) && am.row_cols(i).iter().any(|&k| dirty_b.contains(k as usize)) {
            out.insert(i);
        }
    }
    let _g = obs::span!("delta", "delta.serve_patch");
    Some(Arc::new(recompute_product_rows(am, bm, &out, &old_c)))
}

/// Structure fingerprint of node `k`'s value: the store's
/// registration-time fingerprint for input leaves, a memoized
/// `O(nnz)` hash for computed intermediates.
fn structure_fp(
    graph: &spgemm::expr::ExprGraph,
    job: &ExprJob,
    values: &[Option<Arc<Csr<f64>>>],
    memo: &mut [Option<u64>],
    k: usize,
) -> u64 {
    if let ExprOp::Input { slot } = graph.nodes()[k] {
        return job.inputs[slot].fingerprint();
    }
    *memo[k].get_or_insert_with(|| {
        values[k]
            .as_ref()
            .expect("operands precede consumers")
            .structure_fingerprint()
    })
}

/// One `Multiply` node of an expression job: shard fleet past the
/// dist thresholds (monolithic fallback on fleet failure), otherwise
/// the shared plan cache (cold one-shot when caching is disabled).
fn expr_multiply(
    shared: &EngineShared,
    a: &Csr<f64>,
    b: &Csr<f64>,
    key: PlanKey,
    pool: &Pool,
) -> Result<Csr<f64>, ServeError> {
    if let Some((runtime, routing)) = &shared.dist {
        if routes_to_dist(a, b, routing) {
            // Same containment as the product path: a shard-fleet
            // panic or infrastructure failure falls back to the
            // monolithic path below instead of failing the whole
            // expression job.
            match catch_unwind(AssertUnwindSafe(|| runtime.multiply(a, b))) {
                Ok(Ok(c)) => {
                    shared.metrics.dist_routed.fetch_add(1, Ordering::Relaxed);
                    return Ok(c);
                }
                Ok(Err(DistError::Sparse(e))) => return Err(ServeError::Sparse(e)),
                Ok(Err(_)) | Err(_) => {} // fleet failure: monolithic fallback
            }
        }
    }
    if !shared.cache.enabled() {
        return spgemm::multiply_in::<S>(a, b, key.algo, key.order, pool)
            .map_err(ServeError::Sparse);
    }
    let slot = shared.cache.slot(key);
    let plan = match slot.checkout(pool.nthreads()) {
        Some(plan) => {
            shared.cache.note_hits(1);
            plan
        }
        None => {
            shared.cache.note_misses(1);
            SpgemmPlan::<S>::new_in(a, b, key.algo, key.order, pool).map_err(ServeError::Sparse)?
        }
    };
    let result = plan.execute_in(a, b, pool).map_err(ServeError::Sparse);
    slot.checkin(plan);
    result
}

fn build_plan(
    a: &Csr<f64>,
    b: &Csr<f64>,
    key: PlanKey,
    pool: &Pool,
) -> Result<SpgemmPlan<S>, ServeError> {
    let _g = obs::span!("serve", "serve.plan_build");
    match catch_unwind(AssertUnwindSafe(|| {
        SpgemmPlan::<S>::new_in(a, b, key.algo, key.order, pool)
    })) {
        Ok(Ok(plan)) => Ok(plan),
        Ok(Err(e)) => Err(ServeError::Sparse(e)),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

fn run_planned(
    plan: &SpgemmPlan<S>,
    a: &Csr<f64>,
    b: &Csr<f64>,
    pool: &Pool,
) -> crate::job::JobResult {
    match catch_unwind(AssertUnwindSafe(|| plan.execute_in(a, b, pool))) {
        Ok(Ok(c)) => Ok(Arc::new(c)),
        Ok(Err(e)) => Err(ServeError::Sparse(e)),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

/// Whether `(a, b)` crosses the dist thresholds: cheap combined-nnz
/// test first, then the optional `O(nnz(A))` flop estimate.
fn routes_to_dist(a: &Csr<f64>, b: &Csr<f64>, routing: &DistRouting) -> bool {
    if a.nnz() + b.nnz() >= routing.min_operand_nnz {
        return true;
    }
    match routing.min_flop {
        Some(min) => stats::flop(a, b) >= min,
        None => false,
    }
}

fn run_dist(runtime: &ShardRuntime, a: &Csr<f64>, b: &Csr<f64>) -> crate::job::JobResult {
    let _g = obs::span!("serve", "serve.dist_route");
    match catch_unwind(AssertUnwindSafe(|| runtime.multiply(a, b))) {
        Ok(Ok(c)) => Ok(Arc::new(c)),
        Ok(Err(DistError::Sparse(e))) => Err(ServeError::Sparse(e)),
        Ok(Err(e)) => Err(ServeError::Internal {
            detail: e.to_string(),
        }),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

fn run_cold(a: &Csr<f64>, b: &Csr<f64>, key: PlanKey, pool: &Pool) -> crate::job::JobResult {
    match catch_unwind(AssertUnwindSafe(|| {
        spgemm::multiply_in::<S>(a, b, key.algo, key.order, pool)
    })) {
        Ok(Ok(c)) => Ok(Arc::new(c)),
        Ok(Err(e)) => Err(ServeError::Sparse(e)),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}
