//! The serving engine: worker threads draining the queue through the
//! shared plan cache.

use crate::error::ServeError;
use crate::job::{JobCore, JobHandle, ProductRequest};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::plan_cache::{PlanKey, SharedPlanCache, S};
use crate::queue::{JobQueue, QueuedJob};
use crate::store::MatrixStore;
use spgemm::SpgemmPlan;
use spgemm_dist::{DistConfig, DistError, GridSpec, ShardRuntime};
use spgemm_par::{panic_text, Pool};
use spgemm_sparse::{stats, Csr, SparseError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Engine sizing and policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads draining the queue (each executes one batch at a
    /// time). Clamped to ≥ 1.
    pub workers: usize,
    /// Width of each worker's execution [`Pool`]. All workers use the
    /// same width so cached plans are interchangeable between them.
    pub threads_per_worker: usize,
    /// Submission queue capacity; `try_submit` returns
    /// [`ServeError::Overloaded`] beyond it.
    pub queue_capacity: usize,
    /// Most jobs one worker coalesces under a single plan per pop.
    pub max_batch: usize,
    /// Shared plan cache budget in **keys** (distinct operand
    /// structures × options); LRU beyond it. Each hot key retains up
    /// to one plan *instance* per worker that demanded it
    /// concurrently, so worst-case retained plans are
    /// `plan_cache_plans × workers`. **0 disables the cache**, making
    /// every job a cold one-shot multiply (the baseline the
    /// `spgemm-serve --compare` bench measures against).
    pub plan_cache_plans: usize,
    /// Install this host's calibrated tuning profile for
    /// `threads_per_worker` workers at startup (nearest calibrated
    /// thread count when the exact one is missing), so `Auto` requests
    /// resolve through measured data.
    ///
    /// The installed selector is **process-global**
    /// (`spgemm::recipe`'s auto hook): it also affects `Auto`
    /// resolution outside this engine, the last installer wins, and
    /// dropping the engine does not uninstall it. Leave this off when
    /// the process manages the hook itself.
    pub use_tuned_profile: bool,
    /// Route oversized products to a shared sharded backend
    /// (`spgemm_dist::ShardRuntime`) instead of the monolithic plan
    /// path. `None` (the default) disables routing.
    pub dist: Option<DistRouting>,
}

/// When and how the engine hands a job to the sharded backend.
///
/// One [`ShardRuntime`] is spawned at engine startup and **shared by
/// all workers**; a routed job occupies the whole shard fleet, so
/// oversized products serialize there (by design — they are the jobs
/// a single workspace could not serve well). The routed job executes
/// under the backend's own kernel policy; the request's `algo` is
/// treated as advisory, like `Auto`, and the result honours either
/// output-order contract (the sharded merge always emits sorted
/// rows). Shard-fleet infrastructure failures are not surfaced to the
/// job: the worker falls back to its monolithic path and the product
/// still completes.
#[derive(Clone, Copy, Debug)]
pub struct DistRouting {
    /// Shard grid for the shared runtime.
    pub grid: GridSpec,
    /// Pool width of each shard.
    pub threads_per_shard: usize,
    /// Route when `nnz(A) + nnz(B)` reaches this.
    pub min_operand_nnz: usize,
    /// Also route when the product's estimated flop reaches this
    /// (`None` disables the flop test). Checked only when the nnz
    /// test fails; costs one `O(nnz(A))` pass per routed decision.
    pub min_flop: Option<u64>,
}

impl Default for DistRouting {
    fn default() -> Self {
        DistRouting {
            grid: GridSpec::new(2, 1),
            threads_per_shard: 1,
            min_operand_nnz: 1 << 22,
            min_flop: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            threads_per_worker: 1,
            queue_capacity: 1024,
            max_batch: 16,
            plan_cache_plans: 64,
            use_tuned_profile: false,
            dist: None,
        }
    }
}

struct EngineShared {
    store: MatrixStore,
    queue: JobQueue,
    cache: SharedPlanCache,
    metrics: Arc<Metrics>,
    next_job: AtomicU64,
    max_batch: usize,
    started: Instant,
    /// The sharded backend plus its routing thresholds, when enabled.
    dist: Option<(ShardRuntime, DistRouting)>,
}

/// The in-process SpGEMM service: register matrices, submit products,
/// hold [`JobHandle`]s.
///
/// ```
/// use spgemm_serve::{ProductRequest, ServeConfig, ServeEngine};
/// use spgemm_sparse::Csr;
///
/// let engine = ServeEngine::new(ServeConfig::default());
/// engine.store().insert("a", Csr::<f64>::identity(16));
/// let job = engine.try_submit(ProductRequest::new("a", "a")).unwrap();
/// let c = job.wait().unwrap();
/// assert_eq!(c.nnz(), 16);
/// let m = engine.shutdown();
/// assert_eq!(m.completed, 1);
/// ```
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    tuned_profile_threads: Option<usize>,
}

impl ServeEngine {
    /// Start the engine: spawns `cfg.workers` worker threads, each
    /// owning an execution pool of `cfg.threads_per_worker` threads.
    pub fn new(cfg: ServeConfig) -> Self {
        let tuned_profile_threads = if cfg.use_tuned_profile {
            spgemm_tune::init_from_saved_at(cfg.threads_per_worker.max(1))
        } else {
            None
        };
        let dist = cfg.dist.map(|routing| {
            let runtime = ShardRuntime::new(DistConfig {
                grid: routing.grid,
                threads_per_shard: routing.threads_per_shard.max(1),
                ..DistConfig::default()
            });
            (runtime, routing)
        });
        let shared = Arc::new(EngineShared {
            store: MatrixStore::new(),
            queue: JobQueue::new(cfg.queue_capacity),
            cache: SharedPlanCache::new(cfg.plan_cache_plans),
            metrics: Arc::new(Metrics::default()),
            next_job: AtomicU64::new(0),
            max_batch: cfg.max_batch.max(1),
            started: Instant::now(),
            dist,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let width = cfg.threads_per_worker.max(1);
                std::thread::Builder::new()
                    .name(format!("spgemm-serve-{i}"))
                    .spawn(move || {
                        let pool = Pool::new(width);
                        worker_loop(&shared, &pool);
                    })
                    .expect("failed to spawn serve worker")
            })
            .collect();
        ServeEngine {
            shared,
            workers,
            tuned_profile_threads,
        }
    }

    /// The matrix registry.
    pub fn store(&self) -> &MatrixStore {
        &self.shared.store
    }

    /// Submit a product without blocking. A full queue is reported as
    /// [`ServeError::Overloaded`] — the caller sheds or retries; the
    /// engine never blocks a submitter.
    pub fn try_submit(&self, req: ProductRequest) -> Result<JobHandle, ServeError> {
        let result = self.submit_inner(&req);
        match &result {
            Ok(_) => self.shared.metrics.accepted.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn submit_inner(&self, req: &ProductRequest) -> Result<JobHandle, ServeError> {
        let a = self
            .shared
            .store
            .get(&req.a)
            .ok_or_else(|| ServeError::UnknownMatrix {
                name: req.a.clone(),
            })?;
        let b = self
            .shared
            .store
            .get(&req.b)
            .ok_or_else(|| ServeError::UnknownMatrix {
                name: req.b.clone(),
            })?;
        if a.csr().ncols() != b.csr().nrows() {
            return Err(ServeError::Sparse(SparseError::ShapeMismatch {
                left: a.csr().shape(),
                right: b.csr().shape(),
                op: "serve submit",
            }));
        }
        let id = self.shared.next_job.fetch_add(1, Ordering::Relaxed);
        let core = JobCore::new(id, req.tenant.clone(), Arc::clone(&self.shared.metrics));
        let job = QueuedJob {
            core: Arc::clone(&core),
            key: PlanKey::for_product(&a, &b, req.algo, req.order),
            a,
            b,
        };
        self.shared.queue.try_push(req.priority, job)?;
        Ok(JobHandle::new(core))
    }

    /// Jobs currently queued (excludes running ones).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The submission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Thread count of the tuning profile installed at startup, if
    /// [`ServeConfig::use_tuned_profile`] found one (may differ from
    /// `threads_per_worker` after the nearest-count fallback).
    pub fn tuned_profile_threads(&self) -> Option<usize> {
        self.tuned_profile_threads
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(
            self.shared.queue.lane_depths(),
            self.shared.cache.stats(),
            self.shared.started,
        )
    }

    /// Stop accepting, drain every accepted job, join the workers and
    /// return the final counters. Every job accepted before the call
    /// still reaches its handle exactly once.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close_and_join();
        self.metrics()
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(shared: &EngineShared, pool: &Pool) {
    loop {
        let batch = shared.queue.pop_batch(shared.max_batch);
        if batch.is_empty() {
            return; // closed and drained
        }
        // Per-job panics are contained inside execute_batch; this
        // outer net catches panics in the batch *bookkeeping* (plan
        // checkout, metrics, ...) so a popped job can never be
        // orphaned with its waiters blocked forever — the worker
        // fails whatever is still unresolved and keeps serving.
        let cores: Vec<_> = batch.iter().map(|j| Arc::clone(&j.core)).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute_batch(shared, pool, batch)));
        if let Err(payload) = outcome {
            let detail = panic_text(payload);
            for core in &cores {
                core.fail_if_unresolved(ServeError::Internal {
                    detail: detail.clone(),
                });
            }
        }
    }
}

/// Execute one same-key batch: skip jobs cancelled while queued, then
/// run the rest numeric-only under the cached plan (building it once
/// on miss), or as cold one-shot multiplies when the cache is
/// disabled.
fn execute_batch(shared: &EngineShared, pool: &Pool, batch: Vec<QueuedJob>) {
    let runnable: Vec<QueuedJob> = batch.into_iter().filter(|j| j.core.start()).collect();
    let Some(first) = runnable.first() else {
        return; // whole batch was cancelled while queued
    };
    shared.metrics.note_batch(runnable.len());
    let key = first.key;
    let n = runnable.len() as u64;
    // Oversized products leave the plan path for the shared shard
    // fleet; the whole batch shares one structure, so one decision
    // covers it.
    if let Some((runtime, routing)) = &shared.dist {
        if routes_to_dist(first.a.csr(), first.b.csr(), routing) {
            for job in &runnable {
                // An infrastructure failure in the shard fleet
                // (`ShardFailed`) is not the job's fault: fall back to
                // this worker's monolithic path so the product still
                // completes, just without sharding — and without
                // counting as dist-served. Sparse errors (shapes,
                // contracts) would fail either way and are reported
                // as-is.
                let result = match run_dist(runtime, job) {
                    Err(ServeError::Internal { .. }) => run_cold(job, pool),
                    other => {
                        shared.metrics.dist_routed.fetch_add(1, Ordering::Relaxed);
                        other
                    }
                };
                job.core.complete(result);
            }
            return;
        }
    }
    if !shared.cache.enabled() {
        for job in &runnable {
            job.core.complete(run_cold(job, pool));
        }
        return;
    }
    // Check a plan instance out of the shared slot so same-key batches
    // on other workers keep executing in parallel on their own
    // instances; no slot lock is held during execution.
    let slot = shared.cache.slot(key);
    let plan = match slot.checkout(pool.nthreads()) {
        Some(plan) => {
            shared.cache.note_hits(n);
            plan
        }
        None => match build_plan(first.a.csr(), first.b.csr(), key, pool) {
            Ok(plan) => {
                // The builder pays the symbolic phase; its batch-mates
                // already reuse it numeric-only.
                shared.cache.note_misses(1);
                shared.cache.note_hits(n - 1);
                plan
            }
            Err(e) => {
                shared.cache.note_misses(n);
                for job in &runnable {
                    job.core.complete(Err(e.clone()));
                }
                return;
            }
        },
    };
    // Execute everything first and return the instance *before*
    // delivering results: a waiter woken by its result may submit the
    // next same-key job immediately, and it should find the instance
    // already pooled.
    let results: Vec<_> = runnable
        .iter()
        .map(|job| run_planned(&plan, job, pool))
        .collect();
    slot.checkin(plan);
    for (job, result) in runnable.iter().zip(results) {
        job.core.complete(result);
    }
}

fn build_plan(
    a: &Csr<f64>,
    b: &Csr<f64>,
    key: PlanKey,
    pool: &Pool,
) -> Result<SpgemmPlan<S>, ServeError> {
    match catch_unwind(AssertUnwindSafe(|| {
        SpgemmPlan::<S>::new_in(a, b, key.algo, key.order, pool)
    })) {
        Ok(Ok(plan)) => Ok(plan),
        Ok(Err(e)) => Err(ServeError::Sparse(e)),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

fn run_planned(plan: &SpgemmPlan<S>, job: &QueuedJob, pool: &Pool) -> crate::job::JobResult {
    match catch_unwind(AssertUnwindSafe(|| {
        plan.execute_in(job.a.csr(), job.b.csr(), pool)
    })) {
        Ok(Ok(c)) => Ok(Arc::new(c)),
        Ok(Err(e)) => Err(ServeError::Sparse(e)),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

/// Whether `(a, b)` crosses the dist thresholds: cheap combined-nnz
/// test first, then the optional `O(nnz(A))` flop estimate.
fn routes_to_dist(a: &Csr<f64>, b: &Csr<f64>, routing: &DistRouting) -> bool {
    if a.nnz() + b.nnz() >= routing.min_operand_nnz {
        return true;
    }
    match routing.min_flop {
        Some(min) => stats::flop(a, b) >= min,
        None => false,
    }
}

fn run_dist(runtime: &ShardRuntime, job: &QueuedJob) -> crate::job::JobResult {
    match catch_unwind(AssertUnwindSafe(|| {
        runtime.multiply(job.a.csr(), job.b.csr())
    })) {
        Ok(Ok(c)) => Ok(Arc::new(c)),
        Ok(Err(DistError::Sparse(e))) => Err(ServeError::Sparse(e)),
        Ok(Err(e)) => Err(ServeError::Internal {
            detail: e.to_string(),
        }),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}

fn run_cold(job: &QueuedJob, pool: &Pool) -> crate::job::JobResult {
    match catch_unwind(AssertUnwindSafe(|| {
        spgemm::multiply_in::<S>(job.a.csr(), job.b.csr(), job.key.algo, job.key.order, pool)
    })) {
        Ok(Ok(c)) => Ok(Arc::new(c)),
        Ok(Err(e)) => Err(ServeError::Sparse(e)),
        Err(payload) => Err(ServeError::Internal {
            detail: panic_text(payload),
        }),
    }
}
