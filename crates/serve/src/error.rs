//! Error type of the serving layer.

use spgemm_sparse::SparseError;

/// Why a submission was rejected or a job failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The submission queue is full. Open-loop clients should shed the
    /// request (and count it); closed-loop clients may retry after
    /// draining some in-flight work. `try_submit` never blocks — this
    /// variant *is* the backpressure signal.
    Overloaded {
        /// The queue capacity that was hit.
        capacity: usize,
    },
    /// The request named a matrix the store does not hold.
    UnknownMatrix {
        /// The missing name.
        name: String,
    },
    /// The engine is shutting down and no longer accepts submissions.
    /// Jobs accepted *before* shutdown still drain to completion.
    ShuttingDown,
    /// The job was cancelled while still queued.
    Cancelled,
    /// The multiply itself failed (shape mismatch, sortedness
    /// contract, ...).
    Sparse(SparseError),
    /// A worker panicked while executing the job. The panic is
    /// contained: the worker survives and the job reports this error.
    Internal {
        /// Panic payload rendered to text.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::UnknownMatrix { name } => {
                write!(f, "no matrix named {name:?} in the store")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Cancelled => write!(f, "job cancelled while queued"),
            ServeError::Sparse(e) => write!(f, "multiply failed: {e}"),
            ServeError::Internal { detail } => write!(f, "worker panicked: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for ServeError {
    fn from(e: SparseError) -> Self {
        ServeError::Sparse(e)
    }
}
