//! Jobs: what tenants submit and the handle they hold while the
//! engine works.

use crate::error::ServeError;
use crate::metrics::Metrics;
use parking_lot::{Condvar, Mutex};
use spgemm::expr::ExprSpec;
use spgemm::{Algorithm, OutputOrder};
use spgemm_sparse::Csr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduling priority of a job. Workers always drain higher
/// priorities first; within one priority jobs run in submission order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work (bulk recomputation, prefetch).
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive interactive traffic.
    High,
}

impl Priority {
    /// Number of priority levels.
    pub const COUNT: usize = 3;

    /// Queue lane index, highest priority first.
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// A product request: `C = A · B` over two *stored* matrices.
///
/// The operands are resolved against the [`crate::MatrixStore`] at
/// submission time; the job keeps the resolved snapshots, so
/// re-registering a name afterwards does not affect it.
#[derive(Clone, Debug)]
pub struct ProductRequest {
    /// Store name of the left operand.
    pub a: String,
    /// Store name of the right operand.
    pub b: String,
    /// Kernel choice (`Auto` resolves per structure, once per plan).
    pub algo: Algorithm,
    /// Output ordering contract.
    pub order: OutputOrder,
    /// Scheduling priority.
    pub priority: Priority,
    /// Free-form tenant label carried into metrics/debugging.
    pub tenant: String,
}

impl ProductRequest {
    /// `A · B` with default options (`Auto`, sorted output, normal
    /// priority, anonymous tenant).
    pub fn new(a: impl Into<String>, b: impl Into<String>) -> Self {
        ProductRequest {
            a: a.into(),
            b: b.into(),
            algo: Algorithm::Auto,
            order: OutputOrder::Sorted,
            priority: Priority::Normal,
            tenant: String::new(),
        }
    }

    /// Set the kernel.
    pub fn algo(mut self, algo: Algorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Set the output order.
    pub fn order(mut self, order: OutputOrder) -> Self {
        self.order = order;
        self
    }

    /// Set the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the tenant label.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }
}

/// A whole-pipeline request: evaluate an expression DAG
/// ([`spgemm::expr::ExprGraph`]) over *stored* matrices bound to its
/// input slots.
///
/// Expression jobs run node-by-node on a worker: every `Multiply`
/// node goes through the shared plan cache (or the sharded backend
/// when it crosses the [`crate::DistRouting`] thresholds), and every
/// node's *result* is cached cross-tenant in the engine's
/// subexpression cache, keyed by the node's value fingerprint (op
/// lineage + the registration versions of the inputs it depends on).
/// Two tenants submitting pipelines that share a subexpression over
/// the same stored matrices share the computed intermediate.
///
/// Vector input slots ([`spgemm::expr::ExprGraph::vec_input`]) are
/// not accepted by the serving layer.
#[derive(Clone, Debug)]
pub struct ExprRequest {
    /// The DAG and its output node.
    pub spec: ExprSpec,
    /// Store names bound to the graph's input slots, in slot order.
    pub inputs: Vec<String>,
    /// Kernel for the DAG's `Multiply` nodes (`Auto` resolves per
    /// node).
    pub algo: Algorithm,
    /// Scheduling priority.
    pub priority: Priority,
    /// Free-form tenant label carried into metrics/debugging.
    pub tenant: String,
}

impl ExprRequest {
    /// A request binding `inputs` (store names, in slot order) to
    /// `spec` with default options.
    pub fn new<I, S>(spec: ExprSpec, inputs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ExprRequest {
            spec,
            inputs: inputs.into_iter().map(Into::into).collect(),
            algo: Algorithm::Auto,
            priority: Priority::Normal,
            tenant: String::new(),
        }
    }

    /// Set the kernel.
    pub fn algo(mut self, algo: Algorithm) -> Self {
        self.algo = algo;
        self
    }

    /// Set the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the tenant label.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }
}

/// A completed product, shared between deduplicated jobs.
pub type JobOutput = Arc<Csr<f64>>;

/// Terminal outcome of one job.
pub type JobResult = Result<JobOutput, ServeError>;

enum Phase {
    Pending,
    /// Running since the worker picked the job up — the pickup
    /// instant splits total latency into queue delay and service
    /// time.
    Running(Instant),
    Done(JobResult),
}

/// Shared state between a [`JobHandle`] and the worker executing the
/// job. Terminal-state bookkeeping is centralized in
/// [`JobCore::complete`], which is the exactly-once delivery point.
pub(crate) struct JobCore {
    id: u64,
    tenant: String,
    submitted: Instant,
    state: Mutex<Phase>,
    cv: Condvar,
    metrics: Arc<Metrics>,
    /// This tenant's latency recorder, resolved once at submission so
    /// completion records lock-free (`None` for the anonymous
    /// tenant).
    tenant_rec: Option<Arc<crate::metrics::LatencyRecorder>>,
    /// This tenant's SLO cell, resolved at submission like the
    /// recorder (`None` when the engine's policy gives the tenant no
    /// target).
    slo: Option<Arc<crate::metrics::SloCell>>,
    /// The request's trace context, opened at submission and carried
    /// across every thread that works on the job. Inert when tracing
    /// is disabled.
    ctx: spgemm_obs::TraceCtx,
    /// Service time stashed by [`JobCore::complete`] for the trace
    /// finish (ns; 0 until completed).
    service_ns: AtomicU64,
    /// Whether [`JobCore::finish_trace`] already ran.
    trace_finished: AtomicBool,
}

impl JobCore {
    pub(crate) fn new(
        id: u64,
        tenant: String,
        metrics: Arc<Metrics>,
        ctx: spgemm_obs::TraceCtx,
    ) -> Arc<Self> {
        let tenant_rec = metrics.tenant_recorder(&tenant);
        let slo = metrics.slo_cell(&tenant);
        Arc::new(JobCore {
            id,
            tenant,
            submitted: Instant::now(),
            state: Mutex::new(Phase::Pending),
            cv: Condvar::new(),
            metrics,
            tenant_rec,
            slo,
            ctx,
            service_ns: AtomicU64::new(0),
            trace_finished: AtomicBool::new(false),
        })
    }

    /// The request's trace context.
    pub(crate) fn trace_ctx(&self) -> spgemm_obs::TraceCtx {
        self.ctx
    }

    /// Close the request's trace: report its end-to-end latency to
    /// the exemplar store (grouped by tenant) and release the active
    /// slot. Idempotent; must run after every span working on the job
    /// has closed. Called on every terminal path and backstopped by
    /// `Drop`.
    pub(crate) fn finish_trace(&self) {
        if !self.ctx.is_active() || self.trace_finished.swap(true, Ordering::Relaxed) {
            return;
        }
        let group = if self.tenant.is_empty() {
            "(anonymous)"
        } else {
            self.tenant.as_str()
        };
        let total_ns = self.submitted.elapsed().as_nanos() as u64;
        let service_ns = self.service_ns.load(Ordering::Relaxed);
        spgemm_obs::finish_request(self.ctx, group, total_ns, service_ns);
    }

    /// Transition Pending → Running, stamping the pickup instant that
    /// splits queue delay from service time. `false` means the job
    /// already reached a terminal state (cancelled while queued) and
    /// must not be executed.
    pub(crate) fn start(&self) -> bool {
        let mut st = self.state.lock();
        match *st {
            Phase::Pending => {
                *st = Phase::Running(Instant::now());
                true
            }
            Phase::Done(_) => false,
            Phase::Running(_) => unreachable!("job {} started twice", self.id),
        }
    }

    /// Deliver the terminal result. Exactly the first call wins; later
    /// calls only bump the duplicate counter (which the smoke harness
    /// asserts stays 0).
    pub(crate) fn complete(&self, result: JobResult) -> bool {
        let mut st = self.state.lock();
        if matches!(*st, Phase::Done(_)) {
            self.metrics
                .duplicate_completions
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match &result {
            Ok(_) => {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                let total = self.submitted.elapsed();
                // Jobs resolved without a start (deduplicated
                // followers completed by the batch leader) spent
                // their whole life queued: service time is zero.
                let (queue, service) = match *st {
                    Phase::Running(started) => {
                        let service = started.elapsed();
                        (total.saturating_sub(service), service)
                    }
                    _ => (total, Duration::ZERO),
                };
                self.metrics
                    .record_job(self.tenant_rec.as_deref(), total, queue, service);
                if let Some(slo) = &self.slo {
                    slo.record(total.as_nanos() as u64);
                }
                self.service_ns
                    .store(service.as_nanos() as u64, Ordering::Relaxed);
            }
            Err(ServeError::Cancelled) => {
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        *st = Phase::Done(result);
        self.cv.notify_all();
        true
    }

    /// Terminal backstop for jobs orphaned by a worker panic outside
    /// the per-job execution windows: fail the job with `err` unless
    /// it already has a result. Unlike [`JobCore::complete`] an
    /// already-resolved job is left untouched *without* counting a
    /// duplicate — delivery still happened exactly once.
    pub(crate) fn fail_if_unresolved(&self, err: ServeError) {
        let mut st = self.state.lock();
        if matches!(*st, Phase::Done(_)) {
            return;
        }
        self.metrics.failed.fetch_add(1, Ordering::Relaxed);
        *st = Phase::Done(Err(err));
        self.cv.notify_all();
    }

    /// Cancel if still queued (atomically with respect to
    /// [`JobCore::start`]).
    fn cancel_if_pending(&self) -> bool {
        let won = {
            let mut st = self.state.lock();
            if matches!(*st, Phase::Pending) {
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                *st = Phase::Done(Err(ServeError::Cancelled));
                self.cv.notify_all();
                true
            } else {
                false
            }
        };
        if won {
            // never executed ⇒ no spans are open; safe to close now
            self.finish_trace();
        }
        won
    }
}

impl Drop for JobCore {
    fn drop(&mut self) {
        // backstop so an abandoned job can never leak its active-trace
        // slot (normal paths finish explicitly, making this a no-op)
        self.finish_trace();
    }
}

/// The caller's side of a submitted job: poll, block, or cancel.
///
/// Handles are cheap to clone and may be waited on from any thread;
/// dropping every handle does **not** cancel the job.
#[derive(Clone)]
pub struct JobHandle {
    core: Arc<JobCore>,
}

impl JobHandle {
    pub(crate) fn new(core: Arc<JobCore>) -> Self {
        JobHandle { core }
    }

    /// Engine-unique job id.
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// The tenant label the request carried.
    pub fn tenant(&self) -> &str {
        &self.core.tenant
    }

    /// The terminal result if the job has finished, without blocking.
    pub fn poll(&self) -> Option<JobResult> {
        match &*self.core.state.lock() {
            Phase::Done(r) => Some(r.clone()),
            _ => None,
        }
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobResult {
        let mut st = self.core.state.lock();
        loop {
            if let Phase::Done(r) = &*st {
                return r.clone();
            }
            self.core.cv.wait(&mut st);
        }
    }

    /// [`JobHandle::wait`] bounded by `timeout`; `None` if the job is
    /// still in flight when it elapses. A `timeout` too large to
    /// represent as a deadline (e.g. `Duration::MAX`) waits
    /// indefinitely, like [`JobHandle::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Some(self.wait());
        };
        let mut st = self.core.state.lock();
        loop {
            if let Phase::Done(r) = &*st {
                return Some(r.clone());
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let _ = self.core.cv.wait_for(&mut st, left);
        }
    }

    /// Cancel the job if it is still queued. Returns `true` when the
    /// cancellation won (the job will never execute; its result is
    /// [`ServeError::Cancelled`]), `false` when the job already runs
    /// or finished — running jobs are never interrupted.
    pub fn cancel(&self) -> bool {
        self.core.cancel_if_pending()
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match &*self.core.state.lock() {
            Phase::Pending => "pending",
            Phase::Running(_) => "running",
            Phase::Done(Ok(_)) => "done",
            Phase::Done(Err(_)) => "failed",
        };
        write!(f, "JobHandle(#{} {phase})", self.core.id)
    }
}
