//! The shared, concurrency-safe plan cache.
//!
//! [`spgemm::PlanCache`] amortizes symbolic work for *one* caller;
//! this cache turns the same amortization into a cross-tenant,
//! cross-worker resource. It maps a [`PlanKey`] — the operands'
//! structure fingerprints (computed once at registration, see
//! [`crate::MatrixStore`]) plus the kernel options — to a slot holding
//! one [`SpgemmPlan`]. Repeated products over stable structures, from
//! any tenant on any worker, reuse the symbolic phase and the plan's
//! pooled per-thread accumulators.
//!
//! # Concurrency model
//!
//! A plan's workspace pool is indexed by worker id within one
//! execution pool, so a single plan instance must not run on two
//! worker teams at once. Serializing a hot key on one instance would
//! throttle the dominant tenant to one worker, so each slot holds a
//! small **pool of plan instances**: a worker checks an instance out
//! ([`PlanSlot::checkout`]), executes its whole batch without holding
//! any slot lock, and returns it ([`PlanSlot::checkin`]). A hot key
//! thus fans out to as many instances as there are workers demanding
//! it — each instance pays its own symbolic build once (a miss) and
//! is reused ever after (hits) — while cold keys cost exactly one
//! instance.
//!
//! Eviction is least-recently-used over a fixed entry budget. An
//! evicted slot still held by a worker stays alive (the map holds
//! `Arc`s); checked-out instances are simply returned to the orphaned
//! slot and dropped with it.

use parking_lot::Mutex;
use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_sparse::PlusTimes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::store::StoredMatrix;

/// The semiring the serving layer runs (the paper's numeric setting).
pub(crate) type S = PlusTimes<f64>;

/// Cache key: operand structures + kernel options. Two requests with
/// the same key can share one plan verbatim.
///
/// # Trust model
///
/// Structure identity is decided by the 64-bit FNV-1a
/// [`spgemm_sparse::Csr::structure_fingerprint`], which is fast but
/// not collision-resistant: the engine assumes *cooperating* tenants.
/// A plan's per-execute checks still reject any shape or nnz
/// disagreement with an error, so only a full fingerprint collision
/// between equal-shape, equal-nnz, structurally different matrices —
/// vanishingly unlikely by accident, constructible by a hostile
/// tenant — could route a job through the wrong symbolic structure.
/// Serving mutually untrusted tenants would need a keyed or
/// cryptographic structure hash (or per-tenant cache partitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`spgemm_sparse::Csr::structure_fingerprint`] of `A`.
    pub fp_a: u64,
    /// Fingerprint of `B`.
    pub fp_b: u64,
    /// Requested kernel (pre-`Auto`-resolution; resolution happens
    /// once inside the plan).
    pub algo: Algorithm,
    /// Output ordering contract.
    pub order: OutputOrder,
}

impl PlanKey {
    /// The key of `a · b` under the given options.
    pub fn for_product(
        a: &StoredMatrix,
        b: &StoredMatrix,
        algo: Algorithm,
        order: OutputOrder,
    ) -> Self {
        PlanKey {
            fp_a: a.fingerprint(),
            fp_b: b.fingerprint(),
            algo,
            order,
        }
    }
}

/// Live cache keys (mirrors `SharedPlanCache::stats().entries`).
static PLAN_CACHE_ENTRIES: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("serve", "serve.plan_cache.entries");
/// Approximate bytes of *idle* (checked-in) plan instances pooled
/// across every live slot; see [`plan_approx_bytes`].
static PLAN_CACHE_BYTES: spgemm_obs::GaugeSite =
    spgemm_obs::GaugeSite::new("serve", "serve.plan_cache.approx_bytes");

/// Rough heap footprint of one pooled plan instance: the symbolic
/// result's output row pointers and per-entry index/value storage,
/// `O(symbolic_nnz)` with small fixed overhead. Deliberately a cheap
/// estimate (the plan does not expose its exact allocation), good
/// enough for the capacity trend the gauge exists to show.
fn plan_approx_bytes(plan: &SpgemmPlan<S>) -> u64 {
    256 + plan.symbolic_nnz().unwrap_or(0) as u64
        * (std::mem::size_of::<spgemm_sparse::ColIdx>() + std::mem::size_of::<f64>()) as u64
}

/// One cache entry: a pool of interchangeable plan instances for the
/// key (built lazily by executors as concurrency demands) and an LRU
/// stamp.
pub(crate) struct PlanSlot {
    instances: Mutex<Vec<SpgemmPlan<S>>>,
    last_used: AtomicU64,
    /// Approximate bytes currently pooled in `instances` (this
    /// slot's share of [`PLAN_CACHE_BYTES`]).
    pooled_bytes: AtomicU64,
}

impl PlanSlot {
    /// Take an idle plan instance sized for `nthreads`-wide execution,
    /// if one is pooled. Instances of a different width (possible only
    /// after a reconfiguration) are discarded on sight.
    pub(crate) fn checkout(&self, nthreads: usize) -> Option<SpgemmPlan<S>> {
        let mut pool = self.instances.lock();
        while let Some(plan) = pool.pop() {
            let bytes = plan_approx_bytes(&plan);
            self.pooled_bytes.fetch_sub(bytes, Ordering::Relaxed);
            PLAN_CACHE_BYTES.sub(bytes as i64);
            if plan.nthreads() == nthreads {
                return Some(plan);
            }
        }
        None
    }

    /// Return an instance for the next executor.
    pub(crate) fn checkin(&self, plan: SpgemmPlan<S>) {
        let bytes = plan_approx_bytes(&plan);
        let mut pool = self.instances.lock();
        self.pooled_bytes.fetch_add(bytes, Ordering::Relaxed);
        PLAN_CACHE_BYTES.add(bytes as i64);
        pool.push(plan);
    }
}

impl Drop for PlanSlot {
    fn drop(&mut self) {
        // an evicted slot's pooled instances leave the cache with it
        PLAN_CACHE_BYTES.sub(self.pooled_bytes.load(Ordering::Relaxed) as i64);
    }
}

/// Counters of the shared cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Jobs that executed numeric-only under an already-built plan
    /// (including batch-mates of the job that built it).
    pub hits: u64,
    /// Jobs that paid a symbolic build.
    pub misses: u64,
    /// Entries evicted to stay within the budget.
    pub evictions: u64,
    /// Live cache **keys** (each may pool several plan instances —
    /// see [`crate::ServeConfig::plan_cache_plans`]).
    pub entries: usize,
}

impl PlanCacheStats {
    /// Per-window deltas against an earlier snapshot of the same
    /// cache: counters are differenced, `entries` (a gauge) keeps its
    /// end-of-window value.
    pub fn since(&self, prev: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.saturating_sub(prev.hits),
            misses: self.misses.saturating_sub(prev.misses),
            evictions: self.evictions.saturating_sub(prev.evictions),
            entries: self.entries,
        }
    }

    /// `hits / (hits + misses)`, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

pub(crate) struct SharedPlanCache {
    map: Mutex<HashMap<PlanKey, Arc<PlanSlot>>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl SharedPlanCache {
    /// A cache holding at most `capacity` plans; 0 disables caching
    /// (the engine then runs every job as a cold one-shot — the
    /// baseline the `spgemm-serve --compare` bench measures against).
    pub(crate) fn new(capacity: usize) -> Self {
        SharedPlanCache {
            map: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The slot for `key`, creating (and LRU-evicting) as needed.
    pub(crate) fn slot(&self, key: PlanKey) -> Arc<PlanSlot> {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock();
        if let Some(slot) = map.get(&key) {
            slot.last_used.store(stamp, Ordering::Relaxed);
            return Arc::clone(slot);
        }
        if map.len() >= self.capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = Arc::new(PlanSlot {
            instances: Mutex::new(Vec::new()),
            last_used: AtomicU64::new(stamp),
            pooled_bytes: AtomicU64::new(0),
        });
        map.insert(key, Arc::clone(&slot));
        PLAN_CACHE_ENTRIES.set(map.len() as i64);
        slot
    }

    /// Record `n` jobs served numeric-only by a cached plan.
    pub(crate) fn note_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` jobs that paid (or shared) a symbolic build.
    pub(crate) fn note_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u64) -> PlanKey {
        PlanKey {
            fp_a: fp,
            fp_b: fp,
            algo: Algorithm::Hash,
            order: OutputOrder::Sorted,
        }
    }

    #[test]
    fn slot_is_stable_per_key() {
        let cache = SharedPlanCache::new(4);
        let s1 = cache.slot(key(1));
        let s2 = cache.slot(key(1));
        assert!(Arc::ptr_eq(&s1, &s2));
        let other = cache.slot(key(2));
        assert!(!Arc::ptr_eq(&s1, &other));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn lru_evicts_coldest() {
        let cache = SharedPlanCache::new(2);
        let s1 = cache.slot(key(1));
        let _s2 = cache.slot(key(2));
        let _s1_again = cache.slot(key(1)); // refresh 1; 2 is now coldest
        let _s3 = cache.slot(key(3)); // evicts 2
        let st = cache.stats();
        assert_eq!(st.entries, 2);
        assert_eq!(st.evictions, 1);
        assert!(Arc::ptr_eq(&s1, &cache.slot(key(1))), "1 survived");
        // 2 was evicted: a fresh, empty slot comes back.
        let s2_new = cache.slot(key(2));
        assert!(s2_new.checkout(1).is_none());
    }

    #[test]
    fn hit_rate_math() {
        let cache = SharedPlanCache::new(2);
        cache.note_misses(1);
        cache.note_hits(3);
        let st = cache.stats();
        assert!((st.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PlanCacheStats::default().hit_rate(), 0.0);
    }
}
