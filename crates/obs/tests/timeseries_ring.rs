//! Collector ring semantics: the fixed-footprint window ring must
//! overwrite oldest-first with monotone seq numbers, and every
//! retained window must hold the *exact* interval delta of its
//! collection — including windows recorded after the ring has
//! wrapped. Runs in its own process (integration test).

use spgemm_obs::timeseries::{Collector, CollectorConfig, SeriesKind};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

static RING_CTR: spgemm_obs::CounterSite = spgemm_obs::CounterSite::new("ring", "ring.ctr");
static RING_GAUGE: spgemm_obs::GaugeSite = spgemm_obs::GaugeSite::new("ring", "ring.gauge");
static RING_SPAN: spgemm_obs::SpanSite = spgemm_obs::SpanSite::new("ring", "ring.span");
static RING_HIST: spgemm_obs::HistogramSite = spgemm_obs::HistogramSite::new("ring", "ring.hist");

fn counter_delta(w: &spgemm_obs::timeseries::Window) -> u64 {
    match w.row("ring", "ring.ctr").expect("ring.ctr row").kind {
        SeriesKind::Counter { delta, .. } => delta,
        other => panic!("wrong kind: {other:?}"),
    }
}

#[test]
fn ring_wraps_oldest_first_with_exact_deltas() {
    let _l = LOCK.lock().unwrap();
    spgemm_obs::enable_with_capacity(0);
    spgemm_obs::reset();
    let col = Collector::new(CollectorConfig {
        windows: 3,
        ..Default::default()
    });
    // Collection k adds k to the counter: deltas are self-describing,
    // so a window that survived the wrap proves which collection it
    // came from *and* that its delta was not smeared by the wrap.
    for k in 1..=7u64 {
        RING_CTR.add(k);
        RING_GAUGE.set(k as i64);
        col.collect_now();
    }
    spgemm_obs::disable();

    assert_eq!(col.collections(), 7);
    let ws = col.windows();
    assert_eq!(ws.len(), 3, "ring must retain exactly its capacity");
    for (i, w) in ws.iter().enumerate() {
        assert_eq!(w.seq, 5 + i as u64, "oldest-first seq after wrap");
        assert_eq!(counter_delta(w), w.seq, "window {}: exact delta", w.seq);
        assert!(w.end_ns >= w.start_ns);
        match w.row("ring", "ring.gauge").expect("gauge row").kind {
            SeriesKind::Gauge { value } => assert_eq!(value, w.seq as i64),
            other => panic!("wrong kind: {other:?}"),
        }
    }
    // Windows tile time: each starts where the previous ended.
    for pair in ws.windows(2) {
        assert_eq!(pair[0].end_ns, pair[1].start_ns);
    }
    assert_eq!(
        col.latest().expect("latest").seq,
        7,
        "latest() is the newest window"
    );
    spgemm_obs::reset();
}

#[test]
fn span_and_histogram_deltas_survive_the_wrap() {
    let _l = LOCK.lock().unwrap();
    spgemm_obs::enable_with_capacity(0);
    spgemm_obs::reset();
    let col = Collector::new(CollectorConfig {
        windows: 2,
        ..Default::default()
    });
    // 5 collections over a 2-window ring; collection k records k span
    // completions and k histogram samples of value 100·k.
    for k in 1..=5u64 {
        for _ in 0..k {
            let _g = RING_SPAN.enter();
            RING_HIST.record(100 * k);
        }
        col.collect_now();
    }
    spgemm_obs::disable();

    let ws = col.windows();
    assert_eq!(ws.len(), 2);
    for w in &ws {
        let k = w.seq; // 4 and 5
        match w.row("ring", "ring.span").expect("span row").kind {
            SeriesKind::Span {
                count_delta,
                ns_delta,
            } => {
                assert_eq!(count_delta, k, "window {k}: span completions");
                assert!(ns_delta > 0, "window {k}: spans took time");
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match w.row("ring", "ring.hist").expect("hist row").kind {
            SeriesKind::Hist(stats) => {
                assert_eq!(stats.count, k, "window {k}: interval sample count");
                assert_eq!(stats.sum, 100 * k * k, "window {k}: interval sum");
                // p99 of the window is the window's own value band, not
                // a lifetime aggregate: bucket bounds overshoot by at
                // most 6.25%.
                assert!(
                    stats.p99 >= 100 * k && (stats.p99 as f64) < 100.0 * k as f64 * 1.07,
                    "window {k}: p99 {} outside its own band",
                    stats.p99
                );
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
    spgemm_obs::reset();
}

#[test]
fn background_thread_collects_and_stops_cleanly() {
    let _l = LOCK.lock().unwrap();
    spgemm_obs::enable_with_capacity(0);
    spgemm_obs::reset();
    let mut col = Collector::new(CollectorConfig {
        period: std::time::Duration::from_millis(5),
        windows: 4,
    });
    col.run_background();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while col.collections() < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    col.stop();
    let after = col.collections();
    assert!(after >= 3, "background thread collected {after} windows");
    // Stopped means stopped: no further collections arrive.
    std::thread::sleep(std::time::Duration::from_millis(25));
    assert_eq!(col.collections(), after);
    spgemm_obs::disable();
    spgemm_obs::reset();
}
