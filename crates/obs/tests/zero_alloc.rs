//! The zero-overhead-when-disabled proof for the instrumentation
//! layer: with the enable flag off, span enter/exit, counter adds and
//! histogram-site records perform **zero** heap allocations and stay
//! under a generous per-op time bound (the fast path is one relaxed
//! atomic load).
//!
//! Same counting-`#[global_allocator]` technique as the plan layer's
//! `plan_zero_alloc.rs`: per-thread tallies, so the strict zero
//! assertion is immune to the harness running tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

struct CountingAlloc;

thread_local! {
    // const-init + no Drop: the TLS slot itself never allocates, so
    // the allocator hooks cannot recurse.
    static LOCAL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by the *calling* thread so far.
fn allocations() -> u64 {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

static SPAN: spgemm_obs::SpanSite = spgemm_obs::SpanSite::new("test", "test.disabled");
static CTR: spgemm_obs::CounterSite = spgemm_obs::CounterSite::new("test", "test.ctr");
static HIST: spgemm_obs::HistogramSite = spgemm_obs::HistogramSite::new("test", "test.hist");

#[test]
fn disabled_instrumentation_allocates_nothing() {
    assert!(!spgemm_obs::enabled(), "tests must start disabled");
    // Touch the thread-id TLS and warm every path once before
    // counting (first `current_tid` would be counted otherwise; the
    // disabled path never reaches it, but keep the accounting clean).
    let _ = spgemm_obs::current_tid();
    drop(SPAN.enter());

    let iters = 200_000u64;
    let before = allocations();
    for i in 0..iters {
        let _g = SPAN.enter();
        CTR.add(i);
        HIST.record(i);
        let _h = spgemm_obs::span!("test", "test.inline");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled span/counter/histogram path must not allocate"
    );
    // ...and must not have recorded anything either
    assert_eq!(SPAN.totals(), (0, 0, 0));
    assert_eq!(CTR.value(), 0);
    assert_eq!(HIST.snapshot().count, 0);
}

#[test]
fn disabled_trace_ctx_propagation_allocates_nothing() {
    assert!(!spgemm_obs::enabled(), "tests must start disabled");
    // warm the thread-id and ctx TLS slots before counting
    let _ = spgemm_obs::current_tid();
    drop(spgemm_obs::ctx_scope(spgemm_obs::TraceCtx::INERT));

    let iters = 200_000u64;
    let before = allocations();
    for _ in 0..iters {
        // the full per-request propagation surface: root, scope
        // install, span under scope, flow out/accept, batch link,
        // finish
        let ctx = spgemm_obs::TraceCtx::root();
        let _scope = spgemm_obs::ctx_scope(ctx);
        let _g = SPAN.enter();
        let link = spgemm_obs::flow_out("test.hop");
        link.accept("test.hop");
        ctx.link_to(&ctx, "test.member");
        spgemm_obs::finish_request(ctx, "test", 1, 1);
        assert!(!ctx.is_active());
        assert!(!link.is_active());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled TraceCtx propagation must not allocate"
    );
    assert_eq!(SPAN.totals(), (0, 0, 0));
    assert!(spgemm_obs::exemplars().is_empty());
    assert_eq!(spgemm_obs::trace_unsampled(), 0);
}

#[test]
fn disabled_span_enter_exit_is_cheap() {
    assert!(!spgemm_obs::enabled(), "tests must start disabled");
    let iters = 1_000_000u64;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _g = SPAN.enter();
    }
    let per_op_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    // The fast path is one relaxed load; anything near this bound
    // means the gate is broken, not that the machine is slow.
    assert!(
        per_op_ns < 1000.0,
        "disabled span enter/exit costs {per_op_ns:.1}ns/op"
    );
}
