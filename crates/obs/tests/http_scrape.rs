//! Scrape-endpoint robustness: the listener thread must survive —
//! and keep serving valid OpenMetrics — across concurrent scrapers,
//! clients that disconnect mid-response, and garbage request lines.
//! Runs in its own process (integration test), so enabling
//! instrumentation here cannot race the zero-alloc proof.

use spgemm_obs::http::{http_get, ScrapeConfig, ScrapeServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

// Tests in one integration binary run concurrently but share the
// global registry and enable flag; serialize them.
static LOCK: Mutex<()> = Mutex::new(());

static CTR: spgemm_obs::CounterSite = spgemm_obs::CounterSite::new("scrape", "scrape.ctr");
static GAUGE: spgemm_obs::GaugeSite = spgemm_obs::GaugeSite::new("scrape", "scrape.gauge");
static HIST: spgemm_obs::HistogramSite = spgemm_obs::HistogramSite::new("scrape", "scrape.hist");

fn populate() {
    spgemm_obs::enable_with_capacity(0);
    CTR.add(7);
    GAUGE.set(-4);
    for v in [3u64, 900, 40_000] {
        HIST.record(v);
    }
    spgemm_obs::disable();
}

#[test]
fn concurrent_scrapers_get_valid_pages() {
    let _l = LOCK.lock().unwrap();
    populate();
    let server = ScrapeServer::start(ScrapeConfig::default()).expect("bind");
    let addr = server.addr();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let (status, body) = http_get(addr, "/metrics").expect("scrape");
                    assert_eq!(status, 200);
                    spgemm_obs::openmetrics::validate(&body)
                        .unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
                    assert!(body.contains("spgemm_scrape_ctr_total"), "{body}");
                    assert!(
                        body.contains("spgemm_scrape_gauge{cat=\"scrape\"} -4"),
                        "{body}"
                    );
                    assert!(body.contains("spgemm_scrape_hist_bucket"), "{body}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("scraper");
    }
    assert!(server.served() >= 100, "served {}", server.served());
    spgemm_obs::reset();
}

#[test]
fn extra_exposition_is_appended_before_eof() {
    let _l = LOCK.lock().unwrap();
    populate();
    let server = ScrapeServer::start_with(
        ScrapeConfig::default(),
        Some(Box::new(|out: &mut String| {
            spgemm_obs::openmetrics::append_type(out, "extra_fam", "counter");
            spgemm_obs::openmetrics::append_counter(out, "extra_fam", &[("src", "test")], 11);
        })),
    )
    .expect("bind");
    let (status, body) = http_get(server.addr(), "/metrics").expect("scrape");
    assert_eq!(status, 200);
    spgemm_obs::openmetrics::validate(&body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
    assert!(body.contains("extra_fam_total{src=\"test\"} 11"), "{body}");
    assert!(body.ends_with("# EOF\n"), "{body}");
    spgemm_obs::reset();
}

#[test]
fn mid_response_disconnects_do_not_wedge_the_endpoint() {
    let _l = LOCK.lock().unwrap();
    populate();
    let server = ScrapeServer::start(ScrapeConfig::default()).expect("bind");
    let addr = server.addr();
    for _ in 0..8 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: obs\r\n\r\n")
            .expect("request");
        // Read a prefix of the response, then slam the connection shut.
        let mut prefix = [0u8; 16];
        let _ = s.read(&mut prefix);
        drop(s);
    }
    // A connection that opens and says nothing costs one read error.
    drop(TcpStream::connect(addr).expect("connect"));
    // The endpoint must still answer cleanly afterwards.
    let (status, body) = http_get(addr, "/metrics").expect("post-abuse scrape");
    assert_eq!(status, 200);
    spgemm_obs::openmetrics::validate(&body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
    spgemm_obs::reset();
}

#[test]
fn garbage_and_unknown_requests_get_error_statuses() {
    let _l = LOCK.lock().unwrap();
    populate();
    let server = ScrapeServer::start(ScrapeConfig::default()).expect("bind");
    let addr = server.addr();

    // Not HTTP at all: the handler must answer 400, not hang or die.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"\x00\x01garbage\r\n\r\n").expect("garbage");
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw:?}");
    drop(s);

    let (status, _) = http_get(addr, "/nope").expect("404 path");
    assert_eq!(status, 404);
    // http_get only speaks GET; POST by hand for the 405.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"POST /metrics HTTP/1.1\r\nHost: obs\r\n\r\n")
        .expect("post");
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw:?}");

    let (status, body) = http_get(addr, "/json").expect("json");
    assert_eq!(status, 200);
    assert!(body.trim_start().starts_with('{'), "{body}");
    assert!(server.rejected() >= 3, "rejected {}", server.rejected());
    // Valid service continues after every abuse case.
    let (status, body) = http_get(addr, "/metrics").expect("final scrape");
    assert_eq!(status, 200);
    spgemm_obs::openmetrics::validate(&body).unwrap_or_else(|e| panic!("{e}\n---\n{body}"));
    spgemm_obs::reset();
}
