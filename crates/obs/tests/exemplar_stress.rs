//! Concurrent bounds proof for the tail-sampling exemplar store:
//! four threads finish hundreds of traced requests each and we assert
//! (1) the steady-state trace path performs **zero** heap allocations
//! per thread (counting `#[global_allocator]`, per-thread tallies),
//! (2) the overwrite-fastest retention policy holds exactly (each
//! group keeps precisely its K slowest requests), and (3) every
//! retained span tree is well-formed — each parent id resolves and
//! there is exactly one root.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static LOCAL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

const THREADS: usize = 4;
const WARMUP: usize = 8;
const REQUESTS: usize = 250;
const GROUPS: [&str; THREADS] = ["tenant-a", "tenant-b", "tenant-c", "tenant-d"];

/// Deterministic synthetic latency for request `i` of thread `t`:
/// distinct within a thread so the expected top-K is unambiguous.
fn synthetic_total_ns(t: usize, i: usize) -> u64 {
    (((i * 37 + t * 11) % 997) as u64 + 1) * 1_000
}

/// One traced request: nested spans, a cross-"thread" flow pair, then
/// finish with a synthetic latency (so retention ranking is exact and
/// independent of scheduler noise).
fn run_request(group: &str, total_ns: u64) -> bool {
    let ctx = spgemm_obs::TraceCtx::root();
    assert!(ctx.is_active(), "tracing enabled, slots available");
    {
        let _scope = spgemm_obs::ctx_scope(ctx);
        let _outer = spgemm_obs::span!("stress", "stress.outer");
        {
            let _inner = spgemm_obs::span!("stress", "stress.inner");
        }
        let link = spgemm_obs::flow_out("stress.hop");
        link.accept("stress.hop");
    }
    spgemm_obs::finish_request(ctx, group, total_ns, total_ns / 2)
}

#[test]
fn concurrent_exemplar_store_is_bounded_and_well_formed() {
    // capacity 256: small enough that the ring wraps under this load,
    // proving retention doesn't depend on the ring keeping up
    spgemm_obs::enable_with_capacity(256);

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let group = GROUPS[t];
                // Warmup off the measured path: first requests create
                // the group (one-time allocation of its K preallocated
                // slots) and warm this thread's TLS.
                for i in 0..WARMUP {
                    run_request(group, synthetic_total_ns(t, i));
                }
                let before = allocations();
                for i in WARMUP..REQUESTS {
                    run_request(group, synthetic_total_ns(t, i));
                }
                let after = allocations();
                assert_eq!(
                    after - before,
                    0,
                    "steady-state trace record + retention path must not allocate ({group})"
                );
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    spgemm_obs::disable();

    let exemplars = spgemm_obs::exemplars();
    assert_eq!(
        exemplars.len(),
        THREADS * spgemm_obs::EXEMPLARS_PER_GROUP,
        "every group holds exactly K exemplars"
    );
    assert_eq!(spgemm_obs::trace_unsampled(), 0, "≤4 concurrent traces");

    for (t, group) in GROUPS.iter().enumerate() {
        // overwrite-fastest ⇒ exactly the K slowest synthetic totals
        let mut expected: Vec<u64> = (0..REQUESTS).map(|i| synthetic_total_ns(t, i)).collect();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        expected.truncate(spgemm_obs::EXEMPLARS_PER_GROUP);
        let got: Vec<u64> = exemplars
            .iter()
            .filter(|e| &e.group == group)
            .map(|e| e.total_ns)
            .collect();
        assert_eq!(got, expected, "top-K slowest retained for {group}");
    }

    for e in &exemplars {
        e.validate()
            .unwrap_or_else(|err| panic!("{}/{}: {err}", e.group, e.trace_id));
        assert_eq!(e.dropped, 0, "small trees fit the span budget");
        let names: Vec<&str> = e.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"stress.outer"), "{names:?}");
        assert!(names.contains(&"stress.inner"), "{names:?}");
        assert_eq!(names.last(), Some(&"request"), "root envelope last");
        // the flow pair shares one id
        let starts: Vec<u64> = e
            .spans
            .iter()
            .filter(|s| s.kind == spgemm_obs::EventKind::FlowStart)
            .map(|s| s.span_id)
            .collect();
        let ends: Vec<u64> = e
            .spans
            .iter()
            .filter(|s| s.kind == spgemm_obs::EventKind::FlowEnd)
            .map(|s| s.span_id)
            .collect();
        assert_eq!(starts, ends, "paired flow halves");
        // exported Chrome JSON for any retained exemplar is available
        let json = spgemm_obs::chrome_trace_for(e.trace_id).expect("in window");
        assert!(json.contains("\"ph\":\"s\""), "flow start exported");
        assert!(json.contains("\"ph\":\"f\""), "flow end exported");
    }

    // rolling the window empties retention without deallocating groups
    spgemm_obs::roll_exemplar_window();
    assert!(spgemm_obs::exemplars().is_empty());
    spgemm_obs::reset();
}
