//! The fixed-footprint proof for the time-series collector: after a
//! warmup pass that sizes the per-site scratch and the ring's row
//! buffers, steady-state collection — registry snapshot, interval
//! deltas, histogram window stats, sampler rows — performs **zero**
//! heap allocations, so the collector thread never perturbs the
//! workload it is measuring.
//!
//! Same counting-`#[global_allocator]` technique as `zero_alloc.rs`:
//! per-thread tallies, so the strict zero assertion is immune to the
//! harness running tests concurrently.

use spgemm_obs::timeseries::{Collector, CollectorConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // const-init + no Drop: the TLS slot itself never allocates, so
    // the allocator hooks cannot recurse.
    static LOCAL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = LOCAL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by the *calling* thread so far.
fn allocations() -> u64 {
    LOCAL_ALLOCATIONS.with(Cell::get)
}

static CTR: spgemm_obs::CounterSite = spgemm_obs::CounterSite::new("tsa", "tsa.ctr");
static GAUGE: spgemm_obs::GaugeSite = spgemm_obs::GaugeSite::new("tsa", "tsa.gauge");
static SPAN: spgemm_obs::SpanSite = spgemm_obs::SpanSite::new("tsa", "tsa.span");
static HIST: spgemm_obs::HistogramSite = spgemm_obs::HistogramSite::new("tsa", "tsa.hist");

#[test]
fn steady_state_collection_allocates_nothing() {
    spgemm_obs::enable_with_capacity(0);
    // Register and exercise every site kind before warmup, so site
    // registration and lazy histogram buckets are paid up front.
    CTR.add(1);
    GAUGE.set(1);
    {
        let _g = SPAN.enter();
    }
    HIST.record(1);
    HIST.record(1 << 20);

    let col = Collector::new(CollectorConfig {
        windows: 4,
        ..Default::default()
    });
    let mut tick = 0u64;
    col.set_sampler(Box::new(move |rows| {
        tick += 1;
        // Fixed-width keys: the recycled String never regrows.
        rows.push(format_args!("tsa.sampled"), tick as f64);
        rows.push(format_args!("tsa.other"), 0.5);
    }));
    // Warmup: one full lap of the ring plus one, so every window's
    // row buffer, the prev-state vectors and the histogram scratch
    // are all sized.
    for _ in 0..5 {
        CTR.add(3);
        HIST.record(7);
        col.collect_now();
    }

    let iters = 200u64;
    let before = allocations();
    for i in 0..iters {
        CTR.add(i);
        GAUGE.set(i as i64);
        {
            let _g = SPAN.enter();
        }
        HIST.record(i + 1);
        col.collect_now();
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state collect_now must not allocate"
    );

    // The ring still holds coherent data after the proof.
    let ws = col.windows();
    assert_eq!(ws.len(), 4);
    assert!(ws.iter().all(|w| w.extra.rows().len() == 2));
    spgemm_obs::disable();
    spgemm_obs::reset();
}
