//! Concurrent-writer stress: 4 threads hammer one histogram and one
//! counter; totals must be exact (every `record`/`add` is a
//! `fetch_add`) and quantiles must stay inside the documented bucket
//! error bound. Runs in its own process (integration test), so
//! enabling instrumentation here cannot race the zero-alloc proof.

use spgemm_obs::{CounterSite, Histogram, SpanSite};
use std::sync::Arc;

const THREADS: u64 = 4;
const PER_THREAD: u64 = 50_000;

#[test]
fn concurrent_histogram_totals_are_exact_and_quantiles_sane() {
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // every thread writes the same known multiset 1..=N,
                // interleaved with the others
                for v in 1..=PER_THREAD {
                    h.record(v + (t % 2)); // two slightly shifted streams
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let s = h.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD, "no sample lost or dropped");
    // exact sum: 2 threads wrote 1..=N, 2 wrote 2..=N+1
    let base: u64 = PER_THREAD * (PER_THREAD + 1) / 2;
    assert_eq!(s.sum, 2 * base + 2 * (base + PER_THREAD));
    assert_eq!(s.min, 1);
    assert_eq!(s.max, PER_THREAD + 1);
    // quantiles within the bucket error bound of the exact order stats
    for &q in &[0.25, 0.5, 0.9, 0.99] {
        let exact = (q * PER_THREAD as f64) as u64; // ±1 of true rank value
        let approx = s.quantile(q);
        let rel = (approx as f64 - exact as f64).abs() / exact as f64;
        assert!(
            rel < 0.08, // 6.25% bucket width + rank slack
            "q={q}: approx {approx} vs ~{exact} (rel {rel:.4})"
        );
    }
}

#[test]
fn concurrent_counter_and_span_totals_are_exact() {
    static CTR: CounterSite = CounterSite::new("stress", "stress.ctr");
    static SPAN: SpanSite = SpanSite::new("stress", "stress.span");
    spgemm_obs::enable_with_capacity(1024);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..PER_THREAD {
                    CTR.add(3);
                    let _g = SPAN.enter();
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    spgemm_obs::disable();
    assert_eq!(CTR.value(), 3 * THREADS * PER_THREAD);
    let (count, total_ns, max_ns) = SPAN.totals();
    assert_eq!(count, THREADS * PER_THREAD);
    assert!(total_ns >= max_ns);
    // the bounded ring kept the most recent window and counted the rest
    let kept = spgemm_obs::trace_events().len() as u64;
    assert!(kept <= 1024);
    assert_eq!(kept + spgemm_obs::trace_overwritten(), THREADS * PER_THREAD);
}
