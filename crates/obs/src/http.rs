//! Std-only scrape endpoint: one background thread on a
//! [`TcpListener`] answering `GET /metrics` with the OpenMetrics page
//! ([`crate::openmetrics::render`], plus any caller-supplied extra
//! families) and `GET /json` with [`crate::json_snapshot`].
//!
//! Off by default — nothing listens unless [`ScrapeServer::start`] is
//! called. The handler is deliberately minimal and defensive: the
//! request line is read with a hard byte cap and a read timeout, the
//! response is written with a write timeout, and any client that
//! sends garbage, disconnects mid-response, or stalls costs at most
//! one timeout before the next `accept` — it can never wedge the
//! endpoint. Responses carry `Content-Length` and `Connection:
//! close`, so partial readers see a well-formed prefix.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Scrape endpoint settings.
#[derive(Clone, Debug)]
pub struct ScrapeConfig {
    /// Bind address. Default `127.0.0.1:0` (ephemeral port; read the
    /// bound address back with [`ScrapeServer::addr`]).
    pub addr: String,
    /// Per-connection read timeout for the request line.
    pub read_timeout: Duration,
    /// Per-connection write timeout for the response.
    pub write_timeout: Duration,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig {
            addr: "127.0.0.1:0".into(),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
        }
    }
}

/// Extra exposition appended to `/metrics` before `# EOF` — the hook
/// through which serve adds per-tenant latency/SLO families.
pub type ExtraExposition = Box<dyn Fn(&mut String) + Send + Sync>;

/// Handle to a running scrape endpoint; dropping it stops the
/// listener thread.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    rejected: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind and start serving with no extra exposition.
    pub fn start(cfg: ScrapeConfig) -> io::Result<ScrapeServer> {
        ScrapeServer::start_with(cfg, None)
    }

    /// Bind and start serving; `extra` is appended to every
    /// `/metrics` page before the `# EOF` terminator.
    pub fn start_with(
        cfg: ScrapeConfig,
        extra: Option<ExtraExposition>,
    ) -> io::Result<ScrapeServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let handle = {
            let (stop, served, rejected) = (stop.clone(), served.clone(), rejected.clone());
            std::thread::Builder::new()
                .name("obs-scrape".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        let Ok(stream) = conn else { continue };
                        match handle_conn(stream, &cfg, extra.as_deref()) {
                            Ok(true) => {
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(false) | Err(_) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })?
        };
        Ok(ScrapeServer {
            addr,
            stop,
            served,
            rejected,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered with 200.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Connections answered with an error status or dropped.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Stop the listener thread and join it. Idempotent (also runs on
    /// drop).
    pub fn shutdown(&mut self) {
        if let Some(h) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // unblock the accept loop
            let _ = TcpStream::connect(self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// `Ok(true)` when a 200 was written, `Ok(false)` for a client error
/// response, `Err` when the client broke the connection.
fn handle_conn(
    stream: TcpStream,
    cfg: &ScrapeConfig,
    extra: Option<&(dyn Fn(&mut String) + Send + Sync)>,
) -> io::Result<bool> {
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?).take(8 * 1024);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path, version) = (parts.next(), parts.next(), parts.next());
    let well_formed = version.is_some_and(|v| v.starts_with("HTTP/"));
    let mut stream = stream;
    let ok = match (method, path) {
        _ if !well_formed => {
            respond(&mut stream, 400, "text/plain", "bad request\n")?;
            false
        }
        (Some("GET"), Some("/metrics")) => {
            let mut body = String::new();
            crate::openmetrics::render_registry_into(&mut body);
            if let Some(extra) = extra {
                extra(&mut body);
            }
            body.push_str("# EOF\n");
            respond(
                &mut stream,
                200,
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                &body,
            )?;
            true
        }
        (Some("GET"), Some("/json")) => {
            respond(
                &mut stream,
                200,
                "application/json",
                &crate::json_snapshot(),
            )?;
            true
        }
        (Some("GET"), Some(_)) => {
            respond(&mut stream, 404, "text/plain", "not found\n")?;
            false
        }
        _ => {
            respond(&mut stream, 405, "text/plain", "method not allowed\n")?;
            false
        }
    };
    let _ = stream.shutdown(Shutdown::Both);
    Ok(ok)
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Method Not Allowed",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal blocking HTTP GET against the scrape endpoint — the client
/// half used by the tests and the `spgemm-obs` smoke. Returns
/// `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: obs\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}
