//! Periodic time-series collection over the global registry.
//!
//! A [`Collector`] snapshots every registered counter, gauge, span
//! and histogram site on a configurable period into a fixed-footprint
//! ring of [`Window`]s. Each window holds *interval* readings — true
//! deltas against the previous collection (counter deltas and rates,
//! span count/time deltas, per-window histogram quantiles via
//! [`HistogramSnapshot::window_stats`], the bucket-wise equivalent of
//! [`HistogramSnapshot::since`]) — not lifetime aggregates, so a p99
//! in a window is the p99 *of that window*.
//!
//! The ring overwrites its oldest window; nothing grows with uptime.
//! After a warmup collection (which sizes the per-site scratch), the
//! steady-state collection path performs **zero heap allocations**
//! (proven by `tests/timeseries_alloc.rs`), so the collector thread
//! never perturbs the workload it is measuring.
//!
//! Subsystems whose metrics live outside the registry (e.g. serve's
//! `MetricsSnapshot` — per-tenant latency, SLO burn rates) plug in
//! through a [`SamplerFn`] that appends keyed rows to each window;
//! the row keys reuse per-slot `String` storage, so a sampler that
//! formats into them also settles into an allocation-free steady
//! state once key lengths stabilize.

use crate::hist::{HistogramSnapshot, WindowStats};
use crate::site::{lock, REGISTRY};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Collector settings.
#[derive(Clone, Debug)]
pub struct CollectorConfig {
    /// Collection period of the background thread (manual
    /// [`Collector::collect_now`] calls ignore it). Default 1 s.
    pub period: Duration,
    /// Ring capacity in windows (min 2). Default 64.
    pub windows: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            period: Duration::from_secs(1),
            windows: 64,
        }
    }
}

/// One registry site's interval reading within a [`Window`].
#[derive(Clone, Copy, Debug)]
pub struct SeriesRow {
    /// Site category (layer).
    pub cat: &'static str,
    /// Site name.
    pub name: &'static str,
    /// The interval reading.
    pub kind: SeriesKind,
}

/// The per-kind payload of a [`SeriesRow`].
#[derive(Clone, Copy, Debug)]
pub enum SeriesKind {
    /// Counter: increment over the window and its per-second rate.
    Counter {
        /// Value gained during the window.
        delta: u64,
        /// `delta` over the window length.
        rate_per_s: f64,
    },
    /// Gauge: level at the end of the window.
    Gauge {
        /// Instantaneous level.
        value: i64,
    },
    /// Span: occurrences and time spent during the window.
    Span {
        /// Completions during the window.
        count_delta: u64,
        /// Nanoseconds accumulated during the window.
        ns_delta: u64,
    },
    /// Histogram: window-local aggregates (count, sum, p50/p99...).
    Hist(WindowStats),
}

/// One sampler-provided row: a formatted key and a value.
#[derive(Clone, Debug)]
pub struct ExtraRow {
    /// Sampler-chosen series key (e.g. `serve.p99_ms{tenant=acme}`).
    pub key: String,
    /// Sampled value.
    pub value: f64,
}

/// Reusable append-only row buffer handed to a [`SamplerFn`] each
/// window. Key strings are recycled across windows, so formatting
/// into them allocates nothing once lengths stabilize.
#[derive(Debug, Default)]
pub struct ExtraRows {
    rows: Vec<ExtraRow>,
    len: usize,
}

impl ExtraRows {
    /// Append one row; `key` is formatted into recycled storage
    /// (call as `rows.push(format_args!("..."), v)`).
    pub fn push(&mut self, key: fmt::Arguments<'_>, value: f64) {
        if self.len == self.rows.len() {
            self.rows.push(ExtraRow {
                key: String::new(),
                value: 0.0,
            });
        }
        let row = &mut self.rows[self.len];
        row.key.clear();
        let _ = fmt::Write::write_fmt(&mut row.key, key);
        row.value = value;
        self.len += 1;
    }

    /// The rows appended for the current window.
    pub fn rows(&self) -> &[ExtraRow] {
        &self.rows[..self.len]
    }

    fn clear(&mut self) {
        self.len = 0;
    }
}

impl Clone for ExtraRows {
    fn clone(&self) -> Self {
        ExtraRows {
            rows: self.rows[..self.len].to_vec(),
            len: self.len,
        }
    }
}

/// One collection window: interval readings of every registered site
/// plus any sampler rows, covering `[start_ns, end_ns)` on the
/// [`crate::now_ns`] clock.
#[derive(Clone, Debug)]
pub struct Window {
    /// Monotone collection number (1-based; never reused, so a reader
    /// polling [`Collector::windows`] can detect what it missed).
    pub seq: u64,
    /// Window start (previous collection), ns since the trace epoch.
    pub start_ns: u64,
    /// Window end (this collection), ns since the trace epoch.
    pub end_ns: u64,
    /// Registry sites, in registration order per kind.
    pub rows: Vec<SeriesRow>,
    /// Sampler-provided rows.
    pub extra: ExtraRows,
}

impl Window {
    /// Window length in seconds.
    pub fn len_s(&self) -> f64 {
        (self.end_ns.saturating_sub(self.start_ns)) as f64 / 1e9
    }

    /// The reading for site `(cat, name)`, if it was registered.
    pub fn row(&self, cat: &str, name: &str) -> Option<&SeriesRow> {
        self.rows.iter().find(|r| r.cat == cat && r.name == name)
    }
}

/// Sampler plugged into the collector; appends per-window rows.
pub type SamplerFn = Box<dyn FnMut(&mut ExtraRows) + Send>;

struct PrevState {
    counters: Vec<u64>,
    spans: Vec<(u64, u64)>,
    hists: Vec<HistogramSnapshot>,
    scratch: HistogramSnapshot,
}

struct State {
    seq: u64,
    head: usize,
    windows: Vec<Window>,
    prev: PrevState,
    last_ns: u64,
    sampler: Option<SamplerFn>,
}

struct Shared {
    state: Mutex<State>,
    stop: Mutex<bool>,
    cv: Condvar,
    collections: AtomicU64,
}

/// The time-series collector. Construct with [`Collector::new`]
/// (manual collection) and optionally [`Collector::run_background`]
/// to drive it from a thread; dropping the collector stops and joins
/// that thread. Nothing in the process starts one implicitly —
/// telemetry export is opt-in.
pub struct Collector {
    period: Duration,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl Collector {
    /// A collector with an empty ring of `cfg.windows` windows. No
    /// thread is started; call [`Collector::collect_now`] to sample.
    pub fn new(cfg: CollectorConfig) -> Collector {
        let capacity = cfg.windows.max(2);
        let windows = (0..capacity)
            .map(|_| Window {
                seq: 0,
                start_ns: 0,
                end_ns: 0,
                rows: Vec::new(),
                extra: ExtraRows::default(),
            })
            .collect();
        Collector {
            period: cfg.period,
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    seq: 0,
                    head: 0,
                    windows,
                    prev: PrevState {
                        counters: Vec::new(),
                        spans: Vec::new(),
                        hists: Vec::new(),
                        scratch: HistogramSnapshot::empty(),
                    },
                    last_ns: crate::now_ns(),
                    sampler: None,
                }),
                stop: Mutex::new(false),
                cv: Condvar::new(),
                collections: AtomicU64::new(0),
            }),
            thread: None,
        }
    }

    /// Install (or replace) the extra-row sampler.
    pub fn set_sampler(&self, f: SamplerFn) {
        lock(&self.shared.state).sampler = Some(f);
    }

    /// Spawn the background thread collecting every `period`.
    /// Idempotent; the thread is stopped and joined on drop.
    pub fn run_background(&mut self) {
        if self.thread.is_some() {
            return;
        }
        *lock(&self.shared.stop) = false;
        let shared = Arc::clone(&self.shared);
        let period = self.period;
        self.thread = Some(
            std::thread::Builder::new()
                .name("obs-collector".into())
                .spawn(move || loop {
                    let mut stop = lock(&shared.stop);
                    while !*stop {
                        let (g, timed_out) = shared
                            .cv
                            .wait_timeout(stop, period)
                            .unwrap_or_else(|e| panic!("collector cv: {e}"));
                        stop = g;
                        if timed_out.timed_out() {
                            break;
                        }
                    }
                    if *stop {
                        return;
                    }
                    drop(stop);
                    collect(&shared);
                })
                .expect("spawn obs-collector"),
        );
    }

    /// Stop and join the background thread (no-op if none running).
    pub fn stop(&mut self) {
        if let Some(h) = self.thread.take() {
            *lock(&self.shared.stop) = true;
            self.shared.cv.notify_all();
            let _ = h.join();
        }
    }

    /// Collect one window synchronously (usable with or without the
    /// background thread). Allocation-free at steady state.
    pub fn collect_now(&self) {
        collect(&self.shared);
    }

    /// Total collections performed.
    pub fn collections(&self) -> u64 {
        self.shared.collections.load(Ordering::Relaxed)
    }

    /// The retained windows, oldest first (clones; at most the ring
    /// capacity, fewer until the ring fills).
    pub fn windows(&self) -> Vec<Window> {
        let st = lock(&self.shared.state);
        let cap = st.windows.len();
        let mut out = Vec::new();
        for i in 0..cap {
            let w = &st.windows[(st.head + i) % cap];
            if w.seq != 0 {
                out.push(w.clone());
            }
        }
        out
    }

    /// The most recent window, if any collection has happened.
    pub fn latest(&self) -> Option<Window> {
        let st = lock(&self.shared.state);
        let cap = st.windows.len();
        let w = &st.windows[(st.head + cap - 1) % cap];
        if w.seq != 0 {
            Some(w.clone())
        } else {
            None
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

fn collect(shared: &Shared) {
    let mut guard = lock(&shared.state);
    let st = &mut *guard;
    let now_ns = crate::now_ns();
    let start_ns = st.last_ns;
    let dt_s = ((now_ns.saturating_sub(start_ns)) as f64 / 1e9).max(1e-9);
    st.seq += 1;
    let head = st.head;
    let prev = &mut st.prev;
    let win = &mut st.windows[head];
    win.seq = st.seq;
    win.start_ns = start_ns;
    win.end_ns = now_ns;
    win.rows.clear();
    win.extra.clear();

    {
        let regs = lock(&REGISTRY.counters);
        if prev.counters.len() < regs.len() {
            prev.counters.resize(regs.len(), 0);
        }
        for (i, c) in regs.iter().enumerate() {
            let v = c.value();
            let delta = v.saturating_sub(prev.counters[i]);
            prev.counters[i] = v;
            win.rows.push(SeriesRow {
                cat: c.cat(),
                name: c.name(),
                kind: SeriesKind::Counter {
                    delta,
                    rate_per_s: delta as f64 / dt_s,
                },
            });
        }
    }
    {
        let regs = lock(&REGISTRY.gauges);
        for g in regs.iter() {
            win.rows.push(SeriesRow {
                cat: g.cat(),
                name: g.name(),
                kind: SeriesKind::Gauge { value: g.value() },
            });
        }
    }
    {
        let regs = lock(&REGISTRY.spans);
        if prev.spans.len() < regs.len() {
            prev.spans.resize(regs.len(), (0, 0));
        }
        for (i, s) in regs.iter().enumerate() {
            let (count, total_ns, _max) = s.totals();
            let (pc, pt) = prev.spans[i];
            prev.spans[i] = (count, total_ns);
            win.rows.push(SeriesRow {
                cat: s.cat(),
                name: s.name(),
                kind: SeriesKind::Span {
                    count_delta: count.saturating_sub(pc),
                    ns_delta: total_ns.saturating_sub(pt),
                },
            });
        }
    }
    {
        let regs = lock(&REGISTRY.hists);
        while prev.hists.len() < regs.len() {
            prev.hists.push(HistogramSnapshot::empty());
        }
        for (i, h) in regs.iter().enumerate() {
            h.hist.snapshot_into(&mut prev.scratch);
            let stats = prev.scratch.window_stats(&prev.hists[i]);
            // the fresh snapshot becomes this site's `prev`; its old
            // buffer becomes the scratch for the next site
            std::mem::swap(&mut prev.hists[i], &mut prev.scratch);
            win.rows.push(SeriesRow {
                cat: h.cat(),
                name: h.name(),
                kind: SeriesKind::Hist(stats),
            });
        }
    }
    if let Some(sampler) = st.sampler.as_mut() {
        sampler(&mut st.windows[head].extra);
    }
    st.head = (head + 1) % st.windows.len();
    st.last_ns = now_ns;
    drop(guard);
    shared.collections.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterSite, GaugeSite};

    static TS_CTR: CounterSite = CounterSite::new("ts", "ts.ctr");
    static TS_GAUGE: GaugeSite = GaugeSite::new("ts", "ts.gauge");

    #[test]
    fn windows_hold_interval_deltas() {
        let _l = crate::test_lock();
        crate::enable_with_capacity(0);
        crate::reset();
        let col = Collector::new(CollectorConfig {
            windows: 4,
            ..Default::default()
        });
        TS_CTR.add(5);
        TS_GAUGE.set(3);
        col.collect_now();
        TS_CTR.add(2);
        TS_GAUGE.set(-1);
        col.collect_now();
        crate::disable();

        let ws = col.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].seq + 1, ws[1].seq);
        assert_eq!(ws[0].end_ns, ws[1].start_ns);
        let first = ws[0].row("ts", "ts.ctr").unwrap();
        let second = ws[1].row("ts", "ts.ctr").unwrap();
        match (first.kind, second.kind) {
            (
                SeriesKind::Counter { delta: d1, .. },
                SeriesKind::Counter {
                    delta: d2,
                    rate_per_s,
                },
            ) => {
                assert_eq!(d1, 5);
                assert_eq!(d2, 2);
                assert!(rate_per_s > 0.0);
            }
            other => panic!("wrong kinds: {other:?}"),
        }
        match ws[1].row("ts", "ts.gauge").unwrap().kind {
            SeriesKind::Gauge { value } => assert_eq!(value, -1),
            other => panic!("wrong kind: {other:?}"),
        }
        crate::reset();
    }

    #[test]
    fn sampler_rows_are_recycled() {
        let _l = crate::test_lock();
        crate::enable_with_capacity(0);
        crate::reset();
        let col = Collector::new(CollectorConfig::default());
        let mut tick = 0u64;
        col.set_sampler(Box::new(move |rows| {
            tick += 1;
            rows.push(format_args!("extra.tick"), tick as f64);
        }));
        col.collect_now();
        col.collect_now();
        crate::disable();
        let w = col.latest().unwrap();
        assert_eq!(w.extra.rows().len(), 1);
        assert_eq!(w.extra.rows()[0].key, "extra.tick");
        assert_eq!(w.extra.rows()[0].value, 2.0);
        crate::reset();
    }
}
