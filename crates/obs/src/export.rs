//! Exporters over the global registry: text report, JSON snapshot,
//! Chrome `trace_event` JSON, and the span-coverage helper.

use crate::ring::TraceEvent;
use crate::site::{lock, REGISTRY};
use crate::HistogramSnapshot;
use std::fmt::Write as _;

/// Aggregates of one span callsite.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Span name.
    pub name: &'static str,
    /// Span category (layer).
    pub cat: &'static str,
    /// Completed occurrences.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_ns: u64,
}

/// Value of one counter callsite.
#[derive(Clone, Debug)]
pub struct CounterStat {
    /// Counter name.
    pub name: &'static str,
    /// Counter category (layer).
    pub cat: &'static str,
    /// Current value.
    pub value: u64,
}

/// Snapshot of one histogram callsite.
#[derive(Clone, Debug)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: &'static str,
    /// Histogram category (layer).
    pub cat: &'static str,
    /// The histogram's current state.
    pub snapshot: HistogramSnapshot,
}

/// Every registered span's aggregates, sorted by `(cat, name)`.
pub fn span_stats() -> Vec<SpanStat> {
    let mut out: Vec<SpanStat> = lock(&REGISTRY.spans)
        .iter()
        .map(|s| {
            let (count, total_ns, max_ns) = s.totals();
            SpanStat {
                name: s.name(),
                cat: s.cat(),
                count,
                total_ns,
                max_ns,
            }
        })
        .collect();
    out.sort_by_key(|s| (s.cat, s.name));
    out
}

/// Every registered counter's value, sorted by `(cat, name)`.
pub fn counter_stats() -> Vec<CounterStat> {
    let mut out: Vec<CounterStat> = lock(&REGISTRY.counters)
        .iter()
        .map(|c| CounterStat {
            name: c.name(),
            cat: c.cat(),
            value: c.value(),
        })
        .collect();
    out.sort_by_key(|c| (c.cat, c.name));
    out
}

/// Every registered histogram site's snapshot, sorted by
/// `(cat, name)`.
pub fn histogram_stats() -> Vec<HistogramStat> {
    let mut out: Vec<HistogramStat> = lock(&REGISTRY.hists)
        .iter()
        .map(|h| HistogramStat {
            name: h.name(),
            cat: h.cat(),
            snapshot: h.snapshot(),
        })
        .collect();
    out.sort_by_key(|h| (h.cat, h.name));
    out
}

/// Human-readable report over every registered site: per-span count,
/// total, mean and max; counters; histogram quantiles.
pub fn text_report() -> String {
    let mut out = String::new();
    let spans = span_stats();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>11} {:>11}",
            "span", "count", "total ms", "mean us", "max us"
        );
        for s in &spans {
            let mean_us = if s.count == 0 {
                0.0
            } else {
                s.total_ns as f64 / s.count as f64 / 1e3
            };
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>12.3} {:>11.2} {:>11.2}",
                format!("{}/{}", s.cat, s.name),
                s.count,
                s.total_ns as f64 / 1e6,
                mean_us,
                s.max_ns as f64 / 1e3,
            );
        }
    }
    let counters = counter_stats();
    if !counters.is_empty() {
        let _ = writeln!(out, "{:<34} {:>10}", "counter", "value");
        for c in &counters {
            let _ = writeln!(
                out,
                "{:<34} {:>10}",
                format!("{}/{}", c.cat, c.name),
                c.value
            );
        }
    }
    let hists = histogram_stats();
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>11} {:>11} {:>11}",
            "histogram", "count", "p50", "p99", "max"
        );
        for h in &hists {
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>11} {:>11} {:>11}",
                format!("{}/{}", h.cat, h.name),
                h.snapshot.count,
                h.snapshot.quantile(0.50),
                h.snapshot.quantile(0.99),
                h.snapshot.max,
            );
        }
    }
    let dropped = crate::trace_overwritten();
    if dropped > 0 {
        let _ = writeln!(out, "trace events overwritten: {dropped}");
    }
    if out.is_empty() {
        out.push_str("(no instrumentation recorded)\n");
    }
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON snapshot of every registered span, counter and histogram —
/// hand-rolled (the crate is dependency-free), machine-parseable.
pub fn json_snapshot() -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, s) in span_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(s.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(s.name, &mut out);
        let _ = write!(
            out,
            "\",\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.max_ns
        );
    }
    out.push_str("],\"counters\":[");
    for (i, c) in counter_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(c.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(c.name, &mut out);
        let _ = write!(out, "\",\"value\":{}}}", c.value);
    }
    out.push_str("],\"histograms\":[");
    for (i, h) in histogram_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(h.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(h.name, &mut out);
        let _ = write!(
            out,
            "\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{}}}",
            h.snapshot.count,
            h.snapshot.min,
            h.snapshot.max,
            h.snapshot.mean(),
            h.snapshot.quantile(0.50),
            h.snapshot.quantile(0.99),
        );
    }
    let _ = write!(
        out,
        "],\"trace_overwritten\":{}}}",
        crate::trace_overwritten()
    );
    out
}

/// The retained trace as Chrome `trace_event` JSON — save to a file
/// and load in `chrome://tracing` or <https://ui.perfetto.dev>.
/// Events are complete (`"ph":"X"`) with microsecond timestamps.
pub fn chrome_trace() -> String {
    let events = crate::trace_events();
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        json_escape(e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        json_escape(e.cat, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}",
            e.start_ns as f64 / 1e3,
            e.dur_ns as f64 / 1e3,
            e.tid
        );
    }
    out.push_str("]}");
    out
}

/// Fraction of the window `[window_start_ns, window_end_ns)` covered
/// by the union of `events` on thread `tid` (events clipped to the
/// window; nested/overlapping spans count once). This is the number
/// the `spgemm-obs` bench asserts ≥ 0.95: the share of wall time the
/// trace decomposes into known phases.
pub fn span_coverage(
    events: &[TraceEvent],
    tid: u64,
    window_start_ns: u64,
    window_end_ns: u64,
) -> f64 {
    if window_end_ns <= window_start_ns {
        return 0.0;
    }
    let mut iv: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.tid == tid)
        .map(|e| {
            (
                e.start_ns.max(window_start_ns),
                e.start_ns.saturating_add(e.dur_ns).min(window_end_ns),
            )
        })
        .filter(|&(s, e)| e > s)
        .collect();
    iv.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        cur = Some(match cur {
            None => (s, e),
            Some((cs, ce)) if s <= ce => (cs, ce.max(e)),
            Some((cs, ce)) => {
                covered += ce - cs;
                (s, e)
            }
        });
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered as f64 / (window_end_ns - window_start_ns) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u64, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: "test",
            tid,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn coverage_unions_and_clips() {
        let events = [
            ev(1, 0, 50),    // [0,50)
            ev(1, 40, 20),   // overlaps → union [0,60)
            ev(1, 80, 1000), // clipped to [80,100)
            ev(2, 0, 100),   // other thread, ignored
        ];
        let c = span_coverage(&events, 1, 0, 100);
        assert!((c - 0.8).abs() < 1e-12, "{c}");
        assert_eq!(span_coverage(&events, 3, 0, 100), 0.0);
        assert_eq!(span_coverage(&events, 1, 100, 100), 0.0);
    }

    #[test]
    fn coverage_handles_nested_spans_once() {
        let events = [ev(1, 10, 80), ev(1, 20, 30), ev(1, 30, 10)];
        let c = span_coverage(&events, 1, 0, 100);
        assert!((c - 0.8).abs() < 1e-12, "{c}");
    }

    #[test]
    fn exports_are_well_formed() {
        let _l = crate::test_lock();
        crate::enable_with_capacity(64);
        crate::reset();
        {
            let _g = crate::span!("export", "export.phase");
        }
        static C: crate::CounterSite = crate::CounterSite::new("export", "export.ctr");
        C.add(2);
        static H: crate::HistogramSite = crate::HistogramSite::new("export", "export.hist");
        H.record(1234);
        crate::disable();

        let text = text_report();
        assert!(text.contains("export/export.phase"), "{text}");
        assert!(text.contains("export/export.ctr"), "{text}");

        let json = json_snapshot();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"name\":\"export.hist\""), "{json}");

        let trace = chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("\"export.phase\""), "{trace}");
        crate::reset();
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
    }
}
