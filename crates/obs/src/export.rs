//! Exporters over the global registry: text report, JSON snapshot,
//! Chrome `trace_event` JSON (including per-request exemplar export
//! with flow events), and the span-coverage helpers.

use crate::ring::{EventKind, TraceEvent};
use crate::site::{lock, REGISTRY};
use crate::HistogramSnapshot;
use std::fmt::Write as _;

/// Aggregates of one span callsite.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Span name.
    pub name: &'static str,
    /// Span category (layer).
    pub cat: &'static str,
    /// Completed occurrences.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single occurrence, nanoseconds.
    pub max_ns: u64,
}

/// Value of one counter callsite.
#[derive(Clone, Debug)]
pub struct CounterStat {
    /// Counter name.
    pub name: &'static str,
    /// Counter category (layer).
    pub cat: &'static str,
    /// Current value.
    pub value: u64,
}

/// Level of one gauge callsite.
#[derive(Clone, Debug)]
pub struct GaugeStat {
    /// Gauge name.
    pub name: &'static str,
    /// Gauge category (layer).
    pub cat: &'static str,
    /// Current level.
    pub value: i64,
}

/// Snapshot of one histogram callsite.
#[derive(Clone, Debug)]
pub struct HistogramStat {
    /// Histogram name.
    pub name: &'static str,
    /// Histogram category (layer).
    pub cat: &'static str,
    /// The histogram's current state.
    pub snapshot: HistogramSnapshot,
}

/// Every registered span's aggregates, sorted by `(cat, name)`.
pub fn span_stats() -> Vec<SpanStat> {
    let mut out: Vec<SpanStat> = lock(&REGISTRY.spans)
        .iter()
        .map(|s| {
            let (count, total_ns, max_ns) = s.totals();
            SpanStat {
                name: s.name(),
                cat: s.cat(),
                count,
                total_ns,
                max_ns,
            }
        })
        .collect();
    out.sort_by_key(|s| (s.cat, s.name));
    out
}

/// Every registered counter's value, sorted by `(cat, name)`.
pub fn counter_stats() -> Vec<CounterStat> {
    let mut out: Vec<CounterStat> = lock(&REGISTRY.counters)
        .iter()
        .map(|c| CounterStat {
            name: c.name(),
            cat: c.cat(),
            value: c.value(),
        })
        .collect();
    out.sort_by_key(|c| (c.cat, c.name));
    out
}

/// Every registered gauge's level, sorted by `(cat, name)`.
pub fn gauge_stats() -> Vec<GaugeStat> {
    let mut out: Vec<GaugeStat> = lock(&REGISTRY.gauges)
        .iter()
        .map(|g| GaugeStat {
            name: g.name(),
            cat: g.cat(),
            value: g.value(),
        })
        .collect();
    out.sort_by_key(|g| (g.cat, g.name));
    out
}

/// Every registered histogram site's snapshot, sorted by
/// `(cat, name)`.
pub fn histogram_stats() -> Vec<HistogramStat> {
    let mut out: Vec<HistogramStat> = lock(&REGISTRY.hists)
        .iter()
        .map(|h| HistogramStat {
            name: h.name(),
            cat: h.cat(),
            snapshot: h.snapshot(),
        })
        .collect();
    out.sort_by_key(|h| (h.cat, h.name));
    out
}

/// Human-readable report over every registered site: per-span count,
/// total, mean and max; counters; histogram quantiles.
pub fn text_report() -> String {
    let mut out = String::new();
    let spans = span_stats();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>12} {:>11} {:>11}",
            "span", "count", "total ms", "mean us", "max us"
        );
        for s in &spans {
            let mean_us = if s.count == 0 {
                0.0
            } else {
                s.total_ns as f64 / s.count as f64 / 1e3
            };
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>12.3} {:>11.2} {:>11.2}",
                format!("{}/{}", s.cat, s.name),
                s.count,
                s.total_ns as f64 / 1e6,
                mean_us,
                s.max_ns as f64 / 1e3,
            );
        }
    }
    let counters = counter_stats();
    if !counters.is_empty() {
        let _ = writeln!(out, "{:<34} {:>10}", "counter", "value");
        for c in &counters {
            let _ = writeln!(
                out,
                "{:<34} {:>10}",
                format!("{}/{}", c.cat, c.name),
                c.value
            );
        }
    }
    let gauges = gauge_stats();
    if !gauges.is_empty() {
        let _ = writeln!(out, "{:<34} {:>10}", "gauge", "level");
        for g in &gauges {
            let _ = writeln!(
                out,
                "{:<34} {:>10}",
                format!("{}/{}", g.cat, g.name),
                g.value
            );
        }
    }
    let hists = histogram_stats();
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>10} {:>11} {:>11} {:>11}",
            "histogram", "count", "p50", "p99", "max"
        );
        for h in &hists {
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>11} {:>11} {:>11}",
                format!("{}/{}", h.cat, h.name),
                h.snapshot.count,
                h.snapshot.quantile(0.50),
                h.snapshot.quantile(0.99),
                h.snapshot.max,
            );
        }
    }
    let dropped = crate::trace_overwritten();
    if dropped > 0 {
        let _ = writeln!(out, "trace events overwritten: {dropped}");
    }
    if out.is_empty() {
        out.push_str("(no instrumentation recorded)\n");
    }
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// JSON snapshot of every registered span, counter and histogram —
/// hand-rolled (the crate is dependency-free), machine-parseable.
pub fn json_snapshot() -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, s) in span_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(s.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(s.name, &mut out);
        let _ = write!(
            out,
            "\",\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
            s.count, s.total_ns, s.max_ns
        );
    }
    out.push_str("],\"counters\":[");
    for (i, c) in counter_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(c.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(c.name, &mut out);
        let _ = write!(out, "\",\"value\":{}}}", c.value);
    }
    out.push_str("],\"gauges\":[");
    for (i, g) in gauge_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(g.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(g.name, &mut out);
        let _ = write!(out, "\",\"value\":{}}}", g.value);
    }
    out.push_str("],\"histograms\":[");
    for (i, h) in histogram_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"cat\":\"");
        json_escape(h.cat, &mut out);
        out.push_str("\",\"name\":\"");
        json_escape(h.name, &mut out);
        let _ = write!(
            out,
            "\",\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{}}}",
            h.snapshot.count,
            h.snapshot.min,
            h.snapshot.max,
            h.snapshot.mean(),
            h.snapshot.quantile(0.50),
            h.snapshot.quantile(0.99),
        );
    }
    let _ = write!(
        out,
        "],\"trace_overwritten\":{}}}",
        crate::trace_overwritten()
    );
    out
}

/// Append one event in Chrome `trace_event` object form. Complete
/// spans emit `"ph":"X"`; flow-link halves emit the flow pair
/// `"ph":"s"` / `"ph":"f"` (with `"bp":"e"` so the arrow binds to
/// the enclosing slice), sharing their flow `"id"`.
fn write_chrome_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    json_escape(e.name, out);
    out.push_str("\",\"cat\":\"");
    json_escape(e.cat, out);
    match e.kind {
        EventKind::Complete => {
            let _ = write!(
                out,
                "\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
                e.tid
            );
        }
        EventKind::FlowStart => {
            let _ = write!(
                out,
                "\",\"ph\":\"s\",\"id\":{},\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                e.span_id,
                e.start_ns as f64 / 1e3,
                e.tid
            );
        }
        EventKind::FlowEnd => {
            let _ = write!(
                out,
                "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                e.span_id,
                e.start_ns as f64 / 1e3,
                e.tid
            );
        }
    }
    if e.trace_id != 0 {
        let _ = write!(out, ",\"args\":{{\"trace_id\":{}}}", e.trace_id);
    }
    out.push('}');
}

/// The retained trace as Chrome `trace_event` JSON — save to a file
/// and load in `chrome://tracing` or <https://ui.perfetto.dev>.
/// Spans are complete events (`"ph":"X"`) with microsecond
/// timestamps; request thread-hops appear as flow arrows
/// (`"ph":"s"`/`"f"`).
pub fn chrome_trace() -> String {
    chrome_trace_of(&crate::trace_events())
}

/// The retained exemplar trace with this [`crate::TraceCtx::trace_id`]
/// as Chrome `trace_event` JSON: the complete span tree of that one
/// request, across every thread it touched, with flow arrows linking
/// the hops. `None` when the id is not (or no longer) in the exemplar
/// window.
pub fn chrome_trace_for(trace_id: u64) -> Option<String> {
    crate::exemplar_for(trace_id).map(|e| chrome_trace_of(&e.spans))
}

fn chrome_trace_of(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_chrome_event(&mut out, e);
    }
    out.push_str("]}");
    out
}

/// Fraction of the window `[window_start_ns, window_end_ns)` covered
/// by the union of `events` on thread `tid` (events clipped to the
/// window; nested/overlapping spans count once). This is the number
/// the `spgemm-obs` bench asserts ≥ 0.95: the share of wall time the
/// trace decomposes into known phases.
pub fn span_coverage(
    events: &[TraceEvent],
    tid: u64,
    window_start_ns: u64,
    window_end_ns: u64,
) -> f64 {
    if window_end_ns <= window_start_ns {
        return 0.0;
    }
    let covered = union_ns(
        events
            .iter()
            .filter(|e| e.kind == EventKind::Complete && e.tid == tid),
        window_start_ns,
        window_end_ns,
    );
    covered as f64 / (window_end_ns - window_start_ns) as f64
}

/// Nanoseconds of `[window_start_ns, window_end_ns)` covered by the
/// union of the events' clipped intervals (nested/overlapping spans
/// count once).
fn union_ns<'a>(
    events: impl Iterator<Item = &'a TraceEvent>,
    window_start_ns: u64,
    window_end_ns: u64,
) -> u64 {
    let mut iv: Vec<(u64, u64)> = events
        .map(|e| {
            (
                e.start_ns.max(window_start_ns),
                e.start_ns.saturating_add(e.dur_ns).min(window_end_ns),
            )
        })
        .filter(|&(s, e)| e > s)
        .collect();
    iv.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        cur = Some(match cur {
            None => (s, e),
            Some((cs, ce)) if s <= ce => (cs, ce.max(e)),
            Some((cs, ce)) => {
                covered += ce - cs;
                (s, e)
            }
        });
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    covered
}

/// One callsite's contribution to a coverage window (see
/// [`coverage_by_site`]).
#[derive(Clone, Debug)]
pub struct SiteCoverage {
    /// Span category (layer).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Nanoseconds of the window covered by this site's spans alone
    /// (its own overlaps unioned).
    pub covered_ns: u64,
    /// `covered_ns` over the window length.
    pub fraction: f64,
}

/// Per-callsite breakdown of [`span_coverage`]: for each `(cat,
/// name)` with at least one event on `tid` in the window, the share
/// of the window that site's spans cover, sorted by descending
/// coverage. When a coverage assertion regresses, this names the
/// phase that lost time. Sites may overlap (spans nest), so the
/// fractions can sum past the unioned total.
pub fn coverage_by_site(
    events: &[TraceEvent],
    tid: u64,
    window_start_ns: u64,
    window_end_ns: u64,
) -> Vec<SiteCoverage> {
    if window_end_ns <= window_start_ns {
        return Vec::new();
    }
    let window = (window_end_ns - window_start_ns) as f64;
    let mut sites: Vec<(&'static str, &'static str)> = events
        .iter()
        .filter(|e| e.kind == EventKind::Complete && e.tid == tid)
        .map(|e| (e.cat, e.name))
        .collect();
    sites.sort_unstable();
    sites.dedup();
    let mut out: Vec<SiteCoverage> = sites
        .into_iter()
        .map(|(cat, name)| {
            let covered_ns = union_ns(
                events.iter().filter(|e| {
                    e.kind == EventKind::Complete && e.tid == tid && e.cat == cat && e.name == name
                }),
                window_start_ns,
                window_end_ns,
            );
            SiteCoverage {
                cat,
                name,
                covered_ns,
                fraction: covered_ns as f64 / window,
            }
        })
        .filter(|s| s.covered_ns > 0)
        .collect();
    out.sort_by(|a, b| b.covered_ns.cmp(&a.covered_ns).then(a.name.cmp(b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tid: u64, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent::untraced("e", "test", tid, start_ns, dur_ns)
    }

    fn named(name: &'static str, tid: u64, start_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent::untraced(name, "test", tid, start_ns, dur_ns)
    }

    #[test]
    fn coverage_unions_and_clips() {
        let events = [
            ev(1, 0, 50),    // [0,50)
            ev(1, 40, 20),   // overlaps → union [0,60)
            ev(1, 80, 1000), // clipped to [80,100)
            ev(2, 0, 100),   // other thread, ignored
        ];
        let c = span_coverage(&events, 1, 0, 100);
        assert!((c - 0.8).abs() < 1e-12, "{c}");
        assert_eq!(span_coverage(&events, 3, 0, 100), 0.0);
        assert_eq!(span_coverage(&events, 1, 100, 100), 0.0);
    }

    #[test]
    fn coverage_handles_nested_spans_once() {
        let events = [ev(1, 10, 80), ev(1, 20, 30), ev(1, 30, 10)];
        let c = span_coverage(&events, 1, 0, 100);
        assert!((c - 0.8).abs() < 1e-12, "{c}");
    }

    #[test]
    fn coverage_ignores_flow_events() {
        let mut flow = ev(1, 0, 1000);
        flow.kind = EventKind::FlowStart;
        let events = [flow, ev(1, 10, 40)];
        let c = span_coverage(&events, 1, 0, 100);
        assert!((c - 0.4).abs() < 1e-12, "{c}");
    }

    #[test]
    fn coverage_by_site_names_each_phase() {
        let events = [
            named("a", 1, 0, 50),
            named("a", 1, 40, 20), // unions with above: a covers 60
            named("b", 1, 70, 10), // b covers 10
            named("b", 2, 0, 100), // other tid
        ];
        let by = coverage_by_site(&events, 1, 0, 100);
        assert_eq!(by.len(), 2);
        assert_eq!((by[0].cat, by[0].name), ("test", "a"));
        assert_eq!(by[0].covered_ns, 60);
        assert!((by[0].fraction - 0.6).abs() < 1e-12);
        assert_eq!(by[1].name, "b");
        assert_eq!(by[1].covered_ns, 10);
        assert!(coverage_by_site(&events, 1, 100, 100).is_empty());
    }

    #[test]
    fn chrome_trace_emits_flow_pair() {
        let mut s = ev(1, 10, 0);
        s.kind = EventKind::FlowStart;
        s.span_id = 77;
        s.trace_id = 5;
        let mut f = ev(2, 20, 0);
        f.kind = EventKind::FlowEnd;
        f.span_id = 77;
        f.trace_id = 5;
        let json = chrome_trace_of(&[s, f, ev(1, 0, 30)]);
        assert!(json.contains("\"ph\":\"s\",\"id\":77"), "{json}");
        assert!(
            json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":77"),
            "{json}"
        );
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"args\":{\"trace_id\":5}"), "{json}");
    }

    #[test]
    fn exports_are_well_formed() {
        let _l = crate::test_lock();
        crate::enable_with_capacity(64);
        crate::reset();
        {
            let _g = crate::span!("export", "export.phase");
        }
        static C: crate::CounterSite = crate::CounterSite::new("export", "export.ctr");
        C.add(2);
        static H: crate::HistogramSite = crate::HistogramSite::new("export", "export.hist");
        H.record(1234);
        crate::disable();

        let text = text_report();
        assert!(text.contains("export/export.phase"), "{text}");
        assert!(text.contains("export/export.ctr"), "{text}");

        let json = json_snapshot();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"name\":\"export.hist\""), "{json}");

        let trace = chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("\"export.phase\""), "{trace}");
        crate::reset();
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\u000ad");
        s.clear();
        json_escape("\u{0}\u{1f}\t\r", &mut s);
        assert_eq!(s, "\\u0000\\u001f\\u0009\\u000d");
    }

    /// A hostile site name — embedded newline, quote and a C0 control
    /// — must come out of every JSON exporter escaped, never raw.
    #[test]
    fn hostile_names_stay_escaped_in_every_exporter() {
        let _l = crate::test_lock();
        crate::enable_with_capacity(64);
        crate::reset();
        static EVIL_CTR: crate::CounterSite =
            crate::CounterSite::new("export", "evil\n\"ctr\"\u{1}");
        static EVIL_GAUGE: crate::GaugeSite = crate::GaugeSite::new("export", "evil\ngauge");
        static EVIL_SPAN: crate::SpanSite = crate::SpanSite::new("export", "evil\nspan");
        EVIL_CTR.add(1);
        EVIL_GAUGE.set(-3);
        drop(EVIL_SPAN.enter());
        crate::disable();

        // these exporters emit single-line documents, so any raw
        // control character is a leak from an unescaped name
        for json in [json_snapshot(), chrome_trace()] {
            assert!(!json.contains('\n'), "raw newline leaked: {json}");
            assert!(!json.contains('\u{1}'), "raw control leaked: {json}");
        }
        let json = json_snapshot();
        assert!(json.contains("evil\\u000a\\\"ctr\\\"\\u0001"), "{json}");
        assert!(json.contains("evil\\u000agauge\",\"value\":-3"), "{json}");
        crate::reset();
    }
}
