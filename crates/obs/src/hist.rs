//! Log-bucketed, fixed-footprint histogram over `u64` values.
//!
//! The bucketing is HDR-style log-linear: values below `2^(P+1)` get
//! one bucket each (exact), and every octave above that is split into
//! `2^P` linear sub-buckets, so the relative width of any bucket is
//! at most `2^-P`. With [`PRECISION`] `P = 4` that is a 6.25% bound
//! on quantile error, over the full `u64` range, in
//! [`NUM_BUCKETS`] = 976 buckets (~7.8 KB of atomics per histogram).
//! Recording is wait-free (one `fetch_add` per field); nothing is
//! ever dropped and memory never grows.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision: each octave is split into `2^PRECISION`
/// linear buckets, bounding relative bucket width by `2^-PRECISION`.
pub const PRECISION: u32 = 4;

const SUB: usize = 1 << PRECISION;
const MASK: u64 = (SUB as u64) - 1;

/// Total bucket count for the full `u64` range at [`PRECISION`].
pub const NUM_BUCKETS: usize = ((64 - PRECISION as usize) << PRECISION) + SUB;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (2 * SUB) as u64 {
        // values 0..2^(P+1) are exact: one bucket each
        v as usize
    } else {
        let m = 63 - v.leading_zeros(); // highest set bit, ≥ P+1
        let shift = m - PRECISION;
        let sub = ((v >> shift) & MASK) as usize;
        ((shift as usize) << PRECISION) + sub + SUB
    }
}

/// Smallest value mapping to bucket `i` (the bucket's lower bound).
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    if i < 2 * SUB {
        i as u64
    } else {
        let u = i - SUB;
        let e = (u >> PRECISION) as u32;
        let sub = (u & MASK as usize) as u64;
        (SUB as u64 + sub) << e
    }
}

/// Largest value mapping to bucket `i` (inclusive upper bound).
#[inline]
pub fn bucket_high(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_low(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// Concurrent log-bucketed histogram. Recording is lock-free and
/// allocation-free; the footprint is fixed at construction
/// (~7.8 KB). See the module docs for the error bound.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram. `const`, so it can back a `static` site as
    /// well as a heap-allocated per-tenant instance.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free; never drops a sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state out for quantile queries. Concurrent
    /// writers may land between field reads; once writers quiesce the
    /// snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// [`Histogram::snapshot`] into an existing snapshot, reusing its
    /// bucket storage: after the first call on a given snapshot this
    /// performs no heap allocation, which is what lets the
    /// time-series collector run allocation-free at steady state.
    pub fn snapshot_into(&self, out: &mut HistogramSnapshot) {
        out.counts.resize(NUM_BUCKETS, 0);
        for (dst, src) in out.counts.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        out.count = self.count.load(Ordering::Relaxed);
        out.sum = self.sum.load(Ordering::Relaxed);
        out.min = if out.count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        out.max = self.max.load(Ordering::Relaxed);
    }

    /// Fold every sample of `other` into `self`, bucket-wise. Totals
    /// (`count`, `sum`) are exact; `min`/`max` are the true combined
    /// extrema. Both histograms stay usable and concurrent recording
    /// on either side remains safe (a racing record lands wholly in
    /// one side or the other of the merge).
    pub fn merge(&self, other: &Histogram) {
        if other.count.load(Ordering::Relaxed) == 0 {
            return;
        }
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = o.load(Ordering::Relaxed);
            if v > 0 {
                b.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zero every bucket and aggregate.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`], supporting quantile and
/// mean queries.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wraps after `u64::MAX`).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with zero samples and no bucket storage yet
    /// (the first [`Histogram::snapshot_into`] sizes it).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: Vec::new(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Bucket-wise interval totals against an earlier snapshot of the
    /// same histogram, without materializing a delta snapshot:
    /// `(count, sum, min_bound, max_bound, p50, p99)` of the window,
    /// allocation-free. Equivalent to `self.since(prev)` queried for
    /// those fields.
    pub fn window_stats(&self, prev: &HistogramSnapshot) -> WindowStats {
        let count = self.count.saturating_sub(prev.count);
        let sum = self.sum.saturating_sub(prev.sum);
        if count == 0 {
            return WindowStats {
                count: 0,
                sum,
                min: 0,
                max: 0,
                p50: 0,
                p99: 0,
            };
        }
        let delta =
            |i: usize| self.counts[i].saturating_sub(prev.counts.get(i).copied().unwrap_or(0));
        let n = self.counts.len();
        let (mut first, mut last) = (None, None);
        for i in 0..n {
            if delta(i) > 0 {
                if first.is_none() {
                    first = Some(i);
                }
                last = Some(i);
            }
        }
        let (min, max) = match (first, last) {
            (Some(f), Some(l)) => (
                bucket_low(f).clamp(self.min, self.max),
                bucket_high(l).clamp(self.min, self.max),
            ),
            _ => (self.min, self.max),
        };
        let quantile = |q: f64| {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for i in 0..n {
                seen += delta(i);
                if seen >= rank {
                    return bucket_high(i).clamp(min, max);
                }
            }
            max
        };
        WindowStats {
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p99: quantile(0.99),
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding that rank, clamped into `[min, max]` — so the
    /// result is never below the true quantile and overshoots it by
    /// at most a factor `2^-PRECISION` (6.25%). `quantile(1.0)`
    /// returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Arithmetic mean (exact; the sum is tracked outside the
    /// buckets). 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The interval histogram between `prev` (an earlier snapshot of
    /// the same histogram) and `self`: bucket counts, `count` and
    /// `sum` are exact saturating differences. `min`/`max` are
    /// *approximate* for the window — a histogram does not retain
    /// per-sample order, so they are reconstructed from the bounds of
    /// the first/last bucket that gained samples, clamped into
    /// `[self.min, self.max]`. `since` of an identical snapshot is
    /// exactly empty.
    pub fn since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_sub(prev.counts.get(i).copied().unwrap_or(0)))
            .collect();
        let count = self.count.saturating_sub(prev.count);
        let (min, max) = if count == 0 {
            (0, 0)
        } else {
            let first = counts.iter().position(|&c| c > 0);
            let last = counts.iter().rposition(|&c| c > 0);
            match (first, last) {
                (Some(f), Some(l)) => (
                    bucket_low(f).clamp(self.min, self.max),
                    bucket_high(l).clamp(self.min, self.max),
                ),
                // racing snapshot fields: fall back to cumulative
                _ => (self.min, self.max),
            }
        };
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.saturating_sub(prev.sum),
            min,
            max,
        }
    }

    /// Merge `other` into `self` bucket-wise, as if both histograms'
    /// samples had been recorded into one. Used by the OpenMetrics
    /// renderer to aggregate same-named sites registered from
    /// different code locations into a single family.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
            .collect()
    }
}

/// Interval aggregates of one histogram over a collection window
/// (see [`HistogramSnapshot::window_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Samples recorded during the window.
    pub count: u64,
    /// Sum of values recorded during the window.
    pub sum: u64,
    /// Lower bound of the smallest bucket that gained samples.
    pub min: u64,
    /// Upper bound of the largest bucket that gained samples.
    pub max: u64,
    /// Window median (bucket upper bound, like
    /// [`HistogramSnapshot::quantile`]).
    pub p50: u64,
    /// Window 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // lows are strictly increasing and index/low round-trip
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let low = bucket_low(i);
            if let Some(p) = prev {
                assert!(low > p, "bucket {i} low {low} after {p}");
            }
            prev = Some(low);
            assert_eq!(bucket_index(low), i, "low of bucket {i}");
            assert_eq!(bucket_index(bucket_high(i)), i, "high of bucket {i}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in 2 * SUB..NUM_BUCKETS {
            let low = bucket_low(i);
            let width = bucket_high(i) - low;
            // width/low ≤ 2^-P (width is low >> P, possibly minus 1)
            assert!(
                (width as f64) / (low as f64) <= 1.0 / (SUB as f64) + 1e-12,
                "bucket {i}: low {low} width {width}"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 32);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 31);
        assert_eq!(s.quantile(1.0), 31);
        assert!((s.mean() - 15.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_track_exact_within_bucket_error() {
        // synthetic data with a known exact distribution: 1..=100_000
        let h = Histogram::new();
        let n = 100_000u64;
        for v in 1..=n {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, n);
        for &q in &[0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = ((q * n as f64).ceil() as u64).clamp(1, n);
            let approx = s.quantile(q);
            assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            let bound = exact as f64 * (1.0 / SUB as f64) + 1.0;
            assert!(
                (approx - exact) as f64 <= bound,
                "q={q}: approx {approx} exact {exact} bound {bound}"
            );
        }
        assert_eq!(s.quantile(1.0), n, "max is exact");
        assert!((s.mean() - (n + 1) as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn merge_totals_are_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=1000u64 {
            a.record(v);
        }
        for v in 500..=2000u64 {
            b.record(v * 3);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        a.merge(&b);
        let m = a.snapshot();
        assert_eq!(m.count, sa.count + sb.count);
        assert_eq!(m.sum, sa.sum + sb.sum);
        assert_eq!(m.min, sa.min.min(sb.min));
        assert_eq!(m.max, sa.max.max(sb.max));
        // bucket-wise: merged quantiles consistent with the pooled data
        assert!(m.quantile(1.0) == m.max);
        // merging an empty histogram changes nothing
        let before = a.snapshot();
        a.merge(&Histogram::new());
        let after = a.snapshot();
        assert_eq!(after.count, before.count);
        assert_eq!(after.sum, before.sum);
        assert_eq!(after.min, before.min);
        assert_eq!(after.max, before.max);
    }

    #[test]
    fn since_of_identical_snapshot_is_zero() {
        let h = Histogram::new();
        for v in [3u64, 17, 4096, 99_999] {
            h.record(v);
        }
        let s = h.snapshot();
        let d = s.since(&s.clone());
        assert_eq!(d.count, 0);
        assert_eq!(d.sum, 0);
        assert_eq!(d.min, 0);
        assert_eq!(d.max, 0);
        assert!(d.nonzero_buckets().is_empty());
        assert_eq!(d.quantile(0.99), 0);
    }

    #[test]
    fn since_isolates_the_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(1_000_000);
        let prev = h.snapshot();
        for v in [200u64, 300, 400] {
            h.record(v);
        }
        let d = h.snapshot().since(&prev);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 900);
        // min/max reconstructed from the buckets that gained samples:
        // within one bucket width of the true window extrema
        assert!(d.min <= 200 && d.min >= 10, "window min {}", d.min);
        assert!(d.max >= 400 && d.max <= 427, "window max {}", d.max);
        assert!((d.mean() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn since_misordered_degrades_to_empty() {
        // prev newer than self: every field must saturate to an empty
        // window consistently (no wrapped sum alongside a zero count)
        let h = Histogram::new();
        h.record(100);
        let old = h.snapshot();
        h.record(200);
        let new = h.snapshot();
        let d = old.since(&new);
        assert_eq!(d.count, 0);
        assert_eq!(d.sum, 0);
        assert_eq!((d.min, d.max), (0, 0));
        assert!(d.nonzero_buckets().is_empty());
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let h = Histogram::new();
        for v in [1u64, 5, 900, 77_777] {
            h.record(v);
        }
        let mut out = HistogramSnapshot::empty();
        h.snapshot_into(&mut out);
        let s = h.snapshot();
        assert_eq!(out.count, s.count);
        assert_eq!(out.sum, s.sum);
        assert_eq!(out.min, s.min);
        assert_eq!(out.max, s.max);
        assert_eq!(out.nonzero_buckets(), s.nonzero_buckets());
        // reuse: a second fill tracks new samples in place
        h.record(12);
        h.snapshot_into(&mut out);
        assert_eq!(out.count, 5);
    }

    #[test]
    fn window_stats_match_since() {
        let h = Histogram::new();
        h.record(10);
        h.record(1_000_000);
        let prev = h.snapshot();
        for v in [200u64, 300, 400, 50_000] {
            h.record(v);
        }
        let cur = h.snapshot();
        let w = cur.window_stats(&prev);
        let d = cur.since(&prev);
        assert_eq!(w.count, d.count);
        assert_eq!(w.sum, d.sum);
        assert_eq!(w.min, d.min);
        assert_eq!(w.max, d.max);
        assert_eq!(w.p50, d.quantile(0.50));
        assert_eq!(w.p99, d.quantile(0.99));
        // empty window
        let z = cur.window_stats(&cur.clone());
        assert_eq!(z, WindowStats::default());
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(7);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.quantile(0.5), 0);
    }
}
