//! Bounded ring-buffer event log behind the trace exporters.
//!
//! Completed spans push one [`TraceEvent`] here. The buffer is
//! preallocated by [`crate::enable`]; once full it overwrites its
//! oldest entry and counts the overwrite, so tracing a long run costs
//! bounded memory and keeps the most recent window.

use std::sync::Mutex;

/// What one [`TraceEvent`] represents in the Chrome trace model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span (`ph:"X"`).
    Complete,
    /// The sending half of a cross-thread flow link (`ph:"s"`).
    FlowStart,
    /// The receiving half of a cross-thread flow link (`ph:"f"`).
    FlowEnd,
}

/// One completed span occurrence (or flow-link half), on the
/// [`crate::now_ns`] clock.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Span name (e.g. `plan.numeric`).
    pub name: &'static str,
    /// Span category/layer (e.g. `plan`).
    pub cat: &'static str,
    /// Thread id from [`crate::current_tid`].
    pub tid: u64,
    /// Span start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Request trace this event belongs to
    /// ([`crate::TraceCtx::trace_id`]); 0 for events recorded outside
    /// any request scope.
    pub trace_id: u64,
    /// Process-unique id of this span (or flow link); 0 when
    /// untraced.
    pub span_id: u64,
    /// Span id of the enclosing traced span at emit time; 0 for trace
    /// roots and untraced events.
    pub parent_id: u64,
    /// Complete span vs flow-link half.
    pub kind: EventKind,
}

impl TraceEvent {
    /// A complete event with no request context (the shape every
    /// span recorded outside a [`crate::ctx_scope`] takes).
    pub const fn untraced(
        name: &'static str,
        cat: &'static str,
        tid: u64,
        start_ns: u64,
        dur_ns: u64,
    ) -> Self {
        TraceEvent {
            name,
            cat,
            tid,
            start_ns,
            dur_ns,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            kind: EventKind::Complete,
        }
    }
}

struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to overwrite once `buf.len() == cap`.
    next: usize,
    overwritten: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    buf: Vec::new(),
    cap: 0,
    next: 0,
    overwritten: 0,
});

fn lock() -> std::sync::MutexGuard<'static, Ring> {
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

/// Allocate the ring if it has no capacity yet (keeps an existing
/// allocation and its contents).
pub(crate) fn provision(capacity: usize) {
    let mut r = lock();
    if r.cap == 0 && capacity > 0 {
        r.cap = capacity;
        r.buf.reserve_exact(capacity);
    }
}

pub(crate) fn push(ev: TraceEvent) {
    let mut r = lock();
    if r.cap == 0 {
        r.overwritten += 1;
        return;
    }
    if r.buf.len() < r.cap {
        r.buf.push(ev);
    } else {
        let i = r.next;
        r.buf[i] = ev;
        r.next = (i + 1) % r.cap;
        r.overwritten += 1;
    }
}

pub(crate) fn clear() {
    let mut r = lock();
    r.buf.clear();
    r.next = 0;
    r.overwritten = 0;
}

/// The retained trace events, oldest first (spans are logged on
/// exit, so the order is by span *end* time).
pub fn trace_events() -> Vec<TraceEvent> {
    let r = lock();
    if r.buf.len() < r.cap || r.next == 0 {
        r.buf.clone()
    } else {
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }
}

/// Events evicted (or discarded for lack of a provisioned ring) since
/// the last [`crate::reset`].
pub fn trace_overwritten() -> u64 {
    lock().overwritten
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start_ns: u64) -> TraceEvent {
        TraceEvent::untraced("t", "test", 1, start_ns, 1)
    }

    #[test]
    fn wraps_oldest_first() {
        // the ring is process-global: serialize against other tests
        let _l = crate::test_lock();
        crate::disable();
        clear();
        let mut r = lock();
        if r.cap == 0 {
            r.cap = 4;
            r.buf.reserve_exact(4);
        }
        let cap = r.cap;
        drop(r);
        for i in 0..(cap as u64 + 2) {
            push(ev(i));
        }
        let got = trace_events();
        assert_eq!(got.len(), cap);
        let starts: Vec<u64> = got.iter().map(|e| e.start_ns).collect();
        let expect: Vec<u64> = (2..cap as u64 + 2).collect();
        assert_eq!(starts, expect, "oldest entries were overwritten");
        assert_eq!(trace_overwritten(), 2);
        clear();
        assert!(trace_events().is_empty());
    }
}
