//! OpenMetrics / Prometheus text exposition over the global registry.
//!
//! [`render`] produces a complete scrape page: every registered
//! counter (`*_total`), gauge, span (calls/ns counters + max gauge)
//! and histogram (classic cumulative `_bucket{le="..."}` series built
//! from the log-bucketed [`crate::Histogram`]'s exact bucket bounds,
//! with `+Inf` == `_count`). Subsystems with metrics outside the
//! registry append their own families through the `append_*` helpers
//! (that is how serve exports per-tenant latency and SLO series), and
//! [`validate`] is a strict structural checker used by the tests and
//! the `spgemm-obs` smoke gate: `# TYPE` before samples, known family
//! for every sample, monotone buckets, `+Inf` equal to `_count`, and
//! a final `# EOF`.
//!
//! Everything is hand-rolled `std`: the crate stays dependency-free.

use crate::hist::{bucket_high, bucket_index, HistogramSnapshot};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Prefix applied to every registry-derived metric family.
pub const NAME_PREFIX: &str = "spgemm_";

/// A metric name made exposition-safe: `[a-zA-Z0-9_:]` kept, every
/// other byte mapped to `_`, prefixed with `_` if it would start with
/// a digit.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        escape_label(v, out);
        out.push('"');
    }
    out.push('}');
}

/// Append a `# TYPE` line for family `name` (already sanitized).
pub fn append_type(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Append one counter sample `name_total{labels} value`.
pub fn append_counter(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    out.push_str("_total");
    write_labels(out, labels);
    let _ = writeln!(out, " {value}");
}

/// Append one gauge sample `name{labels} value`.
pub fn append_gauge(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    write_labels(out, labels);
    if value == value.trunc() && value.abs() < 1e15 {
        let _ = writeln!(out, " {}", value as i64);
    } else {
        let _ = writeln!(out, " {value}");
    }
}

/// Append one histogram's full series — cumulative `_bucket` samples
/// over the snapshot's non-empty buckets (each `le` is that bucket's
/// exact inclusive upper bound), the `+Inf` bucket, `_sum` and
/// `_count`. The caller emits the `# TYPE name histogram` line once
/// per family.
pub fn append_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (low, count) in snap.nonzero_buckets() {
        cumulative += count;
        out.push_str(name);
        out.push_str("_bucket");
        let le = bucket_high(bucket_index(low));
        write_labels_with_le(out, labels, le);
        let _ = writeln!(out, " {cumulative}");
    }
    out.push_str(name);
    out.push_str("_bucket");
    write_labels_with_inf(out, labels);
    let _ = writeln!(out, " {}", snap.count);
    out.push_str(name);
    out.push_str("_sum");
    write_labels(out, labels);
    let _ = writeln!(out, " {}", snap.sum);
    out.push_str(name);
    out.push_str("_count");
    write_labels(out, labels);
    let _ = writeln!(out, " {}", snap.count);
}

fn write_labels_with_le(out: &mut String, labels: &[(&str, &str)], le: u64) {
    out.push('{');
    for (k, v) in labels {
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        escape_label(v, out);
        out.push_str("\",");
    }
    let _ = write!(out, "le=\"{le}\"}}");
}

fn write_labels_with_inf(out: &mut String, labels: &[(&str, &str)]) {
    out.push('{');
    for (k, v) in labels {
        out.push_str(&sanitize_name(k));
        out.push_str("=\"");
        escape_label(v, out);
        out.push_str("\",");
    }
    out.push_str("le=\"+Inf\"}");
}

/// Group registry entries by sanitized family, then by `cat` within
/// each family, merging values with `fold`. Same-named sites (the
/// same `span!`/site name used at two code locations) are one logical
/// metric — they must collapse into a single family, or the page
/// would declare a duplicate `# TYPE`. First-seen order is kept so
/// pages stay stable across scrapes.
fn group_by_family<S, V>(
    stats: Vec<S>,
    name: fn(&S) -> &str,
    cat: fn(&S) -> &'static str,
    value: fn(&S) -> V,
    fold: fn(&mut V, V),
) -> Vec<(String, Vec<(&'static str, V)>)> {
    let mut fams: Vec<(String, Vec<(&'static str, V)>)> = Vec::new();
    for s in stats {
        let fam = format!("{NAME_PREFIX}{}", sanitize_name(name(&s)));
        let cats = match fams.iter_mut().find(|(f, _)| *f == fam) {
            Some((_, cats)) => cats,
            None => {
                fams.push((fam, Vec::new()));
                &mut fams.last_mut().expect("just pushed").1
            }
        };
        match cats.iter_mut().find(|(c, _)| *c == cat(&s)) {
            Some((_, v)) => fold(v, value(&s)),
            None => cats.push((cat(&s), value(&s))),
        }
    }
    fams
}

/// Render every registered site into `out`, without the trailing
/// `# EOF` (so callers can append their own families first).
pub fn render_registry_into(out: &mut String) {
    for (fam, cats) in group_by_family(
        crate::counter_stats(),
        |c| c.name,
        |c| c.cat,
        |c| c.value,
        |a, b| *a += b,
    ) {
        append_type(out, &fam, "counter");
        for (cat, value) in cats {
            append_counter(out, &fam, &[("cat", cat)], value);
        }
    }
    for (fam, cats) in group_by_family(
        crate::gauge_stats(),
        |g| g.name,
        |g| g.cat,
        |g| g.value,
        |a, b| *a += b,
    ) {
        append_type(out, &fam, "gauge");
        for (cat, value) in cats {
            append_gauge(out, &fam, &[("cat", cat)], value as f64);
        }
    }
    for (base, cats) in group_by_family(
        crate::span_stats(),
        |s| s.name,
        |s| s.cat,
        |s| (s.count, s.total_ns, s.max_ns),
        |a, b| {
            a.0 += b.0;
            a.1 += b.1;
            a.2 = a.2.max(b.2);
        },
    ) {
        let calls = format!("{base}_calls");
        append_type(out, &calls, "counter");
        for (cat, (count, _, _)) in &cats {
            append_counter(out, &calls, &[("cat", cat)], *count);
        }
        let ns = format!("{base}_ns");
        append_type(out, &ns, "counter");
        for (cat, (_, total_ns, _)) in &cats {
            append_counter(out, &ns, &[("cat", cat)], *total_ns);
        }
        let max = format!("{base}_max_ns");
        append_type(out, &max, "gauge");
        for (cat, (_, _, max_ns)) in &cats {
            append_gauge(out, &max, &[("cat", cat)], *max_ns as f64);
        }
    }
    for (fam, cats) in group_by_family(
        crate::histogram_stats(),
        |h| h.name,
        |h| h.cat,
        |h| h.snapshot.clone(),
        |a, b| a.absorb(&b),
    ) {
        append_type(out, &fam, "histogram");
        for (cat, snap) in cats {
            append_histogram(out, &fam, &[("cat", cat)], &snap);
        }
    }
}

/// The complete scrape page for the registry, `# EOF`-terminated.
pub fn render() -> String {
    let mut out = String::new();
    render_registry_into(&mut out);
    out.push_str("# EOF\n");
    out
}

// ---- structural validator -------------------------------------------------

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            return Ok(out);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value: {rest}"));
        }
        let mut val = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => val.push('\n'),
                    Some((_, c2)) => val.push(c2),
                    None => return Err("dangling escape".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {rest}"))?;
        out.push((key, val));
        rest = &after[1 + end + 1..];
    }
}

struct Sample {
    family: String,
    suffix: &'static str,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str, families: &HashMap<String, String>) -> Result<Sample, String> {
    let (id, value_str) = match line.rfind('}') {
        Some(close) => {
            let v = line[close + 1..].trim();
            (&line[..close + 1], v)
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| format!("no value: {line}"))?;
            (&line[..sp], line[sp + 1..].trim())
        }
    };
    let value: f64 = match value_str.split(' ').next().unwrap_or("") {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|_| format!("bad sample value {v:?}: {line}"))?,
    };
    let (name, labels) = match id.find('{') {
        Some(open) => {
            if !id.ends_with('}') {
                return Err(format!("unterminated label set: {line}"));
            }
            (&id[..open], parse_labels(&id[open + 1..id.len() - 1])?)
        }
        None => (id, Vec::new()),
    };
    for (family, suffix) in suffix_candidates(name) {
        if let Some(kind) = families.get(&family) {
            let ok = match kind.as_str() {
                "counter" => suffix == "_total",
                "gauge" | "unknown" | "untyped" => suffix.is_empty(),
                "histogram" => matches!(suffix, "_bucket" | "_sum" | "_count"),
                _ => true,
            };
            if ok {
                return Ok(Sample {
                    family,
                    suffix,
                    labels,
                    value,
                });
            }
        }
    }
    Err(format!("sample before/without its # TYPE line: {line}"))
}

fn suffix_candidates(name: &str) -> Vec<(String, &'static str)> {
    let mut out = vec![(name.to_string(), "")];
    for suffix in ["_total", "_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            out.push((stripped.to_string(), suffix));
        }
    }
    out
}

/// Validate the structure of an exposition page: every sample's
/// family is declared by an earlier `# TYPE` line with a suffix legal
/// for that type; per labelset, histogram `_bucket` series have
/// strictly increasing `le` with non-decreasing cumulative counts and
/// a `+Inf` bucket equal to `_count`; the page ends with `# EOF`.
pub fn validate(text: &str) -> Result<(), String> {
    let mut families: HashMap<String, String> = HashMap::new();
    // (family, labels-minus-le) -> ordered (le, cumulative) + _count
    #[derive(Default)]
    struct HistCheck {
        buckets: Vec<(f64, f64)>,
        count: Option<f64>,
    }
    let mut hists: HashMap<(String, String), HistCheck> = HashMap::new();
    let mut saw_eof = false;
    for raw in text.lines() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if saw_eof {
            return Err(format!("content after # EOF: {line}"));
        }
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim_start();
            if meta == "EOF" {
                saw_eof = true;
            } else if let Some(rest) = meta.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or("empty # TYPE")?.to_string();
                let kind = it.next().ok_or("missing # TYPE kind")?.to_string();
                if families.insert(name.clone(), kind).is_some() {
                    return Err(format!("duplicate # TYPE for {name}"));
                }
            }
            continue;
        }
        let s = parse_sample(line, &families)?;
        if families.get(&s.family).map(String::as_str) == Some("histogram") {
            let mut key = String::new();
            let mut le = None;
            for (k, v) in &s.labels {
                if k == "le" {
                    le = Some(v.clone());
                } else {
                    let _ = write!(key, "{k}={v};");
                }
            }
            let entry = hists.entry((s.family.clone(), key)).or_default();
            match s.suffix {
                "_bucket" => {
                    let le = le.ok_or_else(|| format!("_bucket without le: {line}"))?;
                    let bound = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().map_err(|_| format!("bad le {le:?}: {line}"))?
                    };
                    entry.buckets.push((bound, s.value));
                }
                "_count" => entry.count = Some(s.value),
                _ => {}
            }
        }
    }
    if !saw_eof {
        return Err("missing # EOF terminator".into());
    }
    for ((family, labels), check) in &hists {
        let b = &check.buckets;
        if b.is_empty() {
            return Err(format!("histogram {family}{{{labels}}} has no buckets"));
        }
        for w in b.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "histogram {family}{{{labels}}}: le not increasing ({} after {})",
                    w[1].0, w[0].0
                ));
            }
            if w[1].1 < w[0].1 {
                return Err(format!(
                    "histogram {family}{{{labels}}}: bucket counts decrease ({} after {})",
                    w[1].1, w[0].1
                ));
            }
        }
        let last = b[b.len() - 1];
        if last.0 != f64::INFINITY {
            return Err(format!("histogram {family}{{{labels}}}: no +Inf bucket"));
        }
        match check.count {
            Some(c) if c == last.1 => {}
            Some(c) => {
                return Err(format!(
                    "histogram {family}{{{labels}}}: +Inf {} != _count {c}",
                    last.1
                ));
            }
            None => return Err(format!("histogram {family}{{{labels}}}: no _count")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn registry_page_validates() {
        let _l = crate::test_lock();
        crate::enable_with_capacity(0);
        crate::reset();
        static C: crate::CounterSite = crate::CounterSite::new("om", "om.ctr");
        static G: crate::GaugeSite = crate::GaugeSite::new("om", "om.gauge");
        static H: crate::HistogramSite = crate::HistogramSite::new("om", "om.hist");
        C.add(3);
        G.set(-2);
        for v in [1u64, 50, 3000, 70_000] {
            H.record(v);
        }
        {
            let _g = crate::span!("om", "om.phase");
        }
        crate::disable();
        let page = render();
        validate(&page).unwrap_or_else(|e| panic!("{e}\n---\n{page}"));
        assert!(page.contains("# TYPE spgemm_om_ctr counter"), "{page}");
        assert!(page.contains("spgemm_om_ctr_total{cat=\"om\"} 3"), "{page}");
        assert!(page.contains("spgemm_om_gauge{cat=\"om\"} -2"), "{page}");
        assert!(page.contains("spgemm_om_hist_bucket"), "{page}");
        assert!(page.contains("le=\"+Inf\"} 4"), "{page}");
        assert!(
            page.contains("spgemm_om_hist_count{cat=\"om\"} 4"),
            "{page}"
        );
        assert!(page.contains("spgemm_om_phase_calls_total"), "{page}");
        assert!(page.ends_with("# EOF\n"), "{page}");
        crate::reset();
    }

    #[test]
    fn append_histogram_is_cumulative_and_exact() {
        let h = Histogram::new();
        for v in [2u64, 2, 9, 1_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        append_type(&mut out, "x", "histogram");
        append_histogram(&mut out, "x", &[("tenant", "a\"b\n")], &h.snapshot());
        validate(&format!("{out}# EOF\n")).unwrap_or_else(|e| panic!("{e}\n---\n{out}"));
        assert!(out.contains("le=\"2\"} 2"), "{out}");
        assert!(out.contains("le=\"9\"} 3"), "{out}");
        assert!(out.contains("le=\"+Inf\"} 4"), "{out}");
        assert!(out.contains("x_sum{tenant=\"a\\\"b\\n\"} 1000013"), "{out}");
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        // sample before its TYPE line
        assert!(validate("a_total 1\n# TYPE a counter\n# EOF\n").is_err());
        // suffix illegal for the declared type
        assert!(validate("# TYPE a counter\na 1\n# EOF\n").is_err());
        // missing EOF
        assert!(validate("# TYPE a counter\na_total 1\n").is_err());
        // +Inf != _count
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                   h_sum 3\nh_count 3\n# EOF\n";
        assert!(validate(bad).is_err());
        // non-monotone buckets
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 4\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n# EOF\n";
        assert!(validate(bad).is_err());
        // well-formed minimal page
        let ok = "# TYPE a counter\na_total{cat=\"x\"} 1\n# TYPE h histogram\n\
                  h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n# EOF\n";
        validate(ok).unwrap();
    }
}
