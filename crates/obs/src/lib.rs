//! Stack-wide instrumentation for the SpGEMM workspace: span-based
//! phase timing, log-bucketed histograms, atomic counters, a bounded
//! ring-buffer event log, and request-scoped causal tracing
//! ([`TraceCtx`]) with a tail-sampling exemplar store, behind one
//! process-global registry.
//!
//! # Design constraints
//!
//! The paper's argument is made of phase-level breakdowns — symbolic
//! vs numeric cost, per-kernel profiles, accumulator behavior by row
//! length — so every hot layer of this workspace (plan, expr, dist,
//! serve) carries permanent instrumentation points. That is only
//! acceptable if the *disabled* path costs nothing:
//!
//! * **Zero overhead when disabled.** Every instrumentation entry
//!   point is an `#[inline]` function whose first action is one
//!   relaxed load of a process-global [`AtomicBool`]; when it reads
//!   `false` the function returns immediately, performing **zero heap
//!   allocations** and no clock reads (proven by the
//!   counting-allocator test in `tests/zero_alloc.rs`, the same
//!   technique as `plan_zero_alloc.rs` in `spgemm`).
//! * **No dependencies.** The crate is std-only; it can never pull a
//!   cost or a version conflict into the kernels it instruments.
//! * **Fixed footprint when enabled.** Histograms are log-bucketed
//!   arrays of atomics (no samples retained, see [`Histogram`]); the
//!   event log is a bounded ring that overwrites its oldest entry
//!   (see [`trace_events`]); per-callsite aggregates are three
//!   atomics; the active-trace table and the per-tenant exemplar
//!   store are preallocated fixed-size slabs ([`MAX_ACTIVE_TRACES`],
//!   [`EXEMPLARS_PER_GROUP`]). Nothing grows with job count.
//!
//! # Usage
//!
//! Callsites are `static`s so the hot path never hashes a name:
//!
//! ```
//! // a timed phase: the guard records on drop
//! let _g = spgemm_obs::span!("plan", "plan.numeric");
//!
//! // a counter
//! static CACHE_HITS: spgemm_obs::CounterSite =
//!     spgemm_obs::CounterSite::new("plan", "plan.cache_hits");
//! CACHE_HITS.incr();
//! ```
//!
//! Turn collection on with [`enable`], then export with
//! [`text_report`], [`json_snapshot`] or [`chrome_trace`] (the last
//! loads directly into `chrome://tracing` / Perfetto).
//!
//! ```
//! spgemm_obs::enable();
//! {
//!     let _g = spgemm_obs::span!("demo", "demo.work");
//! }
//! let trace = spgemm_obs::chrome_trace();
//! assert!(trace.contains("\"demo.work\""));
//! spgemm_obs::disable();
//! # spgemm_obs::reset();
//! ```

#![warn(missing_docs)]

mod export;
mod hist;
pub mod http;
pub mod openmetrics;
mod ring;
mod site;
pub mod timeseries;
mod trace;

pub use export::{
    chrome_trace, chrome_trace_for, counter_stats, coverage_by_site, gauge_stats, histogram_stats,
    json_snapshot, span_coverage, span_stats, text_report, CounterStat, GaugeStat, HistogramStat,
    SiteCoverage, SpanStat,
};
pub use hist::{bucket_high, bucket_index, bucket_low, Histogram, HistogramSnapshot, WindowStats};
pub use hist::{NUM_BUCKETS, PRECISION};
pub use ring::{trace_events, trace_overwritten, EventKind, TraceEvent};
pub use site::{CounterSite, GaugeSite, HistogramSite, SpanGuard, SpanSite};
pub use trace::{
    ctx_scope, current_ctx, exemplar_for, exemplars, finish_request, flow_out,
    roll_exemplar_window, trace_unsampled, CtxScope, ExemplarTrace, FlowLink, TraceCtx,
    EXEMPLARS_PER_GROUP, MAX_ACTIVE_TRACES, MAX_EXEMPLAR_GROUPS, MAX_TRACE_SPANS,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of ring-buffer trace events [`enable`] provisions when no
/// explicit capacity was requested (~3.7 MB).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Whether instrumentation is collecting. One relaxed atomic load;
/// every instrumentation entry point checks this first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start collecting spans, counters and histograms, provisioning the
/// trace ring at [`DEFAULT_TRACE_CAPACITY`] events if it has no
/// capacity yet. Idempotent.
pub fn enable() {
    enable_with_capacity(DEFAULT_TRACE_CAPACITY);
}

/// [`enable`] with an explicit trace-ring capacity (events). A
/// capacity of 0 keeps aggregates and histograms but records no trace
/// events. An already-provisioned ring keeps its capacity.
pub fn enable_with_capacity(capacity: usize) {
    let _ = epoch();
    ring::provision(capacity);
    trace::provision();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop collecting. Collected data stays readable (reports, trace
/// export) until [`reset`]; spans already entered still record their
/// exit so the trace has no half-open intervals.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Zero every registered span/counter/histogram, clear the trace ring
/// (its capacity is kept), release every active-trace slot, and drop
/// all retained exemplars. Callsites stay registered.
pub fn reset() {
    site::reset_all();
    ring::clear();
    trace::reset_all();
}

/// Nanoseconds since the process-local trace epoch (first [`enable`]
/// or first call of this function). All [`TraceEvent`] timestamps are
/// on this clock.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Stable small integer identifying the calling thread in trace
/// events (assigned on first use, starting at 1).
pub fn current_tid() -> u64 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn ns_since_epoch(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos() as u64)
}

/// Enter a span against a `static` callsite declared in place.
///
/// Both arguments must be string literals (`category`, `name`). The
/// expansion is a `static` [`SpanSite`] plus one [`SpanSite::enter`]
/// call; bind the returned guard (`let _g = ...`) so it lives to the
/// end of the phase — binding to `_` drops it immediately.
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {{
        static SITE: $crate::SpanSite = $crate::SpanSite::new($cat, $name);
        SITE.enter()
    }};
}

/// Serializes unit tests that touch the process-global enable flag,
/// registry, or trace ring (the harness runs tests in parallel).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_stable_and_distinct() {
        let here = current_tid();
        assert_eq!(here, current_tid());
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
