//! Static instrumentation callsites and the process-global registry.
//!
//! A callsite is a `static` ([`SpanSite`], [`CounterSite`],
//! [`HistogramSite`]) declared where the instrumented code lives, so
//! the hot path touches a known address instead of hashing a name.
//! Each site lazily registers its `&'static self` in a global list on
//! first use while enabled; the exporters iterate that list.

use crate::hist::Histogram;
use crate::ring::{self, TraceEvent};
use crate::trace::{self, OpenSpan};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub(crate) struct Registry {
    pub(crate) spans: Mutex<Vec<&'static SpanSite>>,
    pub(crate) counters: Mutex<Vec<&'static CounterSite>>,
    pub(crate) gauges: Mutex<Vec<&'static GaugeSite>>,
    pub(crate) hists: Mutex<Vec<&'static HistogramSite>>,
}

pub(crate) static REGISTRY: Registry = Registry {
    spans: Mutex::new(Vec::new()),
    counters: Mutex::new(Vec::new()),
    gauges: Mutex::new(Vec::new()),
    hists: Mutex::new(Vec::new()),
};

pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Zero every registered site (registration is kept).
pub(crate) fn reset_all() {
    for s in lock(&REGISTRY.spans).iter() {
        s.count.store(0, Ordering::Relaxed);
        s.total_ns.store(0, Ordering::Relaxed);
        s.max_ns.store(0, Ordering::Relaxed);
    }
    for c in lock(&REGISTRY.counters).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in lock(&REGISTRY.gauges).iter() {
        g.value.store(0, Ordering::Relaxed);
    }
    for h in lock(&REGISTRY.hists).iter() {
        h.hist.reset();
    }
}

/// A named, categorized timing callsite. Declare as a `static` (or
/// use the [`crate::span!`] macro); [`SpanSite::enter`] returns a
/// guard that records duration and a trace event on drop.
pub struct SpanSite {
    name: &'static str,
    cat: &'static str,
    registered: AtomicBool,
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
}

impl SpanSite {
    /// A new callsite under `cat` (layer) named `name`.
    pub const fn new(cat: &'static str, name: &'static str) -> Self {
        SpanSite {
            name,
            cat,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Span name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Span category (layer).
    pub fn cat(&self) -> &'static str {
        self.cat
    }

    /// Enter the span. When instrumentation is disabled this is one
    /// relaxed load and an all-`None` guard: no clock read, no
    /// allocation, no registry traffic.
    #[inline]
    pub fn enter(&'static self) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                active: None,
                traced: None,
            };
        }
        self.enter_enabled()
    }

    #[cold]
    fn enter_enabled(&'static self) -> SpanGuard {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY.spans).push(self);
        }
        SpanGuard {
            traced: trace::begin_span(),
            active: Some((self, Instant::now())),
        }
    }

    fn exit(&'static self, start: Instant, traced: Option<OpenSpan>) {
        let dur_ns = start.elapsed().as_nanos() as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
        let ev = TraceEvent::untraced(
            self.name,
            self.cat,
            crate::current_tid(),
            crate::ns_since_epoch(start),
            dur_ns,
        );
        match traced {
            // joins the thread's active request trace: id-stamped and
            // recorded into both the ring and the trace's slot
            Some(open) => trace::end_span(open, ev),
            None => ring::push(ev),
        }
    }

    /// `(count, total_ns, max_ns)` aggregates recorded so far.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// RAII guard returned by [`SpanSite::enter`]; records on drop. Spans
/// that were open when instrumentation was disabled still record, so
/// traces have no half-open intervals.
#[must_use = "binding to `_` drops the guard immediately; use `let _g = ...`"]
pub struct SpanGuard {
    active: Option<(&'static SpanSite, Instant)>,
    traced: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((site, start)) = self.active.take() {
            site.exit(start, self.traced.take());
        }
    }
}

/// A named monotonic counter callsite. Declare as a `static`.
pub struct CounterSite {
    name: &'static str,
    cat: &'static str,
    registered: AtomicBool,
    pub(crate) value: AtomicU64,
}

impl CounterSite {
    /// A new counter under `cat` named `name`.
    pub const fn new(cat: &'static str, name: &'static str) -> Self {
        CounterSite {
            name,
            cat,
            registered: AtomicBool::new(false),
            value: AtomicU64::new(0),
        }
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Counter category (layer).
    pub fn cat(&self) -> &'static str {
        self.cat
    }

    /// Add `n`. When disabled: one relaxed load, nothing else.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.add_enabled(n);
    }

    /// Add 1 (subject to the enable flag, like [`CounterSite::add`]).
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    #[cold]
    fn add_enabled(&'static self, n: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY.counters).push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named instantaneous-value callsite: a signed level that can be
/// `set` to an absolute reading or moved with `add`/`sub` deltas
/// (queue depths, busy workers, cache entries, in-flight products).
/// Declare as a `static`; self-registers like [`SpanSite`] on first
/// use while enabled, and the disabled path is one relaxed load.
///
/// Gauges only observe changes made while instrumentation is enabled:
/// a level that moved while disabled is re-synced the next time its
/// owner calls `set`, and delta-maintained gauges (`add`/`sub`) read 0
/// until their subsystem quiesces after enabling.
pub struct GaugeSite {
    name: &'static str,
    cat: &'static str,
    registered: AtomicBool,
    pub(crate) value: AtomicI64,
}

impl GaugeSite {
    /// A new gauge under `cat` named `name`.
    pub const fn new(cat: &'static str, name: &'static str) -> Self {
        GaugeSite {
            name,
            cat,
            registered: AtomicBool::new(false),
            value: AtomicI64::new(0),
        }
    }

    /// Gauge name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Gauge category (layer).
    pub fn cat(&self) -> &'static str {
        self.cat
    }

    /// Set the absolute level. When disabled: one relaxed load only.
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.set_enabled(v);
    }

    /// Move the level by a signed delta (subject to the enable flag).
    #[inline]
    pub fn add(&'static self, d: i64) {
        if !crate::enabled() {
            return;
        }
        self.add_enabled(d);
    }

    /// Shorthand for `add(-d)`.
    #[inline]
    pub fn sub(&'static self, d: i64) {
        self.add(-d);
    }

    #[cold]
    fn set_enabled(&'static self, v: i64) {
        self.register();
        self.value.store(v, Ordering::Relaxed);
    }

    #[cold]
    fn add_enabled(&'static self, d: i64) {
        self.register();
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY.gauges).push(self);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named histogram callsite (a `static` [`Histogram`] that
/// self-registers and obeys the global enable flag). For always-on
/// histograms owned by a subsystem — like serve's per-tenant latency
/// recorders — use [`Histogram`] directly instead.
pub struct HistogramSite {
    name: &'static str,
    cat: &'static str,
    registered: AtomicBool,
    pub(crate) hist: Histogram,
}

impl HistogramSite {
    /// A new histogram site under `cat` named `name`.
    pub const fn new(cat: &'static str, name: &'static str) -> Self {
        HistogramSite {
            name,
            cat,
            registered: AtomicBool::new(false),
            hist: Histogram::new(),
        }
    }

    /// Histogram name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Histogram category (layer).
    pub fn cat(&self) -> &'static str {
        self.cat
    }

    /// Record one value. When disabled: one relaxed load only.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_enabled(v);
    }

    #[cold]
    fn record_enabled(&'static self, v: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY.hists).push(self);
        }
        self.hist.record(v);
    }

    /// Snapshot the underlying histogram.
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        self.hist.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SPAN: SpanSite = SpanSite::new("test", "test.span");
    static CTR: CounterSite = CounterSite::new("test", "test.ctr");
    static HIST: HistogramSite = HistogramSite::new("test", "test.hist");
    static GAUGE: GaugeSite = GaugeSite::new("test", "test.gauge");

    #[test]
    fn gauge_records_only_while_enabled() {
        let _l = crate::test_lock();
        crate::disable();
        crate::reset();
        GAUGE.set(7);
        GAUGE.add(2);
        assert_eq!(GAUGE.value(), 0, "disabled gauge must not move");

        crate::enable_with_capacity(16);
        GAUGE.set(7);
        GAUGE.add(5);
        GAUGE.sub(2);
        assert_eq!(GAUGE.value(), 10);
        assert!(
            crate::gauge_stats()
                .iter()
                .any(|g| g.name == "test.gauge" && g.value == 10),
            "gauge must self-register on first enabled use"
        );
        crate::disable();
        crate::reset();
        assert_eq!(GAUGE.value(), 0);
    }

    #[test]
    fn sites_record_only_while_enabled() {
        let _l = crate::test_lock();
        crate::disable();
        crate::reset();
        drop(SPAN.enter());
        CTR.incr();
        HIST.record(9);
        assert_eq!(SPAN.totals().0, 0);
        assert_eq!(CTR.value(), 0);
        assert_eq!(HIST.snapshot().count, 0);

        crate::enable_with_capacity(16);
        {
            let _g = SPAN.enter();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        CTR.add(3);
        HIST.record(9);
        crate::disable();

        let (count, total, max) = SPAN.totals();
        assert_eq!(count, 1);
        assert!(total >= 1_000_000, "slept ≥1ms: {total}ns");
        assert_eq!(max, total);
        assert_eq!(CTR.value(), 3);
        assert_eq!(HIST.snapshot().count, 1);
        let ev = crate::trace_events();
        assert!(
            ev.iter()
                .any(|e| e.name == "test.span" && e.dur_ns >= 1_000_000),
            "{ev:?}"
        );
        crate::reset();
        assert_eq!(SPAN.totals(), (0, 0, 0));
        assert_eq!(CTR.value(), 0);
    }
}
