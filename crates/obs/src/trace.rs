//! Request-scoped causal tracing: [`TraceCtx`] propagation,
//! cross-thread flow links, and the bounded tail-sampling exemplar
//! store.
//!
//! A request acquires a [`TraceCtx`] at its entry point
//! ([`TraceCtx::root`]), carries it across thread boundaries by value
//! (it is `Copy` and inert when collection is disabled), and installs
//! it on whatever thread currently works on the request with
//! [`ctx_scope`]. While a scope is installed, every [`crate::span!`]
//! callsite on that thread automatically joins the request's trace:
//! a span id is allocated per occurrence and parented to the
//! innermost open traced span, so the span *tree* falls out of
//! ordinary lexical nesting with no change at the callsites.
//!
//! Thread hops are stitched with flow links — [`flow_out`] on the
//! sending side, [`FlowLink::accept`] on the receiving side — which
//! export as Chrome flow events (`ph:"s"`/`ph:"f"`) so Perfetto draws
//! arrows between the threads of one request. Batching, where one
//! unit of work serves several requests, is linked with
//! [`TraceCtx::link_to`] (one flow edge per absorbed member).
//!
//! Traced events are recorded twice: into the global ring (like every
//! span) and into a fixed slot of the **active-trace table**. The
//! record path is lock-free — the writer registers its presence,
//! validates slot ownership, claims a buffer index with one
//! `fetch_add`, writes the event, and publishes it with a release
//! increment; harvest and slot recycling wait out registered writers
//! before touching the buffer. When the request finishes, [`finish_request`]
//! harvests the slot into the per-group (per-tenant) **exemplar
//! store** if the request ranks among the [`EXEMPLARS_PER_GROUP`]
//! slowest of the current window (overwrite-fastest), then frees the
//! slot. All buffers are preallocated by [`crate::enable`]; the
//! steady-state trace path never allocates.

use crate::ring::{self, EventKind, TraceEvent};
use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Concurrently-open traced requests the active table can hold.
/// Roots opened beyond this still trace into the ring, but cannot be
/// exemplar-sampled (counted by [`trace_unsampled`]).
pub const MAX_ACTIVE_TRACES: usize = 32;

/// Events retained per trace; later events are counted as dropped
/// ([`ExemplarTrace::dropped`]).
pub const MAX_TRACE_SPANS: usize = 512;

/// Slowest-request exemplars retained per group per window.
pub const EXEMPLARS_PER_GROUP: usize = 4;

/// Distinct exemplar groups (tenant labels). Requests finishing under
/// further labels release their trace without being retained.
pub const MAX_EXEMPLAR_GROUPS: usize = 64;

const NO_SLOT: u32 = u32::MAX;
/// Slot-ownership sentinel for a slot being initialized or harvested
/// (trace ids start at 1 and can never reach this).
const FINISHING: u64 = u64::MAX;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static UNSAMPLED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx::INERT) };
}

/// Request identity carried across layers and threads: a 64-bit trace
/// id plus the id of the innermost open span on the propagating path.
///
/// `Copy` and 16 bytes — cheap enough to stash in jobs and channel
/// messages unconditionally. When collection is disabled (or the
/// context came from [`TraceCtx::INERT`]) every operation on it is a
/// no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    trace_id: u64,
    span_id: u64,
    slot: u32,
}

impl TraceCtx {
    /// The inactive context: propagating it costs nothing and records
    /// nothing.
    pub const INERT: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
        slot: NO_SLOT,
    };

    /// Open a new trace for a request entering the system.
    ///
    /// When collection is disabled this is a single relaxed atomic
    /// load returning [`TraceCtx::INERT`] — no allocation, no clock
    /// read, no id draw.
    #[inline]
    pub fn root() -> TraceCtx {
        if !crate::enabled() {
            return TraceCtx::INERT;
        }
        root_enabled()
    }

    /// Whether this context belongs to a live trace.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// The trace id (0 when inert). Matches
    /// [`TraceEvent::trace_id`] on every event of the trace.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Emit a causal edge from this context's trace into `to`'s trace
    /// — used when one unit of work absorbs another request, e.g. a
    /// batch leader executing on behalf of its members. Records a
    /// [`EventKind::FlowStart`] in `self`'s trace and a matching
    /// [`EventKind::FlowEnd`] (same flow id) in `to`'s trace. No-op
    /// if either side is inert.
    pub fn link_to(&self, to: &TraceCtx, name: &'static str) {
        if !self.is_active() || !to.is_active() {
            return;
        }
        let flow_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let tid = crate::current_tid();
        let now = crate::now_ns();
        sink(
            *self,
            TraceEvent {
                name,
                cat: "flow",
                tid,
                start_ns: now,
                dur_ns: 0,
                trace_id: self.trace_id,
                span_id: flow_id,
                parent_id: self.span_id,
                kind: EventKind::FlowStart,
            },
        );
        sink(
            *to,
            TraceEvent {
                name,
                cat: "flow",
                tid,
                start_ns: now,
                dur_ns: 0,
                trace_id: to.trace_id,
                span_id: flow_id,
                parent_id: to.span_id,
                kind: EventKind::FlowEnd,
            },
        );
    }
}

#[cold]
fn root_enabled() -> TraceCtx {
    let trace_id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let mut slot = NO_SLOT;
    if let Some(table) = TABLE.get() {
        for (i, s) in table.iter().enumerate() {
            if s.trace_id
                .compare_exchange(0, FINISHING, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // Late writers of the previous generation may still be
                // between their presence announcement and the
                // ownership check (they will fail it and bail); drain
                // them before resetting the write cursor so none can
                // claim a pre-reset index.
                quiesce(s);
                s.widx.store(0, Ordering::Relaxed);
                s.published.store(0, Ordering::Relaxed);
                s.dropped.store(0, Ordering::Relaxed);
                s.root_span_id.store(span_id, Ordering::Relaxed);
                s.origin_tid.store(crate::current_tid(), Ordering::Relaxed);
                s.start_ns.store(crate::now_ns(), Ordering::Relaxed);
                // Publish ownership last: writers check `trace_id`
                // before touching the buffer.
                s.trace_id.store(trace_id, Ordering::Release);
                slot = i as u32;
                break;
            }
        }
    }
    if slot == NO_SLOT {
        UNSAMPLED.fetch_add(1, Ordering::Relaxed);
    }
    TraceCtx {
        trace_id,
        span_id,
        slot,
    }
}

/// Install `ctx` as the calling thread's current trace context for
/// the guard's lifetime; the previous context is restored on drop.
/// Every `span!` entered (and every [`flow_out`]) on this thread
/// while the scope is live joins `ctx`'s trace.
#[inline]
pub fn ctx_scope(ctx: TraceCtx) -> CtxScope {
    CtxScope {
        prev: CURRENT.with(|c| c.replace(ctx)),
    }
}

/// RAII guard returned by [`ctx_scope`].
#[must_use = "dropping the scope immediately uninstalls the context"]
pub struct CtxScope {
    prev: TraceCtx,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// The calling thread's current trace context ([`TraceCtx::INERT`]
/// outside any [`ctx_scope`]).
#[inline]
pub fn current_ctx() -> TraceCtx {
    CURRENT.with(Cell::get)
}

/// An open traced span occurrence: what the span site needs to
/// restore and stamp at exit.
pub(crate) struct OpenSpan {
    parent: TraceCtx,
    span_id: u64,
}

/// Called by `SpanSite::enter` on the enabled path: if the thread has
/// an active context, allocate a span id and make it the current
/// parent for spans nested below.
pub(crate) fn begin_span() -> Option<OpenSpan> {
    let parent = current_ctx();
    if !parent.is_active() {
        return None;
    }
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    CURRENT.with(|c| c.set(TraceCtx { span_id, ..parent }));
    Some(OpenSpan { parent, span_id })
}

/// Close an open traced span: restore the parent context, stamp the
/// trace/span/parent ids onto `ev`, and record it (ring + slot).
pub(crate) fn end_span(open: OpenSpan, mut ev: TraceEvent) {
    CURRENT.with(|c| c.set(open.parent));
    ev.trace_id = open.parent.trace_id;
    ev.span_id = open.span_id;
    ev.parent_id = open.parent.span_id;
    sink(open.parent, ev);
}

/// One half of a cross-thread causal edge. Created on the sending
/// thread by [`flow_out`], shipped with the message (it is `Copy`),
/// and closed on the receiving thread with [`FlowLink::accept`].
/// Inert links are free to ship and accept.
#[derive(Clone, Copy, Debug)]
pub struct FlowLink {
    trace_id: u64,
    flow_id: u64,
    slot: u32,
}

impl FlowLink {
    /// The inactive link: [`FlowLink::accept`] on it is a no-op.
    pub const INERT: FlowLink = FlowLink {
        trace_id: 0,
        flow_id: 0,
        slot: NO_SLOT,
    };

    /// Whether this link belongs to a live trace.
    pub fn is_active(&self) -> bool {
        self.trace_id != 0
    }

    /// Record the receiving half (`ph:"f"`) on the calling thread.
    /// The event is parented to the thread's current span when it
    /// already runs under the same trace (e.g. inside a gather span).
    pub fn accept(self, name: &'static str) {
        if !self.is_active() {
            return;
        }
        let here = current_ctx();
        let parent = if here.trace_id == self.trace_id {
            here.span_id
        } else {
            0
        };
        sink(
            TraceCtx {
                trace_id: self.trace_id,
                span_id: 0,
                slot: self.slot,
            },
            TraceEvent {
                name,
                cat: "flow",
                tid: crate::current_tid(),
                start_ns: crate::now_ns(),
                dur_ns: 0,
                trace_id: self.trace_id,
                span_id: self.flow_id,
                parent_id: parent,
                kind: EventKind::FlowEnd,
            },
        );
    }
}

/// Record the sending half (`ph:"s"`) of a cross-thread edge against
/// the calling thread's current context. Ship the returned link with
/// the message and [`FlowLink::accept`] it on the receiving thread.
/// Free (one TLS read) when the thread has no active context.
#[inline]
pub fn flow_out(name: &'static str) -> FlowLink {
    let ctx = current_ctx();
    if !ctx.is_active() {
        return FlowLink::INERT;
    }
    flow_out_enabled(ctx, name)
}

#[cold]
fn flow_out_enabled(ctx: TraceCtx, name: &'static str) -> FlowLink {
    let flow_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    sink(
        ctx,
        TraceEvent {
            name,
            cat: "flow",
            tid: crate::current_tid(),
            start_ns: crate::now_ns(),
            dur_ns: 0,
            trace_id: ctx.trace_id,
            span_id: flow_id,
            parent_id: ctx.span_id,
            kind: EventKind::FlowStart,
        },
    );
    FlowLink {
        trace_id: ctx.trace_id,
        flow_id,
        slot: ctx.slot,
    }
}

// ---------------------------------------------------------------------------
// Active-trace slot table (lock-free record path)
// ---------------------------------------------------------------------------

struct SlotCell(UnsafeCell<TraceEvent>);

// SAFETY: each cell is written only by the unique claimant of its
// index (handed out by `widx.fetch_add`) within one slot generation.
// Index uniqueness across generations holds because `widx` is only
// reset (and the buffer only read back) while `writers` is zero:
// every writer registers in `writers` *before* validating slot
// ownership, and both `finish_request` and `root_enabled` first move
// `trace_id` off the writers' expected value and then drain
// `writers` (see `quiesce`) before touching `widx` or `buf`.
unsafe impl Sync for SlotCell {}

struct ActiveSlot {
    /// 0 = free, [`FINISHING`] = being initialized/harvested, else
    /// the owning trace id.
    trace_id: AtomicU64,
    /// Writers currently between their presence announcement in
    /// [`record_slot`] and the end of their write (or their bail-out).
    /// Harvest and recycle drain this to zero before touching the
    /// buffer, so no stale writer can hold a pre-reset index across a
    /// generation change.
    writers: AtomicU32,
    /// Next buffer index to claim (may exceed the buffer length).
    widx: AtomicU32,
    /// Cells fully written (release-incremented after each write).
    published: AtomicU32,
    /// Events lost to buffer exhaustion.
    dropped: AtomicU32,
    root_span_id: AtomicU64,
    origin_tid: AtomicU64,
    start_ns: AtomicU64,
    buf: Box<[SlotCell]>,
}

static TABLE: OnceLock<Vec<ActiveSlot>> = OnceLock::new();

const INERT_EVENT: TraceEvent = TraceEvent::untraced("", "", 0, 0, 0);

/// Preallocate the active-trace table (idempotent; called by
/// [`crate::enable`]).
pub(crate) fn provision() {
    TABLE.get_or_init(|| {
        (0..MAX_ACTIVE_TRACES)
            .map(|_| ActiveSlot {
                trace_id: AtomicU64::new(0),
                writers: AtomicU32::new(0),
                widx: AtomicU32::new(0),
                published: AtomicU32::new(0),
                dropped: AtomicU32::new(0),
                root_span_id: AtomicU64::new(0),
                origin_tid: AtomicU64::new(0),
                start_ns: AtomicU64::new(0),
                buf: (0..MAX_TRACE_SPANS)
                    .map(|_| SlotCell(UnsafeCell::new(INERT_EVENT)))
                    .collect(),
            })
            .collect()
    });
}

/// Record `ev` into the global ring and, when `ctx` is slot-sampled,
/// into the trace's active slot.
fn sink(ctx: TraceCtx, ev: TraceEvent) {
    ring::push(ev);
    record_slot(ctx, ev);
}

fn record_slot(ctx: TraceCtx, ev: TraceEvent) {
    if ctx.slot == NO_SLOT {
        return;
    }
    let Some(table) = TABLE.get() else { return };
    let Some(slot) = table.get(ctx.slot as usize) else {
        return;
    };
    // Announce presence *before* validating ownership. Both sides are
    // SeqCst to close the store-buffer window against the harvester's
    // `trace_id` CAS + `writers` drain (`quiesce`): in the single
    // total order either this load sees the CAS'd-away `trace_id`
    // (and we bail), or the harvester's drain sees our increment (and
    // waits for the write below to complete before touching `buf`).
    slot.writers.fetch_add(1, Ordering::SeqCst);
    if slot.trace_id.load(Ordering::SeqCst) != ctx.trace_id {
        // trace already finished (or slot re-generationed)
        slot.writers.fetch_sub(1, Ordering::Release);
        return;
    }
    let i = slot.widx.fetch_add(1, Ordering::Relaxed) as usize;
    if i >= slot.buf.len() {
        slot.dropped.fetch_add(1, Ordering::Relaxed);
        slot.writers.fetch_sub(1, Ordering::Release);
        return;
    }
    // SAFETY: `fetch_add` hands index `i` to this thread exclusively
    // for this slot generation, and no generation change can happen
    // while we are registered in `writers` (harvest/recycle drain it
    // first), so `i` cannot be handed out again until this write is
    // done. The release decrement below orders the write before any
    // harvester that observes the drained counter.
    unsafe { *slot.buf[i].0.get() = ev };
    slot.published.fetch_add(1, Ordering::Release);
    slot.writers.fetch_sub(1, Ordering::Release);
}

/// Wait until no writer is registered on `slot`. Callers must first
/// move `trace_id` off the value in-flight writers expect (to
/// [`FINISHING`]) with a SeqCst RMW so no *new* writer can pass the
/// ownership check; after the drain, `widx`/`published`/`buf` are
/// quiescent and safe to read or reset.
fn quiesce(slot: &ActiveSlot) {
    let mut spins = 0u32;
    while slot.writers.load(Ordering::SeqCst) != 0 {
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Exemplar store (tail sampling: keep-K-slowest per group per window)
// ---------------------------------------------------------------------------

struct ExemplarSlot {
    /// 0 = empty.
    trace_id: u64,
    total_ns: u64,
    service_ns: u64,
    dropped: u32,
    /// Reused buffer, preallocated to `MAX_TRACE_SPANS + 1` at group
    /// creation so steady-state retention never allocates.
    spans: Vec<TraceEvent>,
}

struct ExemplarStore {
    groups: Vec<(String, Vec<ExemplarSlot>)>,
}

static EXEMPLARS: Mutex<ExemplarStore> = Mutex::new(ExemplarStore { groups: Vec::new() });

/// Distinct exemplar groups currently retained (capped at
/// [`MAX_EXEMPLAR_GROUPS`]); published under the store lock.
static EXEMPLAR_GROUPS: crate::GaugeSite = crate::GaugeSite::new("obs", "obs.exemplar_groups");

fn lock_exemplars() -> MutexGuard<'static, ExemplarStore> {
    EXEMPLARS.lock().unwrap_or_else(|e| e.into_inner())
}

/// The exemplar slot a request with latency `total_ns` should occupy
/// in `group`, if it ranks: an empty slot first, else the fastest
/// retained exemplar — only when the new request is slower.
fn retention_slot<'a>(
    store: &'a mut ExemplarStore,
    group: &str,
    total_ns: u64,
) -> Option<&'a mut ExemplarSlot> {
    let gi = match store.groups.iter().position(|(g, _)| g == group) {
        Some(i) => i,
        None if store.groups.len() < MAX_EXEMPLAR_GROUPS => {
            let slots = (0..EXEMPLARS_PER_GROUP)
                .map(|_| ExemplarSlot {
                    trace_id: 0,
                    total_ns: 0,
                    service_ns: 0,
                    dropped: 0,
                    spans: Vec::with_capacity(MAX_TRACE_SPANS + 1),
                })
                .collect();
            store.groups.push((group.to_string(), slots));
            EXEMPLAR_GROUPS.set(store.groups.len() as i64);
            store.groups.len() - 1
        }
        None => return None, // group cardinality capped
    };
    let slots = &mut store.groups[gi].1;
    if let Some(i) = slots.iter().position(|s| s.trace_id == 0) {
        return Some(&mut slots[i]);
    }
    let fastest = (0..slots.len())
        .min_by_key(|&i| slots[i].total_ns)
        .expect("EXEMPLARS_PER_GROUP > 0");
    if total_ns > slots[fastest].total_ns {
        Some(&mut slots[fastest])
    } else {
        None
    }
}

/// Close a request's trace: harvest its recorded span tree, retain it
/// in `group`'s exemplar set if it ranks among the
/// [`EXEMPLARS_PER_GROUP`] slowest of the current window
/// (overwriting the fastest retained exemplar), synthesize the
/// `request` root envelope span, and free the active slot. Returns
/// whether the trace was retained.
///
/// Callers must invoke this **after** all of the trace's spans have
/// closed (the slot buffer is read back here) and at most once per
/// context; a second call on the same context is a no-op returning
/// `false`, as is any call on an inert or unsampled context.
pub fn finish_request(ctx: TraceCtx, group: &str, total_ns: u64, service_ns: u64) -> bool {
    if !ctx.is_active() || ctx.slot == NO_SLOT {
        return false;
    }
    let Some(table) = TABLE.get() else {
        return false;
    };
    let Some(slot) = table.get(ctx.slot as usize) else {
        return false;
    };
    // Take exclusive finish ownership; fails if already finished (or
    // the slot moved on to another trace).
    if slot
        .trace_id
        .compare_exchange(ctx.trace_id, FINISHING, Ordering::SeqCst, Ordering::Relaxed)
        .is_err()
    {
        return false;
    }
    // The CAS stops new writers at the ownership check; wait out the
    // ones already past it so every claimed in-range index is fully
    // written (and `published` is exact) before the buffer is read.
    quiesce(slot);
    let claimed = (slot.widx.load(Ordering::Relaxed) as usize).min(slot.buf.len());
    let published = slot.published.load(Ordering::Acquire) as usize;
    let n = claimed.min(published);
    let dropped = slot.dropped.load(Ordering::Relaxed);
    let root = TraceEvent {
        name: "request",
        cat: "trace",
        tid: slot.origin_tid.load(Ordering::Relaxed),
        start_ns: slot.start_ns.load(Ordering::Relaxed),
        dur_ns: total_ns,
        trace_id: ctx.trace_id,
        span_id: slot.root_span_id.load(Ordering::Relaxed),
        parent_id: 0,
        kind: EventKind::Complete,
    };
    ring::push(root);
    let retained = {
        let mut store = lock_exemplars();
        match retention_slot(&mut store, group, total_ns) {
            Some(ex) => {
                ex.trace_id = ctx.trace_id;
                ex.total_ns = total_ns;
                ex.service_ns = service_ns;
                ex.dropped = dropped;
                ex.spans.clear();
                for cell in &slot.buf[..n] {
                    // SAFETY: the quiesce above drained every writer
                    // registered against this generation, so all
                    // claimed in-range cells are fully written and no
                    // write is concurrent with this read. The trace-id
                    // filter below is defense in depth against an
                    // event an earlier generation left behind.
                    let ev = unsafe { *cell.0.get() };
                    if ev.trace_id == ctx.trace_id {
                        ex.spans.push(ev);
                    }
                }
                ex.spans.push(root);
                true
            }
            None => false,
        }
    };
    slot.trace_id.store(0, Ordering::Release);
    retained
}

/// A retained exemplar: the complete recorded span tree of one of the
/// slowest requests in its group's current window.
#[derive(Clone, Debug)]
pub struct ExemplarTrace {
    /// The group (tenant label) the request finished under.
    pub group: String,
    /// The trace id ([`TraceCtx::trace_id`]).
    pub trace_id: u64,
    /// End-to-end latency reported at finish, nanoseconds.
    pub total_ns: u64,
    /// Service-time component reported at finish, nanoseconds.
    pub service_ns: u64,
    /// Events that exceeded [`MAX_TRACE_SPANS`] and were not
    /// retained.
    pub dropped: u32,
    /// The recorded events — complete spans plus flow-link halves, in
    /// record order — ending with the synthesized `request` root
    /// span.
    pub spans: Vec<TraceEvent>,
}

impl ExemplarTrace {
    /// Structural well-formedness of the retained span tree: complete
    /// spans have unique ids, exactly one root exists (the `request`
    /// envelope), and every non-root parent id resolves to another
    /// retained complete span. Flow-link halves are exempt from the
    /// tree check (their pair may live in another trace). `Err`
    /// carries a human-readable reason.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let complete = || self.spans.iter().filter(|e| e.kind == EventKind::Complete);
        let mut ids = HashSet::new();
        let mut roots = 0usize;
        for e in complete() {
            if !ids.insert(e.span_id) {
                return Err(format!("duplicate span id {} ({})", e.span_id, e.name));
            }
            if e.parent_id == 0 {
                roots += 1;
            }
        }
        if roots != 1 {
            return Err(format!("expected exactly 1 root span, found {roots}"));
        }
        for e in complete() {
            if e.parent_id != 0 && !ids.contains(&e.parent_id) {
                return Err(format!(
                    "span {} ({}) has unresolved parent {}",
                    e.span_id, e.name, e.parent_id
                ));
            }
        }
        Ok(())
    }

    /// Thread ids that recorded at least one event in this trace,
    /// sorted and deduplicated.
    pub fn tids(&self) -> Vec<u64> {
        let mut t: Vec<u64> = self.spans.iter().map(|e| e.tid).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// Every retained exemplar, grouped by label, slowest first within
/// each group.
pub fn exemplars() -> Vec<ExemplarTrace> {
    let store = lock_exemplars();
    let mut out = Vec::new();
    for (group, slots) in &store.groups {
        let mut rows: Vec<&ExemplarSlot> = slots.iter().filter(|s| s.trace_id != 0).collect();
        rows.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        for s in rows {
            out.push(ExemplarTrace {
                group: group.clone(),
                trace_id: s.trace_id,
                total_ns: s.total_ns,
                service_ns: s.service_ns,
                dropped: s.dropped,
                spans: s.spans.clone(),
            });
        }
    }
    out
}

/// The retained exemplar with `trace_id`, if it is still in the
/// window.
pub fn exemplar_for(trace_id: u64) -> Option<ExemplarTrace> {
    exemplars().into_iter().find(|e| e.trace_id == trace_id)
}

/// Start a new exemplar window: drop every retained exemplar. Group
/// labels and their preallocated buffers are kept, so steady-state
/// window rolls do not allocate. In-flight traces are unaffected.
pub fn roll_exemplar_window() {
    let mut store = lock_exemplars();
    for (_, slots) in store.groups.iter_mut() {
        for s in slots.iter_mut() {
            s.trace_id = 0;
            s.total_ns = 0;
            s.service_ns = 0;
            s.dropped = 0;
            s.spans.clear();
        }
    }
}

/// Traces whose root was opened while every active-trace slot was
/// occupied — they still record into the ring, but could not be
/// exemplar-sampled.
pub fn trace_unsampled() -> u64 {
    UNSAMPLED.load(Ordering::Relaxed)
}

/// Test-support reset: release every slot, drop every exemplar group,
/// and zero the unsampled counter. Id counters keep advancing so
/// traces never collide across resets.
pub(crate) fn reset_all() {
    if let Some(table) = TABLE.get() {
        for s in table {
            // Same protocol as recycling: park the slot, drain any
            // in-flight writers, then reset and free.
            s.trace_id.store(FINISHING, Ordering::SeqCst);
            quiesce(s);
            s.widx.store(0, Ordering::Relaxed);
            s.published.store(0, Ordering::Relaxed);
            s.dropped.store(0, Ordering::Relaxed);
            s.trace_id.store(0, Ordering::Release);
        }
    }
    lock_exemplars().groups.clear();
    EXEMPLAR_GROUPS.set(0);
    UNSAMPLED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_root_is_inert() {
        let _l = crate::test_lock();
        crate::disable();
        let ctx = TraceCtx::root();
        assert!(!ctx.is_active());
        assert_eq!(ctx, TraceCtx::INERT);
        let _scope = ctx_scope(ctx);
        assert!(!current_ctx().is_active());
        let link = flow_out("t");
        assert!(!link.is_active());
        link.accept("t");
        assert!(!finish_request(ctx, "g", 1, 1));
    }

    #[test]
    fn spans_join_trace_and_finish_retains_slowest() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();

        static OUTER: crate::SpanSite = crate::SpanSite::new("test", "trace.outer");
        static INNER: crate::SpanSite = crate::SpanSite::new("test", "trace.inner");

        // (total_ns, retained?): first four fill empty slots, 400
        // overwrites the fastest retained (30), 10 does not rank
        for (total_ns, retained) in [
            (50u64, true),
            (200, true),
            (100, true),
            (30, true),
            (400, true),
            (10, false),
        ] {
            let ctx = TraceCtx::root();
            assert!(ctx.is_active());
            {
                let _scope = ctx_scope(ctx);
                let _o = OUTER.enter();
                let _i = INNER.enter();
            }
            assert_eq!(
                finish_request(ctx, "g", total_ns, total_ns / 2),
                retained,
                "request with total {total_ns}"
            );
            // double-finish is a no-op
            assert!(!finish_request(ctx, "g", total_ns, 0));
        }

        let ex = exemplars();
        assert_eq!(ex.len(), EXEMPLARS_PER_GROUP);
        let totals: Vec<u64> = ex.iter().map(|e| e.total_ns).collect();
        assert_eq!(totals, vec![400, 200, 100, 50], "keep-K-slowest, sorted");
        for e in &ex {
            e.validate().expect("well-formed tree");
            assert_eq!(e.group, "g");
            let names: Vec<&str> = e.spans.iter().map(|s| s.name).collect();
            assert!(names.contains(&"trace.outer"));
            assert!(names.contains(&"trace.inner"));
            assert_eq!(names.last(), Some(&"request"));
            // inner parents to outer, outer to the root envelope
            let root = e.spans.iter().find(|s| s.name == "request").unwrap();
            let outer = e.spans.iter().find(|s| s.name == "trace.outer").unwrap();
            let inner = e.spans.iter().find(|s| s.name == "trace.inner").unwrap();
            assert_eq!(outer.parent_id, root.span_id);
            assert_eq!(inner.parent_id, outer.span_id);
        }
        assert!(exemplar_for(ex[0].trace_id).is_some());
        roll_exemplar_window();
        assert!(exemplars().is_empty());
        crate::reset();
        crate::disable();
    }

    #[test]
    fn concurrent_stale_writers_cannot_pollute_recycled_slots() {
        // Regression for the cross-generation race: writers holding a
        // stale TraceCtx race finish_request's harvest and
        // root_enabled's slot recycling. The writer-drain protocol
        // must keep every harvested event in its own generation (and
        // this test deadlocks if quiesce ever fails to drain).
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let stop = Arc::new(AtomicBool::new(false));
        // currently-open trace, packed as trace_id << 8 | slot
        let current = Arc::new(AtomicU64::new(0));

        let writers: Vec<_> = (0..3)
            .map(|w| {
                let stop = Arc::clone(&stop);
                let current = Arc::clone(&current);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let packed = current.load(Ordering::Relaxed);
                        if packed == 0 {
                            std::hint::spin_loop();
                            continue;
                        }
                        // may be stale by the time it is used — that
                        // is the point
                        let ctx = TraceCtx {
                            trace_id: packed >> 8,
                            span_id: 1,
                            slot: (packed & 0xff) as u32,
                        };
                        sink(
                            ctx,
                            TraceEvent {
                                name: "stale",
                                cat: "race",
                                tid: w as u64,
                                start_ns: 0,
                                dur_ns: 1,
                                trace_id: ctx.trace_id,
                                span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
                                parent_id: 0,
                                kind: EventKind::Complete,
                            },
                        );
                    }
                })
            })
            .collect();

        for i in 0..2000u64 {
            let ctx = TraceCtx::root();
            assert!(ctx.is_active(), "single root at a time always slots");
            current.store((ctx.trace_id << 8) | ctx.slot as u64, Ordering::Relaxed);
            finish_request(ctx, "race", 1000 + i, 1000);
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        for e in exemplars() {
            for s in &e.spans {
                assert_eq!(
                    s.trace_id, e.trace_id,
                    "harvest must never retain another generation's event"
                );
            }
        }
        crate::reset();
        crate::disable();
    }

    #[test]
    fn flow_links_pair_across_scopes() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        let ctx = TraceCtx::root();
        let link = {
            let _scope = ctx_scope(ctx);
            flow_out("hop")
        };
        assert!(link.is_active());
        link.accept("hop");
        assert!(finish_request(ctx, "flows", 1000, 1000));
        let ex = exemplar_for(ctx.trace_id()).expect("retained");
        let starts: Vec<&TraceEvent> = ex
            .spans
            .iter()
            .filter(|e| e.kind == EventKind::FlowStart)
            .collect();
        let ends: Vec<&TraceEvent> = ex
            .spans
            .iter()
            .filter(|e| e.kind == EventKind::FlowEnd)
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(ends.len(), 1);
        assert_eq!(starts[0].span_id, ends[0].span_id, "same flow id");
        ex.validate().expect("flows exempt from tree check");
        crate::reset();
        crate::disable();
    }
}
