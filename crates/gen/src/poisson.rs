//! 2-D Poisson five-point stencil matrices.
//!
//! The Algebraic Multigrid use case from the paper's introduction
//! needs a PDE-like operator; the standard 5-point Laplacian on a
//! `k × k` grid is the canonical choice (symmetric positive definite,
//! regular structure, high SpGEMM compression ratio — the regime where
//! Table 4 recommends hash-based kernels).

use spgemm_sparse::{ColIdx, Coo, Csr};

/// The 5-point finite-difference Laplacian on a `k × k` grid:
/// `4` on the diagonal, `-1` to each of the (up to) four neighbours.
/// The matrix is `k² × k²`, symmetric, with at most 5 entries per row.
pub fn poisson2d(k: usize) -> Csr<f64> {
    let n = k * k;
    let mut coo = Coo::with_capacity(n, n, 5 * n).expect("grid dimensions in range");
    let idx = |x: usize, y: usize| -> usize { x * k + y };
    for x in 0..k {
        for y in 0..k {
            let i = idx(x, y);
            coo.push(i, i as ColIdx, 4.0).unwrap();
            if x > 0 {
                coo.push(i, idx(x - 1, y) as ColIdx, -1.0).unwrap();
            }
            if x + 1 < k {
                coo.push(i, idx(x + 1, y) as ColIdx, -1.0).unwrap();
            }
            if y > 0 {
                coo.push(i, idx(x, y - 1) as ColIdx, -1.0).unwrap();
            }
            if y + 1 < k {
                coo.push(i, idx(x, y + 1) as ColIdx, -1.0).unwrap();
            }
        }
    }
    coo.into_csr_sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::ops;

    #[test]
    fn shape_and_bandwidth() {
        let a = poisson2d(4);
        assert_eq!(a.shape(), (16, 16));
        assert_eq!(a.nnz(), 16 * 5 - 4 * 4); // 4 boundary entries missing per side pair
        assert!(a.is_sorted());
        assert!(a.validate().is_ok());
        assert!(a.max_row_nnz() <= 5);
    }

    #[test]
    fn symmetric() {
        let a = poisson2d(5);
        let at = ops::transpose(&a);
        assert!(spgemm_sparse::approx_eq_f64(&a, &at, 0.0));
    }

    #[test]
    fn row_sums_zero_in_interior() {
        let k = 6;
        let a = poisson2d(k);
        // interior nodes: 4 - 1 - 1 - 1 - 1 = 0
        let interior = (k + 1) + 1; // node (1,1)
        let s: f64 = a.row_vals(interior).iter().sum();
        assert_eq!(s, 0.0);
        // corner node (0,0): 4 - 1 - 1 = 2
        let s0: f64 = a.row_vals(0).iter().sum();
        assert_eq!(s0, 2.0);
    }

    #[test]
    fn tiny_grid() {
        let a = poisson2d(1);
        assert_eq!(a.shape(), (1, 1));
        assert_eq!(a.get(0, 0), Some(&4.0));
    }
}
