//! Random permutations and the unsorted-input protocol of §5.1
//! ("For the evaluation of unsorted output, the column indices of
//! input matrices are randomly permuted").

use crate::Rng;
use rand::Rng as _;
use spgemm_sparse::{ops, ColIdx, Csr};

/// A uniformly random permutation of `0..n` (Fisher–Yates).
pub fn random_permutation(n: usize, rng: &mut Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// [`random_permutation`] cast to column-index width.
pub fn random_col_permutation(n: usize, rng: &mut Rng) -> Vec<ColIdx> {
    random_permutation(n, rng)
        .into_iter()
        .map(|x| x as ColIdx)
        .collect()
}

/// Produce the unsorted twin of a matrix by randomly relabelling its
/// columns (per the paper's protocol). Structure is isomorphic to the
/// input but rows are no longer ascending, which is what exercises the
/// `Any`-input kernels.
pub fn randomize_columns(a: &Csr<f64>, rng: &mut Rng) -> Csr<f64> {
    let perm = random_col_permutation(a.ncols(), rng);
    ops::permute_cols(a, &perm).expect("permutation has the right length")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_bijection() {
        let mut r = crate::rng(9);
        for n in [0usize, 1, 2, 17, 256] {
            let p = random_permutation(n, &mut r);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(!seen[x]);
                seen[x] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn permutation_deterministic_per_seed() {
        assert_eq!(
            random_permutation(100, &mut crate::rng(3)),
            random_permutation(100, &mut crate::rng(3))
        );
    }

    #[test]
    fn randomize_columns_unsorts_but_preserves_structure() {
        let a = crate::rmat::generate_kind(crate::RmatKind::Er, 8, 8, &mut crate::rng(11));
        let u = randomize_columns(&a, &mut crate::rng(12));
        assert_eq!(u.nnz(), a.nnz());
        assert_eq!(u.shape(), a.shape());
        assert!(
            !u.is_sorted(),
            "a 256-column random relabelling is unsorted w.h.p."
        );
        // row sizes unchanged — only labels moved
        for i in 0..a.nrows() {
            assert_eq!(u.row_nnz(i), a.row_nnz(i));
        }
        // sorting it back yields a matrix with identical value multiset
        let mut vs: Vec<u64> = a.vals().iter().map(|v| v.to_bits()).collect();
        let mut vu: Vec<u64> = u.vals().iter().map(|v| v.to_bits()).collect();
        vs.sort_unstable();
        vu.sort_unstable();
        assert_eq!(vs, vu);
    }
}
