//! R-MAT recursive matrix generator (Chakrabarti, Zhan & Faloutsos,
//! SDM 2004), with the paper's two seed presets.

use crate::Rng;
use rand::Rng as _;
use spgemm_sparse::{ColIdx, Coo, Csr};

/// R-MAT quadrant probabilities `(a, b, c, d)`, `a + b + c + d = 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// Erdős–Rényi-like preset: `a = b = c = d = 0.25` (§5.1).
    pub const ER: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    /// Graph500 power-law preset: `a = 0.57, b = c = 0.19, d = 0.05`
    /// (§5.1).
    pub const G500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Validate that the probabilities are non-negative and sum to 1
    /// (within floating-point slack).
    pub fn is_valid(&self) -> bool {
        let s = self.a + self.b + self.c + self.d;
        self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0 && (s - 1.0).abs() < 1e-9
    }
}

/// Convenience selector between the two presets used throughout the
/// evaluation harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RmatKind {
    /// Uniform non-zero pattern ([`RmatParams::ER`]).
    Er,
    /// Skewed, power-law pattern ([`RmatParams::G500`]).
    G500,
}

impl RmatKind {
    /// The corresponding quadrant probabilities.
    pub fn params(self) -> RmatParams {
        match self {
            RmatKind::Er => RmatParams::ER,
            RmatKind::G500 => RmatParams::G500,
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            RmatKind::Er => "ER",
            RmatKind::G500 => "G500",
        }
    }
}

/// Sample one R-MAT edge in a `2^scale × 2^scale` matrix.
fn sample_edge(params: &RmatParams, scale: u32, rng: &mut Rng) -> (usize, usize) {
    let mut row = 0usize;
    let mut col = 0usize;
    // At each level, pick a quadrant with (a, b, c, d), perturbing the
    // probabilities slightly per level as the reference implementation
    // does to avoid exact self-similarity artifacts; we keep the exact
    // probabilities for reproducibility of the degree distribution.
    for _ in 0..scale {
        row <<= 1;
        col <<= 1;
        let r: f64 = rng.random();
        if r < params.a {
            // top-left: nothing to add
        } else if r < params.a + params.b {
            col |= 1;
        } else if r < params.a + params.b + params.c {
            row |= 1;
        } else {
            row |= 1;
            col |= 1;
        }
    }
    (row, col)
}

/// Generate a `2^scale × 2^scale` R-MAT matrix with
/// `edge_factor · 2^scale` sampled entries.
///
/// Duplicate coordinates are merged additively (so the realized
/// `nnz` is slightly below `edge_factor · n`, more so for the skewed
/// G500 preset — the same convention as the Graph500 generator the
/// paper uses). Values are uniform in `(0, 1]`; rows come out sorted.
pub fn generate(params: RmatParams, scale: u32, edge_factor: usize, rng: &mut Rng) -> Csr<f64> {
    assert!(params.is_valid(), "invalid R-MAT probabilities {params:?}");
    assert!(
        scale < 31,
        "scale {scale} would overflow the i32 index space"
    );
    let n = 1usize << scale;
    let m = edge_factor.saturating_mul(n);
    let mut coo = Coo::with_capacity(n, n, m).expect("dimensions validated above");
    for _ in 0..m {
        let (r, c) = sample_edge(&params, scale, rng);
        let v: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE); // (0, 1]
        coo.push(r, c as ColIdx, v)
            .expect("edge in range by construction");
    }
    // Graph500 merges duplicate edges; additive merge keeps values in a
    // reasonable range and the structure identical to dedup.
    coo.into_csr_sum()
}

/// [`generate`] with the preset selected by `kind`.
pub fn generate_kind(kind: RmatKind, scale: u32, edge_factor: usize, rng: &mut Rng) -> Csr<f64> {
    generate(kind.params(), scale, edge_factor, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::stats;

    #[test]
    fn presets_are_valid() {
        assert!(RmatParams::ER.is_valid());
        assert!(RmatParams::G500.is_valid());
        assert!(!RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5
        }
        .is_valid());
        assert!(!RmatParams {
            a: -0.1,
            b: 0.6,
            c: 0.3,
            d: 0.2
        }
        .is_valid());
    }

    #[test]
    fn shape_and_nnz_budget() {
        let mut r = crate::rng(42);
        let m = generate_kind(RmatKind::Er, 8, 8, &mut r);
        assert_eq!(m.shape(), (256, 256));
        // Dedup only removes a few percent at this density.
        assert!(m.nnz() <= 8 * 256);
        assert!(m.nnz() > 6 * 256, "nnz {} unexpectedly low", m.nnz());
        assert!(m.is_sorted());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_kind(RmatKind::G500, 7, 4, &mut crate::rng(7));
        let b = generate_kind(RmatKind::G500, 7, 4, &mut crate::rng(7));
        assert_eq!(a, b);
        let c = generate_kind(RmatKind::G500, 7, 4, &mut crate::rng(8));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn g500_is_more_skewed_than_er() {
        let mut r = crate::rng(123);
        let er = generate_kind(RmatKind::Er, 10, 16, &mut r);
        let g = generate_kind(RmatKind::G500, 10, 16, &mut r);
        let cv_er = stats::structure_stats(&er).row_cv;
        let cv_g = stats::structure_stats(&g).row_cv;
        assert!(
            cv_g > 2.0 * cv_er,
            "G500 row-size CV {cv_g:.3} should dwarf ER's {cv_er:.3}"
        );
    }

    #[test]
    fn er_hits_every_quadrant() {
        let mut r = crate::rng(5);
        let m = generate_kind(RmatKind::Er, 6, 16, &mut r);
        let n = m.nrows();
        let (mut tl, mut tr, mut bl, mut br) = (0usize, 0, 0, 0);
        for i in 0..n {
            for &c in m.row_cols(i) {
                match (i < n / 2, (c as usize) < n / 2) {
                    (true, true) => tl += 1,
                    (true, false) => tr += 1,
                    (false, true) => bl += 1,
                    (false, false) => br += 1,
                }
            }
        }
        for (q, cnt) in [("tl", tl), ("tr", tr), ("bl", bl), ("br", br)] {
            assert!(cnt > 0, "quadrant {q} empty");
        }
        // Uniform preset: quadrants within a loose factor of each other.
        let max = tl.max(tr).max(bl).max(br) as f64;
        let min = tl.min(tr).min(bl).min(br) as f64;
        assert!(
            max / min < 2.0,
            "ER quadrants {tl}/{tr}/{bl}/{br} too skewed"
        );
    }

    #[test]
    fn values_in_unit_interval() {
        let m = generate_kind(RmatKind::Er, 6, 4, &mut crate::rng(1));
        // additive duplicate merge can push a few values slightly
        // above 1, but never to 0 or negative.
        assert!(m.vals().iter().all(|&v| v > 0.0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_scale_rejected() {
        let _ = generate_kind(RmatKind::Er, 31, 1, &mut crate::rng(0));
    }
}
