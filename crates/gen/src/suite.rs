//! Synthetic stand-ins for the 26 SuiteSparse matrices of Table 2.
//!
//! The paper's real-matrix experiments (Figs 14, 15, 17) sweep the
//! SuiteSparse collection. That collection cannot be downloaded in
//! this environment, so each matrix is replaced by a synthetic
//! stand-in that preserves the properties those figures actually
//! exercise: the dimension and nnz budget (scaled by a common divisor
//! to fit the machine) and a structure class chosen by the matrix's
//! provenance, which is what determines its SpGEMM *compression
//! ratio* — the x-axis of all three figures:
//!
//! * [`MatrixClass::Band`] — FEM/structural matrices (`cant`, `pwtk`,
//!   `pdb1HYS`, ...): clustered contiguous rows ⇒ heavy accumulation ⇒
//!   high compression ratio;
//! * [`MatrixClass::Grid`] — stencil/mesh matrices (`mc2depi`,
//!   `delaunay_n24`, ...): regular low-degree ⇒ CR ≈ 2;
//! * [`MatrixClass::Uniform`] — quasi-random structures (`cage12`,
//!   economics / combinatorics matrices): CR slightly above 1;
//! * [`MatrixClass::PowerLaw`] — graphs (`patents_main`, `wb-edu`,
//!   `webbase-1M`, `scircuit`): skewed degrees, CR near 1, the
//!   load-imbalance stressor.
//!
//! When the real collection *is* available, the bench binaries accept
//! `--suitesparse DIR` and load `.mtx` files instead (see
//! `spgemm-sparse::io`); the stand-ins keep the harness runnable
//! anywhere.

use crate::{poisson, rmat, Rng};
use rand::Rng as _;
use spgemm_sparse::{ColIdx, Coo, Csr};

/// Structure class of a stand-in (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatrixClass {
    /// Contiguous band of `width` entries per row around the diagonal.
    Band,
    /// 2-D five-point stencil on a `⌊√n⌋ × ⌊√n⌋` grid.
    Grid,
    /// Uniformly random coordinates (Erdős–Rényi).
    Uniform,
    /// R-MAT G500 power-law structure (dimension rounded to a power of
    /// two).
    PowerLaw,
}

/// One row of the paper's Table 2, plus the structure class we assign.
#[derive(Clone, Copy, Debug)]
pub struct StandinSpec {
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Rows/columns, in millions (paper's `n`).
    pub n_millions: f64,
    /// Stored entries, in millions (paper's `nnz(A)`).
    pub nnz_millions: f64,
    /// Paper-reported `flop(A²)`, in millions (for EXPERIMENTS.md
    /// comparisons; not used for generation).
    pub flop_sq_millions: f64,
    /// Paper-reported `nnz(A²)`, in millions.
    pub nnz_sq_millions: f64,
    /// Structure class used for generation.
    pub class: MatrixClass,
}

/// The 26 matrices of Table 2 with their paper-reported statistics.
pub const TABLE2: [StandinSpec; 26] = [
    StandinSpec {
        name: "2cubes_sphere",
        n_millions: 0.101,
        nnz_millions: 1.65,
        flop_sq_millions: 27.45,
        nnz_sq_millions: 8.97,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "cage12",
        n_millions: 0.130,
        nnz_millions: 2.03,
        flop_sq_millions: 34.61,
        nnz_sq_millions: 15.23,
        class: MatrixClass::Uniform,
    },
    StandinSpec {
        name: "cage15",
        n_millions: 5.155,
        nnz_millions: 99.20,
        flop_sq_millions: 2078.63,
        nnz_sq_millions: 929.02,
        class: MatrixClass::Uniform,
    },
    StandinSpec {
        name: "cant",
        n_millions: 0.062,
        nnz_millions: 4.01,
        flop_sq_millions: 269.49,
        nnz_sq_millions: 17.44,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "conf5_4-8x8-05",
        n_millions: 0.049,
        nnz_millions: 1.92,
        flop_sq_millions: 74.76,
        nnz_sq_millions: 10.91,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "consph",
        n_millions: 0.083,
        nnz_millions: 6.01,
        flop_sq_millions: 463.85,
        nnz_sq_millions: 26.54,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "cop20k_A",
        n_millions: 0.121,
        nnz_millions: 2.62,
        flop_sq_millions: 79.88,
        nnz_sq_millions: 18.71,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "delaunay_n24",
        n_millions: 16.777,
        nnz_millions: 100.66,
        flop_sq_millions: 633.91,
        nnz_sq_millions: 347.32,
        class: MatrixClass::Grid,
    },
    StandinSpec {
        name: "filter3D",
        n_millions: 0.106,
        nnz_millions: 2.71,
        flop_sq_millions: 85.96,
        nnz_sq_millions: 20.16,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "hood",
        n_millions: 0.221,
        nnz_millions: 10.77,
        flop_sq_millions: 562.03,
        nnz_sq_millions: 34.24,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "m133-b3",
        n_millions: 0.200,
        nnz_millions: 0.80,
        flop_sq_millions: 3.20,
        nnz_sq_millions: 3.18,
        class: MatrixClass::Uniform,
    },
    StandinSpec {
        name: "mac_econ_fwd500",
        n_millions: 0.207,
        nnz_millions: 1.27,
        flop_sq_millions: 7.56,
        nnz_sq_millions: 6.70,
        class: MatrixClass::Uniform,
    },
    StandinSpec {
        name: "majorbasis",
        n_millions: 0.160,
        nnz_millions: 1.75,
        flop_sq_millions: 19.18,
        nnz_sq_millions: 8.24,
        class: MatrixClass::Grid,
    },
    StandinSpec {
        name: "mario002",
        n_millions: 0.390,
        nnz_millions: 2.10,
        flop_sq_millions: 12.83,
        nnz_sq_millions: 6.45,
        class: MatrixClass::Grid,
    },
    StandinSpec {
        name: "mc2depi",
        n_millions: 0.526,
        nnz_millions: 2.10,
        flop_sq_millions: 8.39,
        nnz_sq_millions: 5.25,
        class: MatrixClass::Grid,
    },
    StandinSpec {
        name: "mono_500Hz",
        n_millions: 0.169,
        nnz_millions: 5.04,
        flop_sq_millions: 204.03,
        nnz_sq_millions: 41.38,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "offshore",
        n_millions: 0.260,
        nnz_millions: 4.24,
        flop_sq_millions: 71.34,
        nnz_sq_millions: 23.36,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "patents_main",
        n_millions: 0.241,
        nnz_millions: 0.56,
        flop_sq_millions: 2.60,
        nnz_sq_millions: 2.28,
        class: MatrixClass::PowerLaw,
    },
    StandinSpec {
        name: "pdb1HYS",
        n_millions: 0.036,
        nnz_millions: 4.34,
        flop_sq_millions: 555.32,
        nnz_sq_millions: 19.59,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "poisson3Da",
        n_millions: 0.014,
        nnz_millions: 0.35,
        flop_sq_millions: 11.77,
        nnz_sq_millions: 2.96,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "pwtk",
        n_millions: 0.218,
        nnz_millions: 11.63,
        flop_sq_millions: 626.05,
        nnz_sq_millions: 32.77,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "rma10",
        n_millions: 0.047,
        nnz_millions: 2.37,
        flop_sq_millions: 156.48,
        nnz_sq_millions: 7.90,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "scircuit",
        n_millions: 0.171,
        nnz_millions: 0.96,
        flop_sq_millions: 8.68,
        nnz_sq_millions: 5.22,
        class: MatrixClass::PowerLaw,
    },
    StandinSpec {
        name: "shipsec1",
        n_millions: 0.141,
        nnz_millions: 7.81,
        flop_sq_millions: 450.64,
        nnz_sq_millions: 24.09,
        class: MatrixClass::Band,
    },
    StandinSpec {
        name: "wb-edu",
        n_millions: 9.846,
        nnz_millions: 57.16,
        flop_sq_millions: 1559.58,
        nnz_sq_millions: 630.08,
        class: MatrixClass::PowerLaw,
    },
    StandinSpec {
        name: "webbase-1M",
        n_millions: 1.000,
        nnz_millions: 3.11,
        flop_sq_millions: 69.52,
        nnz_sq_millions: 51.11,
        class: MatrixClass::PowerLaw,
    },
];

impl StandinSpec {
    /// Average stored entries per row in the original matrix.
    pub fn avg_degree(&self) -> f64 {
        self.nnz_millions / self.n_millions
    }

    /// Paper-reported compression ratio `flop(A²) / nnz(A²)`.
    pub fn paper_compression_ratio(&self) -> f64 {
        self.flop_sq_millions / self.nnz_sq_millions
    }
}

/// Generate the stand-in for `spec` with dimensions scaled down by
/// `divisor` (1 = full Table 2 size). The average degree — and hence
/// the compression-ratio class — is preserved under scaling.
pub fn generate_standin(spec: &StandinSpec, divisor: usize, rng: &mut Rng) -> Csr<f64> {
    let divisor = divisor.max(1) as f64;
    let n = ((spec.n_millions * 1e6 / divisor) as usize).max(1 << 10);
    let degree = spec.avg_degree().max(1.0);
    match spec.class {
        MatrixClass::Band => band_matrix(n, degree.round() as usize, rng),
        MatrixClass::Grid => {
            let k = (n as f64).sqrt() as usize;
            poisson::poisson2d(k.max(4))
        }
        MatrixClass::Uniform => uniform_matrix(n, (n as f64 * degree) as usize, rng),
        MatrixClass::PowerLaw => {
            let scale = (n as f64).log2().round().max(10.0) as u32;
            rmat::generate_kind(rmat::RmatKind::G500, scale, degree.ceil() as usize, rng)
        }
    }
}

/// Generate all 26 stand-ins. `divisor` scales every dimension;
/// the paper's full sizes need ~16 GB and hours on this class of
/// machine, `divisor = 16` runs the whole suite in minutes.
pub fn standin_suite(divisor: usize, seed: u64) -> Vec<(&'static str, Csr<f64>)> {
    TABLE2
        .iter()
        .map(|spec| {
            let mut r = crate::rng(seed ^ fxhash(spec.name));
            (spec.name, generate_standin(spec, divisor, &mut r))
        })
        .collect()
}

/// A banded matrix: each row holds a contiguous block of `width`
/// entries centred on the diagonal (clipped at the borders), the
/// classic FEM profile. Values are uniform in `(0, 1]`.
pub fn band_matrix(n: usize, width: usize, rng: &mut Rng) -> Csr<f64> {
    let width = width.clamp(1, n);
    let mut coo = Coo::with_capacity(n, n, n * width).expect("dimensions in range");
    for i in 0..n {
        let lo = i.saturating_sub(width / 2).min(n - width);
        for c in lo..lo + width {
            coo.push(i, c as ColIdx, rng.random::<f64>().max(f64::MIN_POSITIVE))
                .unwrap();
        }
    }
    coo.into_csr_sum()
}

/// Block-size distribution of [`block_diagonal`].
///
/// The two variants bracket the shard runtime's load-balance space:
/// `Uniform` is shard-*friendly* (any contiguous row split lands near
/// the block boundaries and every shard gets similar work), while
/// `HeadHeavy` is shard-*hostile* (work piles into the leading rows
/// and columns, so row-count splits — and uniform grids — misbalance
/// badly and only flop-weighted cut selection recovers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockSkew {
    /// Equal-sized diagonal blocks.
    Uniform,
    /// Geometrically shrinking blocks: the first holds about half the
    /// rows, the second a quarter, and so on.
    HeadHeavy,
}

/// Block boundaries for `nblocks` blocks over `n` rows under `skew`.
pub fn block_cuts(n: usize, nblocks: usize, skew: BlockSkew) -> Vec<usize> {
    let nblocks = nblocks.clamp(1, n.max(1));
    let mut cuts = Vec::with_capacity(nblocks + 1);
    cuts.push(0usize);
    match skew {
        BlockSkew::Uniform => {
            for b in 1..nblocks {
                cuts.push(b * n / nblocks);
            }
        }
        BlockSkew::HeadHeavy => {
            let mut start = 0usize;
            for b in 1..nblocks {
                // Halve the remainder each step, keeping ≥ 1 row per
                // remaining block.
                let remaining_blocks = nblocks - b + 1;
                let take = ((n - start) / 2)
                    .max(1)
                    .min(n - start - (remaining_blocks - 1));
                start += take;
                cuts.push(start);
            }
        }
    }
    cuts.push(n);
    cuts
}

/// A block-diagonal matrix: `nblocks` square diagonal blocks, each
/// internally banded. Structure class of coupled-subsystem matrices
/// (multiphysics couplings, DBCSR-style block workloads); with
/// [`BlockSkew`] it doubles as the shard runtime's balance stressor.
///
/// `width` is the band width of an *average-sized* block; each
/// block's actual width scales with its row count, so under
/// [`BlockSkew::HeadHeavy`] the oversized head block is also
/// proportionally denser — flops (∝ width²) pile into the leading
/// rows quadratically, the genuinely shard-hostile profile. Values
/// are uniform in `(0, 1]`; rows come out sorted.
pub fn block_diagonal(
    n: usize,
    nblocks: usize,
    width: usize,
    skew: BlockSkew,
    rng: &mut Rng,
) -> Csr<f64> {
    let cuts = block_cuts(n, nblocks, skew);
    let width = width.max(1);
    let nblocks = cuts.len() - 1;
    let mut coo = Coo::with_capacity(n, n, 2 * n * width).expect("dimensions in range");
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let bw = (width * (hi - lo) * nblocks / n.max(1)).max(1).min(hi - lo);
        for i in lo..hi {
            let start = i.saturating_sub(bw / 2).clamp(lo, hi - bw);
            for c in start..start + bw {
                coo.push(i, c as ColIdx, rng.random::<f64>().max(f64::MIN_POSITIVE))
                    .unwrap();
            }
        }
    }
    coo.into_csr_sum()
}

/// A uniform Erdős–Rényi matrix with `m` sampled coordinates
/// (duplicates merged, so realized nnz is slightly lower).
pub fn uniform_matrix(n: usize, m: usize, rng: &mut Rng) -> Csr<f64> {
    let mut coo = Coo::with_capacity(n, n, m).expect("dimensions in range");
    for _ in 0..m {
        let r = rng.random_range(0..n);
        let c = rng.random_range(0..n) as ColIdx;
        coo.push(r, c, rng.random::<f64>().max(f64::MIN_POSITIVE))
            .unwrap();
    }
    coo.into_csr_sum()
}

/// Tiny deterministic string hash for per-matrix seed derivation.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_row_count() {
        assert_eq!(TABLE2.len(), 26);
        // spot-check two entries against the paper's table
        let pdb = TABLE2.iter().find(|s| s.name == "pdb1HYS").unwrap();
        assert!((pdb.paper_compression_ratio() - 28.35).abs() < 0.1);
        let web = TABLE2.iter().find(|s| s.name == "webbase-1M").unwrap();
        assert!(web.paper_compression_ratio() < 1.5);
    }

    #[test]
    fn band_matrix_width_respected() {
        let m = band_matrix(100, 9, &mut crate::rng(1));
        assert_eq!(m.shape(), (100, 100));
        for i in 0..100 {
            assert_eq!(m.row_nnz(i), 9, "row {i}");
            let cols = m.row_cols(i);
            let span = (cols[cols.len() - 1] - cols[0]) as usize;
            assert!(span < 9, "row {i} not contiguous");
        }
    }

    #[test]
    fn band_matrix_degenerate_widths() {
        let m = band_matrix(10, 1, &mut crate::rng(1));
        assert_eq!(m.nnz(), 10);
        let m = band_matrix(10, 100, &mut crate::rng(1));
        assert_eq!(m.nnz(), 100, "width clamps to n");
    }

    #[test]
    fn block_cuts_cover_and_skew() {
        let u = block_cuts(100, 4, BlockSkew::Uniform);
        assert_eq!(u, vec![0, 25, 50, 75, 100]);
        let h = block_cuts(100, 4, BlockSkew::HeadHeavy);
        assert_eq!(h.first(), Some(&0));
        assert_eq!(h.last(), Some(&100));
        assert!(h.windows(2).all(|w| w[0] < w[1]), "{h:?}");
        assert_eq!(h[1], 50, "head block takes half");
        // Degenerate: more blocks than rows, single block.
        let tiny = block_cuts(3, 8, BlockSkew::HeadHeavy);
        assert_eq!(*tiny.last().unwrap(), 3);
        assert_eq!(block_cuts(10, 1, BlockSkew::Uniform), vec![0, 10]);
    }

    #[test]
    fn block_diagonal_stays_inside_blocks() {
        for skew in [BlockSkew::Uniform, BlockSkew::HeadHeavy] {
            let n = 64;
            let m = block_diagonal(n, 4, 5, skew, &mut crate::rng(11));
            assert_eq!(m.shape(), (n, n));
            assert!(m.validate().is_ok());
            assert!(m.is_sorted());
            let cuts = block_cuts(n, 4, skew);
            for i in 0..n {
                let b = cuts.partition_point(|&c| c <= i) - 1;
                for &c in m.row_cols(i) {
                    assert!(
                        (cuts[b]..cuts[b + 1]).contains(&(c as usize)),
                        "{skew:?}: entry ({i}, {c}) escapes block {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn head_heavy_concentrates_work_and_uniform_balances_it() {
        let n = 256;
        let hostile = block_diagonal(n, 4, 9, BlockSkew::HeadHeavy, &mut crate::rng(5));
        let friendly = block_diagonal(n, 4, 9, BlockSkew::Uniform, &mut crate::rng(5));
        // Work (flops of A²) landing in the first quarter of the rows.
        let head_share = |m: &Csr<f64>| {
            let w = spgemm_sparse::stats::row_flops(m, m);
            let head: u64 = w[..n / 4].iter().sum();
            head as f64 / w.iter().sum::<u64>().max(1) as f64
        };
        let hostile_share = head_share(&hostile);
        let friendly_share = head_share(&friendly);
        assert!(hostile_share > 0.4, "head-heavy head share {hostile_share}");
        assert!(
            (friendly_share - 0.25).abs() < 0.1,
            "uniform head share {friendly_share}"
        );
        // Deterministic under a fixed seed.
        let again = block_diagonal(n, 4, 9, BlockSkew::HeadHeavy, &mut crate::rng(5));
        assert_eq!(hostile, again);
    }

    #[test]
    fn uniform_matrix_budget() {
        let m = uniform_matrix(500, 5000, &mut crate::rng(3));
        assert!(m.nnz() <= 5000);
        assert!(m.nnz() > 4500, "dedup removes only a few percent");
    }

    #[test]
    fn standins_deterministic_and_valid() {
        let a = generate_standin(&TABLE2[0], 64, &mut crate::rng(5));
        let b = generate_standin(&TABLE2[0], 64, &mut crate::rng(5));
        assert_eq!(a, b);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn classes_produce_distinct_compression_regimes() {
        use spgemm_sparse::stats;
        let mut r = crate::rng(7);
        // Band: high CR proxy (flop per nnz of A); PowerLaw: skewed.
        let band = band_matrix(2000, 40, &mut r);
        let pl = rmat::generate_kind(rmat::RmatKind::G500, 11, 8, &mut r);
        let band_cr_proxy = stats::flop(&band, &band) as f64 / band.nnz() as f64;
        let pl_cr_proxy = stats::flop(&pl, &pl) as f64 / pl.nnz() as f64;
        assert!(band_cr_proxy > 30.0, "band flop/nnz {band_cr_proxy}");
        let band_cv = stats::structure_stats(&band).row_cv;
        let pl_cv = stats::structure_stats(&pl).row_cv;
        assert!(
            pl_cv > 5.0 * band_cv.max(0.01),
            "powerlaw skew {pl_cv} vs band {band_cv}"
        );
        let _ = pl_cr_proxy;
    }

    #[test]
    fn suite_generation_small_divisor_smoke() {
        // Huge divisor => every matrix collapses to the 1024-row floor;
        // fast enough for CI and still exercises every class.
        let suite = standin_suite(100_000, 42);
        assert_eq!(suite.len(), 26);
        for (name, m) in &suite {
            assert!(m.validate().is_ok(), "{name}");
            assert!(m.nnz() > 0, "{name} empty");
            assert!(m.is_sorted(), "{name}");
        }
    }
}
