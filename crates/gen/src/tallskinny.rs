//! Tall-skinny right-hand operands (§5.5).
//!
//! "In our evaluations, we generate the tall-skinny matrix by randomly
//! selecting columns from the graph itself": the result stands for a
//! stack of BFS frontiers or a column subset in memory-efficient
//! Markov clustering.

use crate::Rng;
use spgemm_sparse::{ops, ColIdx, Csr, SparseError};

/// Pick `k` distinct column indices of `a` uniformly at random, in
/// ascending order (partial Fisher–Yates over the index set).
pub fn sample_columns(ncols: usize, k: usize, rng: &mut Rng) -> Vec<ColIdx> {
    assert!(k <= ncols, "cannot sample {k} of {ncols} columns");
    let perm = crate::perm::random_permutation(ncols, rng);
    let mut sel: Vec<ColIdx> = perm[..k].iter().map(|&x| x as ColIdx).collect();
    sel.sort_unstable();
    sel
}

/// Build the tall-skinny operand: `a` restricted to `k` random columns
/// (relabelled `0..k`). For a scale-`s` graph and short-side scale
/// `t`, the paper uses `k = 2^t`.
pub fn tall_skinny(a: &Csr<f64>, k: usize, rng: &mut Rng) -> Result<Csr<f64>, SparseError> {
    let sel = sample_columns(a.ncols(), k, rng);
    ops::select_columns(a, &sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rmat, RmatKind};

    #[test]
    fn sampled_columns_distinct_ascending() {
        let mut r = crate::rng(21);
        let s = sample_columns(100, 20, &mut r);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&c| c < 100));
    }

    #[test]
    fn sample_all_is_identity_set() {
        let s = sample_columns(10, 10, &mut crate::rng(1));
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let _ = sample_columns(5, 6, &mut crate::rng(1));
    }

    #[test]
    fn tall_skinny_shape_and_content() {
        let g = rmat::generate_kind(RmatKind::G500, 9, 16, &mut crate::rng(2));
        let ts = tall_skinny(&g, 64, &mut crate::rng(3)).unwrap();
        assert_eq!(ts.nrows(), g.nrows());
        assert_eq!(ts.ncols(), 64);
        assert!(ts.nnz() < g.nnz());
        assert!(ts.nnz() > 0);
        assert!(ts.is_sorted());
        assert!(ts.validate().is_ok());
    }
}
