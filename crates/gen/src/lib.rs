//! Synthetic sparse-matrix generators for the SpGEMM evaluation.
//!
//! The paper's synthetic experiments (§5.1) draw inputs from the R-MAT
//! recursive generator [Chakrabarti et al. 2004] with two seed presets:
//!
//! * **ER** (`a = b = c = d = 0.25`) — Erdős–Rényi-like uniform
//!   matrices ("Uniform" in Table 4b);
//! * **G500** (`a = 0.57, b = c = 0.19, d = 0.05`) — the Graph500
//!   power-law preset ("Skewed" in Table 4b).
//!
//! A *scale* `s` matrix is `2^s × 2^s`; the *edge factor* is the target
//! average number of stored entries per row.
//!
//! Beyond R-MAT this crate provides the rest of the evaluation's input
//! zoo: random column permutations (the unsorted-input protocol of
//! §5.1), tall-skinny frontier matrices (§5.5), a 2-D Poisson stencil
//! (the AMG application), and [`suite`] — synthetic stand-ins for the
//! 26 SuiteSparse matrices of Table 2, used when the real collection
//! is not on disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perm;
pub mod poisson;
pub mod rmat;
pub mod suite;
pub mod tallskinny;

pub use rmat::{RmatKind, RmatParams};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The project-wide deterministic RNG (a small, fast PRNG seeded
/// explicitly everywhere so experiments are reproducible run-to-run).
pub type Rng = SmallRng;

/// Construct the deterministic RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    SmallRng::seed_from_u64(seed)
}
