//! Property tests for the generators: structural validity, seed
//! determinism, and the statistical contracts the evaluation relies
//! on (ER uniformity vs G500 skew; stand-in class behaviour).

use proptest::prelude::*;
use spgemm_gen::{perm, rmat, suite, tallskinny, RmatKind};
use spgemm_sparse::stats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rmat_always_valid_and_in_budget(
        scale in 4u32..10,
        ef in 1usize..17,
        seed in 0u64..10_000,
        skewed in prop::bool::ANY,
    ) {
        let kind = if skewed { RmatKind::G500 } else { RmatKind::Er };
        let m = rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(seed));
        let n = 1usize << scale;
        prop_assert_eq!(m.shape(), (n, n));
        prop_assert!(m.validate().is_ok());
        prop_assert!(m.is_sorted());
        prop_assert!(m.nnz() <= ef * n, "dedup can only shrink");
    }

    #[test]
    fn rmat_seed_determinism(scale in 4u32..9, seed in 0u64..1000) {
        let a = rmat::generate_kind(RmatKind::G500, scale, 8, &mut spgemm_gen::rng(seed));
        let b = rmat::generate_kind(RmatKind::G500, scale, 8, &mut spgemm_gen::rng(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn permutations_are_bijections(n in 0usize..300, seed in 0u64..1000) {
        let p = perm::random_permutation(n, &mut spgemm_gen::rng(seed));
        let mut seen = vec![false; n];
        for &x in &p {
            prop_assert!(!seen[x]);
            seen[x] = true;
        }
    }

    #[test]
    fn tall_skinny_columns_are_a_subset(
        scale in 5u32..9,
        seed in 0u64..1000,
        k_frac in 1usize..8,
    ) {
        let g = rmat::generate_kind(RmatKind::Er, scale, 8, &mut spgemm_gen::rng(seed));
        let k = (g.ncols() / (k_frac + 1)).max(1);
        let ts = tallskinny::tall_skinny(&g, k, &mut spgemm_gen::rng(seed ^ 1)).unwrap();
        prop_assert_eq!(ts.nrows(), g.nrows());
        prop_assert_eq!(ts.ncols(), k);
        prop_assert!(ts.nnz() <= g.nnz());
        prop_assert!(ts.validate().is_ok());
        // every row of the tall-skinny operand is no larger than the
        // original row (column selection only removes entries)
        for i in 0..g.nrows() {
            prop_assert!(ts.row_nnz(i) <= g.row_nnz(i));
        }
    }

    #[test]
    fn band_matrices_have_exact_rows(n in 8usize..200, w in 1usize..12) {
        let m = suite::band_matrix(n, w, &mut spgemm_gen::rng(1));
        let w = w.min(n);
        for i in 0..n {
            prop_assert_eq!(m.row_nnz(i), w, "row {}", i);
        }
        prop_assert!(m.is_sorted());
    }

    #[test]
    fn uniform_matrices_hit_budget_within_dedup(n in 16usize..300, mult in 1usize..8) {
        let target = n * mult;
        let m = suite::uniform_matrix(n, target, &mut spgemm_gen::rng(2));
        prop_assert!(m.nnz() <= target);
        // birthday-bound slack: with density ≤ 8/n of n² cells, dedup
        // removes only a few percent
        prop_assert!(m.nnz() * 10 >= target * 8, "{} of {}", m.nnz(), target);
    }
}

#[test]
fn g500_skew_exceeds_er_skew_across_seeds() {
    // the Table 4b uniform/skewed split must be robust, not a lucky seed
    for seed in 0..5u64 {
        let er = rmat::generate_kind(RmatKind::Er, 10, 16, &mut spgemm_gen::rng(seed));
        let g = rmat::generate_kind(RmatKind::G500, 10, 16, &mut spgemm_gen::rng(seed));
        let cv_er = stats::structure_stats(&er).row_cv;
        let cv_g = stats::structure_stats(&g).row_cv;
        assert!(cv_g > cv_er, "seed {seed}: {cv_g} vs {cv_er}");
    }
}

#[test]
fn standin_suite_covers_compression_spectrum() {
    // the Figure 14/15/17 x-axis needs both low- and high-CR matrices;
    // verify via the flop/nnz proxy (cheap, no multiply)
    let suite = suite::standin_suite(100_000, 3);
    let mut proxies: Vec<f64> = suite
        .iter()
        .map(|(_, m)| stats::flop(m, m) as f64 / m.nnz().max(1) as f64)
        .collect();
    proxies.sort_by(|a, b| a.total_cmp(b));
    assert!(
        proxies.first().unwrap() < &16.0,
        "suite lacks low-CR members"
    );
    assert!(
        proxies.last().unwrap() > &40.0,
        "suite lacks high-CR members"
    );
}
