//! Accumulator-level microbenchmarks: raw insert/extract throughput
//! of each accumulator data structure, isolated from the kernel
//! drivers — the direct measure of §4.2's design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgemm::algos::{
    hash::HashAccumulator, hashvec::HashVecAccumulator, kkhash::KkHashAccumulator,
    spa::SpaAccumulator,
};
use spgemm_sparse::PlusTimes;
use std::time::Duration;

type P = PlusTimes<f64>;

/// Pseudo-random column streams with controllable duplication (the
/// compression-ratio analogue at accumulator level).
fn key_stream(n: usize, distinct: usize, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize % distinct) as u32
        })
        .collect()
}

fn bench_insert_extract(c: &mut Criterion) {
    const N: usize = 4096;
    let ncols = 1 << 20;
    for (label, distinct) in [("cr1", N), ("cr8", N / 8)] {
        let keys = key_stream(N, distinct, 0x5eed);
        let mut g = c.benchmark_group(format!("accumulate_{label}"));
        g.sample_size(20).measurement_time(Duration::from_secs(2));
        g.bench_with_input(BenchmarkId::new("hash", N), &keys, |b, keys| {
            let mut acc = HashAccumulator::<P>::new(N, ncols);
            let mut cols = vec![0u32; N];
            let mut vals = vec![0.0f64; N];
            b.iter(|| {
                for &k in keys {
                    acc.insert_numeric(k, 1.0);
                }
                let n = acc.len();
                acc.extract_into(&mut cols[..n], &mut vals[..n], true);
                n
            })
        });
        g.bench_with_input(BenchmarkId::new("hashvec", N), &keys, |b, keys| {
            let mut acc = HashVecAccumulator::<P>::new(N, ncols);
            let mut cols = vec![0u32; N];
            let mut vals = vec![0.0f64; N];
            b.iter(|| {
                for &k in keys {
                    acc.insert_numeric(k, 1.0);
                }
                let n = acc.len();
                acc.extract_into(&mut cols[..n], &mut vals[..n], true);
                n
            })
        });
        g.bench_with_input(BenchmarkId::new("kkhash", N), &keys, |b, keys| {
            let mut acc = KkHashAccumulator::<P>::new(N, ncols);
            let mut cols = vec![0u32; N];
            let mut vals = vec![0.0f64; N];
            b.iter(|| {
                for &k in keys {
                    acc.insert_numeric(k, 1.0);
                }
                let n = acc.len();
                acc.extract_into(&mut cols[..n], &mut vals[..n], true);
                n
            })
        });
        g.bench_with_input(BenchmarkId::new("spa", N), &keys, |b, keys| {
            let mut acc = SpaAccumulator::<P>::new(ncols);
            let mut cols = vec![0u32; N];
            let mut vals = vec![0.0f64; N];
            b.iter(|| {
                acc.begin_row();
                for &k in keys {
                    acc.insert_numeric(k, 1.0);
                }
                let n = acc.len();
                acc.extract_into(&mut cols[..n], &mut vals[..n], true);
                n
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_insert_extract);
criterion_main!(benches);
