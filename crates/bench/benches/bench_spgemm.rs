//! Criterion benchmarks of the full SpGEMM kernels on R-MAT inputs —
//! the per-kernel companion to the figure binaries, with statistical
//! rigor on a fixed small workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::PlusTimes;
use std::time::Duration;

fn bench_square(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    for kind in [spgemm_gen::RmatKind::Er, spgemm_gen::RmatKind::G500] {
        let a = spgemm_gen::rmat::generate_kind(kind, 10, 8, &mut spgemm_gen::rng(42));
        let mut g = c.benchmark_group(format!("square_{}", kind.name()));
        g.sample_size(10).measurement_time(Duration::from_secs(2));
        for algo in [
            Algorithm::Hash,
            Algorithm::HashVec,
            Algorithm::Heap,
            Algorithm::Spa,
            Algorithm::Merge,
            Algorithm::Inspector,
            Algorithm::KkHash,
        ] {
            g.bench_with_input(BenchmarkId::new(algo.name(), "sorted"), &a, |b, a| {
                b.iter(|| {
                    multiply_in::<PlusTimes<f64>>(a, a, algo, OutputOrder::Sorted, &pool).unwrap()
                })
            });
            if algo.supports_sort_skip() {
                g.bench_with_input(BenchmarkId::new(algo.name(), "unsorted"), &a, |b, a| {
                    b.iter(|| {
                        multiply_in::<PlusTimes<f64>>(a, a, algo, OutputOrder::Unsorted, &pool)
                            .unwrap()
                    })
                });
            }
        }
        g.finish();
    }
}

fn bench_tall_skinny(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let a = spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::G500,
        11,
        16,
        &mut spgemm_gen::rng(7),
    );
    let ts = spgemm_gen::tallskinny::tall_skinny(&a, 64, &mut spgemm_gen::rng(8)).unwrap();
    let mut g = c.benchmark_group("tall_skinny");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::Heap] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                multiply_in::<PlusTimes<f64>>(&a, &ts, algo, OutputOrder::Sorted, &pool).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_square, bench_tall_skinny);
criterion_main!(benches);
