//! Microbenchmarks of the runtime substrate: parallel scan, the
//! flop-balanced partitioner, pool region overhead, and the R-MAT
//! generator.

use criterion::{criterion_group, criterion_main, Criterion};
use spgemm_par::{partition, scan, Pool, Schedule};
use std::time::Duration;

fn micro_scan(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let base: Vec<u64> = (0..1_000_000u64).map(|i| i % 17).collect();
    let mut g = c.benchmark_group("scan_1M");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("sequential", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| scan::inclusive_scan_in_place(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("parallel", |b| {
        b.iter_batched(
            || base.clone(),
            |mut v| scan::parallel_inclusive_scan(&pool, &mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn micro_partition(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let weights: Vec<u64> = (0..1_000_000u64).map(|i| (i * 2654435761) % 1000).collect();
    let mut g = c.benchmark_group("partition_1M");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("balanced_offsets", |b| {
        b.iter(|| partition::balanced_offsets(&weights, 64, &pool))
    });
    g.finish();
}

fn micro_pool(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let mut g = c.benchmark_group("pool_region");
    g.sample_size(50).measurement_time(Duration::from_secs(2));
    g.bench_function("empty_broadcast", |b| b.iter(|| pool.broadcast(|_| {})));
    g.bench_function("parallel_for_4k_static", |b| {
        b.iter(|| {
            pool.parallel_for(4096, Schedule::Static, |i| {
                std::hint::black_box(i);
            })
        })
    });
    g.finish();
}

fn micro_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmat_scale10_ef8");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for kind in [spgemm_gen::RmatKind::Er, spgemm_gen::RmatKind::G500] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| spgemm_gen::rmat::generate_kind(kind, 10, 8, &mut spgemm_gen::rng(1)).nnz())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    micro_scan,
    micro_partition,
    micro_pool,
    micro_generator
);
criterion_main!(benches);
