//! Ablations of the design choices DESIGN.md calls out:
//!
//! * sort-skip: sorted vs unsorted output on the same kernel (§5.4.4);
//! * SIMD level: HashVector probing at scalar / AVX2 / AVX-512;
//! * phases: two-phase Hash vs one-phase Inspector (same accumulator);
//! * partition: flop-balanced offsets vs equal-rows static split.

use criterion::{criterion_group, criterion_main, Criterion};
use spgemm::algos::simd::{self, SimdLevel};
use spgemm::tuning::{heap_multiply_tuned, MemScheme, RowSchedule};
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::PlusTimes;
use std::time::Duration;

type P = PlusTimes<f64>;

fn ablation_sort_skip(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let a = spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::G500,
        10,
        16,
        &mut spgemm_gen::rng(1),
    );
    let mut g = c.benchmark_group("ablation_sort_skip");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
        g.bench_function(format!("hash_{order:?}"), |b| {
            b.iter(|| multiply_in::<P>(&a, &a, Algorithm::Hash, order, &pool).unwrap())
        });
    }
    g.finish();
}

fn ablation_simd_level(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let a = spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::G500,
        10,
        16,
        &mut spgemm_gen::rng(2),
    );
    let mut levels = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            levels.push(SimdLevel::Avx2);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            levels.push(SimdLevel::Avx512);
        }
    }
    let mut g = c.benchmark_group("ablation_simd_level");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for level in levels {
        g.bench_function(level.name(), |b| {
            b.iter(|| {
                spgemm::algos::hashvec::multiply_with_level::<P>(
                    &a,
                    &a,
                    OutputOrder::Sorted,
                    &pool,
                    level,
                )
            })
        });
    }
    let _ = simd::detect();
    g.finish();
}

fn ablation_phases(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    let a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, 10, 16, &mut spgemm_gen::rng(3));
    let mut g = c.benchmark_group("ablation_phases");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("two_phase_hash_unsorted", |b| {
        b.iter(|| multiply_in::<P>(&a, &a, Algorithm::Hash, OutputOrder::Unsorted, &pool).unwrap())
    });
    g.bench_function("one_phase_inspector", |b| {
        b.iter(|| {
            multiply_in::<P>(&a, &a, Algorithm::Inspector, OutputOrder::Unsorted, &pool).unwrap()
        })
    });
    g.finish();
}

fn ablation_partition(c: &mut Criterion) {
    let pool = Pool::with_all_threads();
    // skewed input makes the partition matter
    let a = spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::G500,
        10,
        16,
        &mut spgemm_gen::rng(4),
    );
    let mut g = c.benchmark_group("ablation_partition");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("heap_equal_rows", |b| {
        b.iter(|| heap_multiply_tuned::<P>(&a, &a, &pool, RowSchedule::Static, MemScheme::Parallel))
    });
    g.bench_function("heap_flop_balanced", |b| {
        b.iter(|| {
            heap_multiply_tuned::<P>(
                &a,
                &a,
                &pool,
                RowSchedule::FlopBalanced,
                MemScheme::Parallel,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_sort_skip,
    ablation_simd_level,
    ablation_phases,
    ablation_partition
);
criterion_main!(benches);
