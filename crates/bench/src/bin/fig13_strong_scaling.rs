//! Figure 13: strong scaling with thread count (scale 16, EF 16 in
//! the paper; ER and G500 panels).
//!
//! The paper sweeps 1–272 threads on KNL including hyper-threaded
//! oversubscription points. This machine has far fewer cores, so the
//! sweep is 1..4× the hardware threads — the shape to check is linear
//! scaling to the physical core count and the flattening beyond it.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig13_strong_scaling [--scale N] [--reps N]
//! ```

use spgemm::OutputOrder;
use spgemm_bench::{args::BenchArgs, panel_label, runner, sorted_panel, unsorted_panel};
use spgemm_gen::{perm, rmat, RmatKind};
use spgemm_par::Pool;

fn main() {
    let args = BenchArgs::parse();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(spgemm_par::hardware_threads())
    );
    let scale = args.scale_or(12); // paper: 16
    let ef = args.ef_or(16);
    println!("# fig13: strong scaling (scale {scale}, EF {ef})");
    println!("pattern\tpanel\talgorithm\tthreads\tmflops");

    let hw = spgemm_par::hardware_threads();
    let mut counts = vec![];
    let mut t = 1usize;
    while t <= hw * 4 {
        counts.push(t);
        t *= 2;
    }

    for kind in [RmatKind::Er, RmatKind::G500] {
        let a = rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(args.seed));
        let u = perm::randomize_columns(&a, &mut spgemm_gen::rng(args.seed ^ 0xff));
        for &nt in &counts {
            let pool = Pool::new(nt);
            for algo in sorted_panel() {
                if algo == spgemm::Algorithm::Merge && args.quick {
                    continue;
                }
                match runner::time_multiply(&a, &a, algo, OutputOrder::Sorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{}\tsorted\t{}\t{}\t{:.1}",
                        kind.name(),
                        panel_label(algo, true),
                        nt,
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo}: {e}"),
                }
            }
            for algo in unsorted_panel() {
                match runner::time_multiply(&u, &u, algo, OutputOrder::Unsorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{}\tunsorted\t{}\t{}\t{:.1}",
                        kind.name(),
                        panel_label(algo, false),
                        nt,
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo}: {e}"),
                }
            }
        }
    }
}
