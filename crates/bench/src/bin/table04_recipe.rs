//! Table 4: the empirical recipe — measure every scenario cell, name
//! the winner on this machine, and print it next to the paper's
//! recommendation.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin table04_recipe [--scale N] [--reps N]
//! ```

use spgemm::{recipe, Algorithm, OutputOrder};
use spgemm_bench::{args::BenchArgs, runner};
use spgemm_gen::{perm, rmat, tallskinny, RmatKind};
use spgemm_par::Pool;
use spgemm_sparse::Csr;

fn winner(
    a: &Csr<f64>,
    b: &Csr<f64>,
    order: OutputOrder,
    pool: &Pool,
    reps: usize,
) -> (Algorithm, f64) {
    let mut best = (Algorithm::Hash, f64::INFINITY);
    for algo in [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Merge,
        Algorithm::Inspector,
        Algorithm::KkHash,
    ] {
        if let Ok(m) = runner::time_multiply(a, b, algo, order, pool, reps) {
            if m.secs < best.1 {
                best = (algo, m.secs);
            }
        }
    }
    best
}

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let scale = args.scale_or(12);
    println!("# table04b analogue: synthetic scenarios at scale {scale}; winner on this machine vs paper recipe");
    println!(
        "{:<12} {:>8} {:>9} {:>10} {:>12} {:>12}",
        "op", "pattern", "sparsity", "order", "measured", "paper"
    );

    for kind in [RmatKind::Er, RmatKind::G500] {
        let pattern = if kind == RmatKind::Er {
            recipe::Pattern::Uniform
        } else {
            recipe::Pattern::Skewed
        };
        for ef in [4usize, 16] {
            let a = rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(args.seed));
            let ua = perm::randomize_columns(&a, &mut spgemm_gen::rng(args.seed ^ 1));
            for (order, m) in [(OutputOrder::Sorted, &a), (OutputOrder::Unsorted, &ua)] {
                let (w, _) = winner(m, m, order, &pool, args.reps);
                let paper =
                    recipe::recommend_synthetic(recipe::OpKind::Square, pattern, ef as f64, order);
                println!(
                    "{:<12} {:>8} {:>9} {:>10} {:>12} {:>12}",
                    "AxA",
                    if pattern == recipe::Pattern::Uniform {
                        "uniform"
                    } else {
                        "skewed"
                    },
                    if ef <= 8 { "sparse" } else { "dense" },
                    if order.is_sorted() {
                        "sorted"
                    } else {
                        "unsorted"
                    },
                    w.name(),
                    paper.name()
                );
            }
        }
    }

    // tall-skinny rows of Table 4b (paper measured the skewed column)
    let g = rmat::generate_kind(RmatKind::G500, scale, 16, &mut spgemm_gen::rng(args.seed));
    let ts = tallskinny::tall_skinny(&g, 1 << (scale / 2), &mut spgemm_gen::rng(args.seed ^ 2))
        .expect("tall-skinny");
    for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
        let (w, _) = winner(&g, &ts, order, &pool, args.reps);
        let paper = recipe::recommend_synthetic(
            recipe::OpKind::TallSkinny,
            recipe::Pattern::Skewed,
            16.0,
            order,
        );
        println!(
            "{:<12} {:>8} {:>9} {:>10} {:>12} {:>12}",
            "TallSkinny",
            "skewed",
            "dense",
            if order.is_sorted() {
                "sorted"
            } else {
                "unsorted"
            },
            w.name(),
            paper.name()
        );
    }
    println!("# paper columns are Table 4's KNL recipe; winners here reflect this machine");
}
