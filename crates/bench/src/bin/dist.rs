//! `spgemm-dist` — sharded vs monolithic SpGEMM: shard-count ×
//! partition-shape sweep over R-MAT / Poisson / block-diagonal
//! inputs, reporting steady-state speedup and peak per-shard partial
//! memory against the monolithic kernel.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-dist -- \
//!     [--grids 1x1,2x1,4x1,2x2] [--threads-per-shard N] [--scale N] \
//!     [--ef N] [--reps N] [--seed N] [--quick]
//!     [--smoke]   # CI assertion run: sharded == monolithic, 2x2 peak
//!                 # partial memory < monolithic workspace footprint
//! ```
//!
//! The **monolithic workspace footprint** is accounted as the bytes of
//! the product's output arrays (`rpts`/`cols`/`vals`) — the storage
//! the single-node kernel must hold in one memory domain while
//! building `C`, and a deliberate *lower bound* (per-thread
//! accumulators come on top). Peak per-shard partial memory counts a
//! shard's live stage partials plus its merged block while both
//! coexist. On a 1-CPU container shard threads time-slice, so the
//! speedup column mostly shows overhead; the memory columns are the
//! point — each shard's peak stays a grid-factor below the monolithic
//! footprint, which is what lets a sharded fleet serve products no
//! single workspace could.

use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_dist::{csr_bytes, DistConfig, GridSpec, ShardRuntime};
use spgemm_par::Pool;
use spgemm_sparse::{approx_eq_f64, Csr, PlusTimes};
use std::time::Instant;

type P = PlusTimes<f64>;

struct Args {
    grids: Vec<GridSpec>,
    threads_per_shard: usize,
    scale: u32,
    ef: usize,
    reps: usize,
    seed: u64,
    smoke: bool,
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        grids: Vec::new(),
        threads_per_shard: 1,
        scale: 0,
        ef: 8,
        reps: 3,
        seed: 20180804,
        smoke: false,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--grids" => {
                out.grids = take("--grids")
                    .split(',')
                    .map(|s| {
                        GridSpec::parse(s.trim()).unwrap_or_else(|| {
                            eprintln!("bad grid {s:?} (expected RxC, e.g. 2x2)");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--threads-per-shard" => out.threads_per_shard = num(&take("--threads-per-shard")),
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef = num(&take("--ef")),
            "--reps" => out.reps = num(&take("--reps")).max(1),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            // Accepted for run_all flag forwarding; not used here.
            "--threads" | "--divisor" | "--suitesparse" => {
                let _ = take(flag.as_str());
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --grids LIST --threads-per-shard N --scale N --ef N \
                     --reps N --seed N --smoke --quick"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.grids.is_empty() {
        out.grids = ["1x1", "2x1", "4x1", "2x2"]
            .iter()
            .map(|s| GridSpec::parse(s).expect("static grids parse"))
            .collect();
    }
    if out.scale == 0 {
        out.scale = if quick || out.smoke { 8 } else { 11 };
    }
    if quick {
        out.reps = out.reps.min(2);
    }
    out
}

/// The bench inputs: one high-skew graph, one regular stencil, one
/// shard-hostile block-diagonal (see `gen::suite::BlockSkew`).
fn inputs(scale: u32, ef: usize, seed: u64) -> Vec<(&'static str, Csr<f64>)> {
    let mut r = spgemm_gen::rng(seed);
    let n = 1usize << scale;
    vec![
        (
            "rmat-g500",
            spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, ef, &mut r),
        ),
        (
            "poisson2d",
            spgemm_gen::poisson::poisson2d((n as f64).sqrt() as usize),
        ),
        (
            "blockdiag-skew",
            spgemm_gen::suite::block_diagonal(
                n,
                8,
                ef,
                spgemm_gen::suite::BlockSkew::HeadHeavy,
                &mut r,
            ),
        ),
    ]
}

/// Median wall time of `reps` runs of `f`.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut ts: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    ts.sort_by(|a, b| a.total_cmp(b));
    ts[ts.len() / 2]
}

struct MonoBaseline {
    c: Csr<f64>,
    steady_s: f64,
    /// Output-array bytes: the single-domain allocation the monolithic
    /// kernel cannot avoid (a lower bound on its true footprint).
    footprint_bytes: u64,
}

/// Monolithic baseline: plan once, execute `reps` times on a pool as
/// wide as the whole shard fleet (fair total parallelism).
fn monolithic(a: &Csr<f64>, threads: usize, reps: usize) -> MonoBaseline {
    let pool = Pool::new(threads.max(1));
    let plan = SpgemmPlan::<P>::new_in(a, a, Algorithm::Hash, OutputOrder::Sorted, &pool)
        .expect("monolithic plan");
    let mut c = plan.execute_in(a, a, &pool).expect("monolithic execute");
    let steady_s = time_median(reps, || {
        plan.execute_into_in(a, a, &mut c, &pool)
            .expect("monolithic steady execute");
    });
    let footprint_bytes = csr_bytes(&c);
    MonoBaseline {
        c,
        steady_s,
        footprint_bytes,
    }
}

fn main() {
    let args = parse_args();
    if args.smoke {
        smoke(&args);
        return;
    }
    println!(
        "# spgemm-dist: scale {} ef {} reps {} threads/shard {}",
        args.scale, args.ef, args.reps, args.threads_per_shard
    );
    println!(
        "{:<16} {:<6} {:>10} {:>10} {:>8} {:>14} {:>14} {:>7}",
        "matrix",
        "grid",
        "mono_ms",
        "dist_ms",
        "speedup",
        "mono_foot_KiB",
        "peak_shard_KiB",
        "ratio"
    );
    for (name, a) in inputs(args.scale, args.ef, args.seed) {
        for &grid in &args.grids {
            let mono = monolithic(&a, grid.shards() * args.threads_per_shard, args.reps);
            let rt = ShardRuntime::new(DistConfig {
                grid,
                threads_per_shard: args.threads_per_shard,
                ..DistConfig::default()
            });
            // Warm the per-stage plan caches, check the result once.
            let (c, _) = rt.multiply_with_stats(&a, &a).expect("sharded product");
            assert!(
                approx_eq_f64(&c, &mono.c, 1e-12),
                "{name} {grid}: sharded result diverged from monolithic"
            );
            let mut last_peak = 0u64;
            let dist_s = time_median(args.reps, || {
                let (_, s) = rt.multiply_with_stats(&a, &a).expect("steady product");
                last_peak = s.max_peak_partial_bytes();
            });
            println!(
                "{:<16} {:<6} {:>10.2} {:>10.2} {:>8.2} {:>14.1} {:>14.1} {:>7.2}",
                name,
                grid.to_string(),
                mono.steady_s * 1e3,
                dist_s * 1e3,
                mono.steady_s / dist_s,
                mono.footprint_bytes as f64 / 1024.0,
                last_peak as f64 / 1024.0,
                last_peak as f64 / mono.footprint_bytes.max(1) as f64,
            );
        }
    }
}

/// CI smoke: a small R-MAT product on every grid must equal the
/// monolithic kernel, steady-state re-execution must be numeric-only
/// per shard, and on the 2×2 grid every shard's peak partial memory
/// must stay below the monolithic workspace footprint.
fn smoke(args: &Args) {
    let a = spgemm_gen::rmat::generate_kind(
        spgemm_gen::RmatKind::G500,
        args.scale,
        args.ef,
        &mut spgemm_gen::rng(args.seed),
    );
    let mono = monolithic(&a, 2, 1);
    for grid in [
        GridSpec::new(1, 1),
        GridSpec::new(2, 1),
        GridSpec::new(2, 2),
    ] {
        let rt = ShardRuntime::new(DistConfig {
            grid,
            ..DistConfig::default()
        });
        let (c1, s1) = rt.multiply_with_stats(&a, &a).expect("sharded product");
        assert!(
            approx_eq_f64(&c1, &mono.c, 1e-12),
            "{grid}: sharded != monolithic"
        );
        let (c2, s2) = rt.multiply_with_stats(&a, &a).expect("steady product");
        assert!(
            approx_eq_f64(&c2, &mono.c, 1e-12),
            "{grid}: steady run diverged"
        );
        assert_eq!(
            s2.plan_rebuilds, s1.plan_rebuilds,
            "{grid}: steady-state re-execution recomputed symbolic work"
        );
        assert_eq!(
            s2.plan_hits - s1.plan_hits,
            (grid.shards() * grid.stages()) as u64,
            "{grid}: every shard-stage should hit its plan"
        );
        if grid == GridSpec::new(2, 2) {
            let peak = s2.max_peak_partial_bytes();
            assert!(
                peak < mono.footprint_bytes,
                "2x2 peak shard partial {peak} B not below monolithic footprint {} B",
                mono.footprint_bytes
            );
            println!(
                "smoke 2x2: peak shard partial {:.1} KiB < monolithic footprint {:.1} KiB ({:.2}x)",
                peak as f64 / 1024.0,
                mono.footprint_bytes as f64 / 1024.0,
                peak as f64 / mono.footprint_bytes as f64
            );
        }
    }
    // Steady-state timing of the last (2×2) grid for the trajectory
    // stamp: one warm re-execution, plan caches already primed.
    let rt = ShardRuntime::new(DistConfig {
        grid: GridSpec::new(2, 2),
        ..DistConfig::default()
    });
    let _ = rt.multiply_with_stats(&a, &a).expect("warm product");
    let t = Instant::now();
    let (_, stats) = rt.multiply_with_stats(&a, &a).expect("timed product");
    let dist_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut stamp = spgemm_bench::perfjson::PerfReport::new("dist", 1);
    stamp
        .metric("mono_steady_ms", mono.steady_s * 1e3)
        .metric("dist_2x2_steady_ms", dist_ms)
        .metric(
            "peak_shard_partial_bytes",
            stats.max_peak_partial_bytes() as f64,
        )
        .metric("mono_footprint_bytes", mono.footprint_bytes as f64);
    match stamp.write() {
        Ok(path) => println!("perf stamp: {}", path.display()),
        Err(e) => eprintln!("could not write perf stamp: {e}"),
    }
    println!(
        "smoke ok: sharded gather equals monolithic on 1x1, 2x1, 2x2; steady state numeric-only"
    );
}
