//! `spgemm-delta` — incremental (delta-aware) plan maintenance vs
//! full rebinds on a dynamic-graph edit stream.
//!
//! The workload models a dynamic graph: an R-MAT base matrix takes a
//! stream of edit batches, each touching ~1% of its rows (alternating
//! between the left and right operand). Two maintainers race:
//!
//! * **incremental** — `Csr::apply_patch` →
//!   `SpgemmPlan::rebind_rows` (symbolic re-run for invalidated output
//!   rows only, row-pointer splice) → `SpgemmPlan::execute_rows`
//!   (numeric recompute of those rows, byte-copy of the rest);
//! * **full** — a fresh `SpgemmPlan::new` + `execute` per batch, the
//!   static-structure baseline.
//!
//! Reported: ms/batch for both maintainers, the speedup, and the mean
//! fraction of output rows the incremental path actually recomputed.
//! Every batch's incremental product is checked **byte-for-byte**
//! against the freshly built one — the differential-oracle contract
//! the `tests/` harness enforces, re-asserted here on bench-sized
//! inputs.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-delta -- \
//!     [--scale N] [--ef N] [--reps N] [--seed N] [--quick]
//!     [--smoke]   # CI assertion run: incremental == full rebuild
//!                 # byte-for-byte and < 20% rows recomputed per batch
//! ```

use spgemm::{Algorithm, DirtyRows, OutputOrder, RowPatch, SpgemmPlan};
use spgemm_sparse::{Csr, PlusTimes};
use std::time::Instant;

type P = PlusTimes<f64>;
type Plan = SpgemmPlan<P>;

struct Args {
    scale: u32,
    ef: usize,
    reps: usize,
    seed: u64,
    smoke: bool,
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 0,
        ef: 8,
        reps: 12,
        seed: 20180804,
        smoke: false,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef = num(&take("--ef")),
            "--reps" => out.reps = num(&take("--reps")).max(1),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            // Accepted for run_all flag forwarding; not used here.
            "--threads" | "--divisor" | "--suitesparse" | "--grid" => {
                let _ = take(flag.as_str());
            }
            "--help" | "-h" => {
                eprintln!("flags: --scale N --ef N --reps N --seed N --smoke --quick");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.scale == 0 {
        out.scale = if quick || out.smoke { 9 } else { 12 };
    }
    if quick {
        out.reps = out.reps.min(4);
    }
    out
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Deterministic edit batch `step`, touching `k` distinct rows with
/// one upsert each (a dynamic-graph tick: edge weight changes and new
/// edges, ~1% of rows per batch).
fn batch_patch(step: usize, k: usize, n: usize) -> RowPatch<f64> {
    let mut patch = RowPatch::new();
    for e in 0..k {
        // Stride by a unit coprime to n so the k rows are distinct.
        let row = (step * 131 + e * 97) % n;
        let col = ((step + 1) * 53 + e * 41) % n;
        patch.insert(row, col as u32, 0.5 + (step * k + e) as f64 * 1e-3);
    }
    patch
}

struct Totals {
    inc_ms: f64,
    full_ms: f64,
    recomputed: u64,
    rows_seen: u64,
    bytes_ok: bool,
}

fn run_stream(args: &Args, pool: &spgemm_par::Pool) -> Totals {
    let mut rng = spgemm_gen::rng(args.seed);
    let mut a =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, args.scale, args.ef, &mut rng);
    let mut b =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, args.scale, args.ef, &mut rng);
    let n = a.nrows();
    let edits = (n / 100).max(1); // ~1% of rows per batch
    let mut plan = Plan::new_in(&a, &b, Algorithm::Hash, OutputOrder::Sorted, pool).expect("plan");
    let mut c = plan.execute_in(&a, &b, pool).expect("execute");

    let mut t = Totals {
        inc_ms: 0.0,
        full_ms: 0.0,
        recomputed: 0,
        rows_seen: 0,
        bytes_ok: true,
    };
    for step in 0..args.reps {
        let patch = batch_patch(step, edits, n);
        let on_a = step % 2 == 0;

        let start = Instant::now();
        let (dirty_a, dirty_b);
        if on_a {
            let (next, dirty) = a.apply_patch(&patch).expect("patch a");
            a = next;
            dirty_a = dirty;
            dirty_b = DirtyRows::new(b.nrows());
        } else {
            let (next, dirty) = b.apply_patch(&patch).expect("patch b");
            b = next;
            dirty_b = dirty;
            dirty_a = DirtyRows::new(a.nrows());
        }
        let out = plan
            .rebind_rows_in(&a, &b, &dirty_a, &dirty_b, pool)
            .expect("rebind_rows");
        plan.execute_rows_in(&a, &b, &out, &mut c, pool)
            .expect("execute_rows");
        t.inc_ms += start.elapsed().as_secs_f64() * 1e3;
        t.recomputed += out.count() as u64;
        t.rows_seen += n as u64;

        let start = Instant::now();
        let fresh = Plan::new_in(&a, &b, Algorithm::Hash, OutputOrder::Sorted, pool)
            .expect("fresh plan")
            .execute_in(&a, &b, pool)
            .expect("fresh execute");
        t.full_ms += start.elapsed().as_secs_f64() * 1e3;

        t.bytes_ok &= bits_eq(&c, &fresh);
        std::hint::black_box(&fresh);
    }
    t
}

fn main() {
    let args = parse_args();
    let pool = spgemm_par::global_pool();
    let n = 1usize << args.scale;
    println!(
        "spgemm-delta: incremental plan maintenance vs full rebinds \
         (scale {} = {} rows, ef {}, {} batches of ~{} edits, {} threads)",
        args.scale,
        n,
        args.ef,
        args.reps,
        (n / 100).max(1),
        pool.nthreads()
    );
    let t = run_stream(&args, pool);
    let reps = args.reps as f64;
    let frac = t.recomputed as f64 / t.rows_seen.max(1) as f64;
    println!(
        "{:<28} {:>12} {:>12} {:>9} {:>16}",
        "maintainer", "ms/batch", "ms total", "speedup", "rows recomputed"
    );
    println!(
        "{:<28} {:>12.3} {:>12.1} {:>9} {:>15.2}%",
        "incremental (rebind_rows)",
        t.inc_ms / reps,
        t.inc_ms,
        "",
        frac * 100.0
    );
    println!(
        "{:<28} {:>12.3} {:>12.1} {:>8.2}x {:>15.2}%",
        "full rebuild (new plan)",
        t.full_ms / reps,
        t.full_ms,
        t.full_ms / t.inc_ms.max(1e-9),
        100.0
    );
    println!(
        "\n(every batch's incremental product was compared byte-for-byte \
         against a fresh plan: {})",
        if t.bytes_ok { "all equal" } else { "DIVERGED" }
    );

    if args.smoke {
        assert!(
            t.bytes_ok,
            "incremental maintenance must match full rebuilds byte-for-byte"
        );
        assert!(
            frac < 0.20,
            "a ~1% edit stream must recompute < 20% of rows, got {:.1}%",
            frac * 100.0
        );
        assert!(
            t.inc_ms < t.full_ms,
            "incremental maintenance must beat full rebuilds on a 1% edit \
             stream ({:.1} ms vs {:.1} ms)",
            t.inc_ms,
            t.full_ms
        );
        let mut stamp = spgemm_bench::perfjson::PerfReport::new("delta", pool.nthreads());
        stamp
            .metric("incremental_batch_ms", t.inc_ms / reps)
            .metric("full_rebuild_batch_ms", t.full_ms / reps)
            .metric("rows_recomputed_frac", frac);
        match stamp.write() {
            Ok(path) => println!("perf stamp: {}", path.display()),
            Err(e) => eprintln!("could not write perf stamp: {e}"),
        }
        println!(
            "smoke OK: incremental == full rebuild on every batch, \
             {:.1}% rows recomputed, {:.2}x speedup",
            frac * 100.0,
            t.full_ms / t.inc_ms.max(1e-9)
        );
    }
}
