//! Figure 12: MFLOPS vs matrix scale at fixed edge factor 16, ER and
//! G500, sorted and unsorted panels.
//!
//! Paper sweeps scale 8–20 (ER) / 8–17 (G500); defaults here sweep
//! 8–13/8–12 and `--scale` raises the ceiling. The shape to look for:
//! merge/MKL-like codes win small uniform inputs, hash-family kernels
//! take over as scale grows, and G500's skew hurts load-oblivious
//! codes throughout (§5.4.2).
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig12_size_scaling [--scale N] [--reps N]
//! ```

use spgemm::OutputOrder;
use spgemm_bench::{args::BenchArgs, panel_label, runner, sorted_panel, unsorted_panel};
use spgemm_gen::{perm, rmat, RmatKind};

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let ef = args.ef_or(16);
    let max_er = args.scale_or(13);
    let max_g500 = max_er.saturating_sub(1).max(8);
    println!("# fig12: MFLOPS vs scale (edge factor {ef})");
    println!("pattern\tpanel\talgorithm\tscale\tmflops");

    for (kind, max_scale) in [(RmatKind::Er, max_er), (RmatKind::G500, max_g500)] {
        for scale in 8..=max_scale {
            let a = rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(args.seed));
            for algo in sorted_panel() {
                match runner::time_multiply(&a, &a, algo, OutputOrder::Sorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{}\tsorted\t{}\t{}\t{:.1}",
                        kind.name(),
                        panel_label(algo, true),
                        scale,
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo}: {e}"),
                }
            }
            let u = perm::randomize_columns(&a, &mut spgemm_gen::rng(args.seed ^ 0xff));
            for algo in unsorted_panel() {
                match runner::time_multiply(&u, &u, algo, OutputOrder::Unsorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{}\tunsorted\t{}\t{}\t{:.1}",
                        kind.name(),
                        panel_label(algo, false),
                        scale,
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo}: {e}"),
                }
            }
        }
    }
}
