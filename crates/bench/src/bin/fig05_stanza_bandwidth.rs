//! Figure 5: random-stanza bandwidth, DDR measured vs MCDRAM-as-cache
//! modeled.
//!
//! The "DDR only" series is a real measurement on this machine; the
//! "MCDRAM as Cache" series applies the paper-calibrated two-level
//! model (DESIGN.md substitution S15) on top of the measured DDR
//! curve — reproducing the figure's shape: no benefit below ~64 B
//! stanzas, 3.4× at wide stanzas.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig05_stanza_bandwidth [--threads N] [--quick]
//! ```

use spgemm_bench::args::BenchArgs;
use spgemm_membench::{memmodel::MemoryModel, stanza};

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let (array, traffic, hi) = if args.quick {
        (1usize << 22, 1usize << 22, 10)
    } else {
        (1usize << 28, 1usize << 27, 14) // 256 MiB array; paper sweeps to 2^14 B
    };
    println!("# fig05: stanza bandwidth; array {} MiB", array >> 20);
    println!("series\tstanza_bytes\tgbytes_per_sec");
    let pts = stanza::sweep(&pool, array, traffic, 3, hi, stanza::Mode::Read);
    // calibrate the model's DDR peak on the widest measured stanza
    let peak = pts.last().map(|p| p.gbytes_per_sec).unwrap_or(10.0);
    let model = MemoryModel::default().with_measured_ddr(peak);
    for p in &pts {
        println!(
            "DDR-only(measured)\t{}\t{:.2}",
            p.stanza_bytes, p.gbytes_per_sec
        );
    }
    for p in &pts {
        // modeled curve = measured DDR point × paper ratio at that stanza
        let modeled = p.gbytes_per_sec * model.cache_mode_ratio(p.stanza_bytes as f64);
        println!(
            "MCDRAM-as-cache(modeled)\t{}\t{:.2}",
            p.stanza_bytes, modeled
        );
    }
    println!(
        "# model endpoints: ratio(64B) = {:.2}, ratio(8KiB) = {:.2} (paper: 1.0 / 3.4)",
        model.cache_mode_ratio(64.0),
        model.cache_mode_ratio(8192.0)
    );
}
