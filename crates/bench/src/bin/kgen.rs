//! `spgemm-kgen` — row-class specialized kernels (`Algorithm::RowClass`)
//! vs the monolithic kernels on the Figure 11 generator grid.
//!
//! For each generator cell (ER / G500 × edge factor) the harness holds
//! a bound plan per algorithm and times the steady-state
//! `execute_into` — the regime RowClass is built for, where the
//! bucketed work queues and compressed column indices are amortized
//! across executions. The rival roster is the paper's Figure 11
//! comparison panel for the chosen output order
//! ([`spgemm_bench::sorted_panel`] / [`spgemm_bench::unsorted_panel`]
//! — the same rosters the fig11–13 binaries plot): sorted output is
//! compared against MKL~Merge, Heap, Hash, and HashVector; unsorted
//! against MKL~SPA, MKL-inspector, Kokkos~KkHash, Hash, and
//! HashVector. Reported per cell: ms/iter for RowClass and every
//! rival, the speedup of RowClass over the *best* rival, and the
//! row-class bucket occupancy (tiny/short/medium/dense — see
//! `spgemm::kgen`).
//!
//! Every cell's RowClass output is compared **byte-for-byte** against
//! the hash kernel's under both output orders — the keystone parity
//! invariant, re-asserted on bench-sized inputs.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-kgen -- \
//!     [--scale N] [--ef N] [--reps N] [--seed N] [--quick]
//!     [--smoke]   # CI assertion run: RowClass == Hash byte-for-byte
//!                 # on every cell; writes the BENCH_kgen.json stamp
//! ```

use spgemm::{kgen, Algorithm, OutputOrder, SpgemmPlan};
use spgemm_gen::RmatKind;
use spgemm_sparse::{Csr, PlusTimes};
use std::time::Instant;

type P = PlusTimes<f64>;
type Plan = SpgemmPlan<P>;

struct Args {
    scale: u32,
    ef_override: Option<usize>,
    reps: usize,
    seed: u64,
    smoke: bool,
    order: OutputOrder,
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 0,
        ef_override: None,
        reps: 30,
        seed: 20180804,
        smoke: false,
        order: OutputOrder::Sorted,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef_override = Some(num(&take("--ef"))),
            "--reps" => out.reps = num(&take("--reps")).max(1),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            "--order" => {
                out.order = match take("--order").as_str() {
                    "sorted" => OutputOrder::Sorted,
                    "unsorted" => OutputOrder::Unsorted,
                    other => {
                        eprintln!("bad --order {other:?} (sorted|unsorted)");
                        std::process::exit(2);
                    }
                }
            }
            // Accepted for run_all flag forwarding; not used here.
            "--threads" | "--divisor" | "--suitesparse" | "--grid" => {
                let _ = take(flag.as_str());
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale N --ef N --reps N --seed N --order sorted|unsorted \
                     --smoke --quick"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.scale == 0 {
        out.scale = if quick || out.smoke { 10 } else { 13 };
    }
    if quick {
        out.reps = out.reps.min(8);
    }
    out
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Steady-state ms/iter for one bound plan, plus its output (for the
/// parity check). Two warm-up executions size every pooled buffer so
/// the timed loop runs the allocation-free regime.
fn time_steady(
    a: &Csr<f64>,
    algo: Algorithm,
    order: OutputOrder,
    reps: usize,
    pool: &spgemm_par::Pool,
) -> (f64, Csr<f64>) {
    let plan = Plan::new_in(a, a, algo, order, pool).expect("plan");
    let mut c = Csr::<f64>::zero(0, 0);
    for _ in 0..2 {
        plan.execute_into_in(a, a, &mut c, pool).expect("warm-up");
    }
    let start = Instant::now();
    for _ in 0..reps {
        plan.execute_into_in(a, a, &mut c, pool).expect("execute");
    }
    (start.elapsed().as_secs_f64() * 1e3 / reps as f64, c)
}

struct CellResult {
    label: String,
    rc_ms: f64,
    /// ms/iter per rival, parallel to the panel roster.
    rival_ms: Vec<f64>,
    /// ms/iter of the Hash rival (the perf-stamp reference point).
    hash_ms: f64,
    speedup_vs_best_mono: f64,
    occupancy: [u64; 4],
    parity_ok: bool,
}

/// The paper's Figure 11 comparison panel for this output order — the
/// monolithic roster RowClass is judged against.
fn rivals(order: OutputOrder) -> Vec<Algorithm> {
    if order.is_sorted() {
        spgemm_bench::sorted_panel()
    } else {
        spgemm_bench::unsorted_panel()
    }
}

fn run_cell(
    kind: RmatKind,
    scale: u32,
    ef: usize,
    args: &Args,
    pool: &spgemm_par::Pool,
) -> CellResult {
    let a = spgemm_gen::rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(args.seed));
    let label = format!(
        "{}{}",
        match kind {
            RmatKind::Er => "er",
            RmatKind::G500 => "g500",
        },
        ef
    );
    let occupancy = kgen::bucket_occupancy(&a, &a);

    let (rc_ms, rc_out) = time_steady(&a, Algorithm::RowClass, args.order, args.reps, pool);
    let mut rival_ms = Vec::new();
    let mut hash_ms = f64::NAN;
    let mut parity_ok = true;
    let mut best_mono = f64::INFINITY;
    for algo in rivals(args.order) {
        let (m, out) = time_steady(&a, algo, args.order, args.reps, pool);
        rival_ms.push(m);
        best_mono = best_mono.min(m);
        if algo == Algorithm::Hash {
            hash_ms = m;
            parity_ok &= bits_eq(&rc_out, &out);
        }
    }
    // parity must hold under the other order too (first-encounter
    // emission vs ascending), checked once per cell without timing
    // pressure
    let other = if args.order.is_sorted() {
        OutputOrder::Unsorted
    } else {
        OutputOrder::Sorted
    };
    let (_, rc_u) = time_steady(&a, Algorithm::RowClass, other, 1, pool);
    let (_, hash_u) = time_steady(&a, Algorithm::Hash, other, 1, pool);
    parity_ok &= bits_eq(&rc_u, &hash_u);

    CellResult {
        label,
        rc_ms,
        rival_ms,
        hash_ms,
        speedup_vs_best_mono: best_mono / rc_ms.max(1e-9),
        occupancy,
        parity_ok,
    }
}

fn main() {
    let args = parse_args();
    let pool = spgemm_par::global_pool();
    println!(
        "spgemm-kgen: row-class specialized kernels vs monolithic kernels \
         (A·A steady state, scale {} = {} rows, {} reps/cell, {} threads)",
        args.scale,
        1usize << args.scale,
        args.reps,
        pool.nthreads()
    );

    let efs: &[usize] = match args.ef_override {
        Some(ef) => &[ef][..],
        None if args.smoke => &[4, 16],
        None => &[4, 8, 16],
    };
    let mut cells = Vec::new();
    for kind in [RmatKind::Er, RmatKind::G500] {
        for &ef in efs {
            cells.push(run_cell(kind, args.scale, ef, &args, pool));
        }
    }

    let sorted = args.order.is_sorted();
    let mut header = format!("\n{:<8} {:>12}", "cell", "RowClass");
    for algo in rivals(args.order) {
        header.push_str(&format!(" {:>13}", spgemm_bench::panel_label(algo, sorted)));
    }
    header.push_str(&format!(" {:>9}   {}", "speedup", "rows by class t/s/m/d"));
    println!("{header}");
    for c in &cells {
        let [t, s, m, d] = c.occupancy;
        let mut line = format!("{:<8} {:>12.3}", c.label, c.rc_ms);
        for ms in &c.rival_ms {
            line.push_str(&format!(" {ms:>13.3}"));
        }
        line.push_str(&format!(
            " {:>8.2}x   {t}/{s}/{m}/{d}",
            c.speedup_vs_best_mono
        ));
        println!("{line}");
    }
    let best = cells
        .iter()
        .map(|c| c.speedup_vs_best_mono)
        .fold(0.0f64, f64::max);
    let all_parity = cells.iter().all(|c| c.parity_ok);
    println!(
        "\nbest RowClass speedup over the best monolithic panel kernel: {best:.2}x \
         (ms/iter, {} output)",
        if sorted { "sorted" } else { "unsorted" }
    );
    println!(
        "(every cell's RowClass output was compared byte-for-byte against \
         Hash under both orders: {})",
        if all_parity { "all equal" } else { "DIVERGED" }
    );

    if args.smoke {
        assert!(
            all_parity,
            "RowClass must match the hash kernel byte-for-byte on every cell"
        );
        let mut stamp = spgemm_bench::perfjson::PerfReport::new("kgen", pool.nthreads());
        for c in &cells {
            stamp.metric(&format!("rowclass_{}_ms", c.label), c.rc_ms);
            stamp.metric(&format!("hash_{}_ms", c.label), c.hash_ms);
        }
        stamp.metric("best_speedup", best);
        match stamp.write() {
            Ok(path) => println!("perf stamp: {}", path.display()),
            Err(e) => eprintln!("could not write perf stamp: {e}"),
        }
        println!("smoke OK: RowClass == Hash on every cell, best speedup {best:.2}x");
    }
}
