//! Figure 10: predicted MCDRAM (Cache-mode) speedup vs edge factor.
//!
//! Paper series on G500 scale 15: Heap, Hash, HashVec, Hash
//! (unsorted), HashVec (unsorted); speedups between ~0.9× (Heap at
//! EF 64, where its working set overflows MCDRAM) and ~1.4×. With no
//! MCDRAM present, each kernel is *measured* on DDR here and its
//! Cache-mode time *predicted* by the memory model from the kernel's
//! analytic stanza profile (DESIGN.md substitution S15).
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig10_mcdram_model [--scale N] [--reps N]
//! ```

use spgemm::{Algorithm, OutputOrder};
use spgemm_bench::{args::BenchArgs, runner};
use spgemm_gen::{rmat, RmatKind};
use spgemm_membench::memmodel::{
    accumulator_profile, b_access_profile, AccessProfile, MemoryModel,
};
use spgemm_sparse::stats;

/// Cache capacity per thread used to judge accumulator residency
/// (L2-class, the paper's KNL has 1 MB per tile).
const CACHE_BYTES: usize = 1 << 20;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let scale = args.scale_or(12); // paper: 15
    println!("# fig10: modeled Cache-mode speedup vs edge factor (G500 scale {scale})");
    println!("series\tedge_factor\tspeedup");
    // calibrate the DDR side of the model on this machine's measured
    // wide-stanza bandwidth so memory-time predictions are realistic
    let ddr_peak = spgemm_membench::stanza::stanza_bandwidth(
        &pool,
        1 << 26,
        1 << 14,
        1 << 26,
        spgemm_membench::stanza::Mode::Read,
    );
    let model = MemoryModel::default().with_measured_ddr(ddr_peak);
    println!("# calibrated DDR peak: {ddr_peak:.1} GB/s");

    let panels: [(&str, Algorithm, OutputOrder); 5] = [
        ("Heap", Algorithm::Heap, OutputOrder::Sorted),
        ("Hash", Algorithm::Hash, OutputOrder::Sorted),
        ("HashVec", Algorithm::HashVec, OutputOrder::Sorted),
        ("Hash (unsorted)", Algorithm::Hash, OutputOrder::Unsorted),
        (
            "HashVec (unsorted)",
            Algorithm::HashVec,
            OutputOrder::Unsorted,
        ),
    ];

    for ef_log in 2..=6 {
        // paper: edge factors 4..64
        let ef = 1usize << ef_log;
        if args.quick && ef > 16 {
            break;
        }
        let a = rmat::generate_kind(RmatKind::G500, scale, ef, &mut spgemm_gen::rng(args.seed));
        let flop = stats::flop(&a, &a);
        let rf = stats::row_flops(&a, &a);
        let max_row_flop = rf.iter().copied().max().unwrap_or(0) as usize;
        let b_profile = b_access_profile(&a, &a);
        for (name, algo, order) in panels {
            let m = match runner::time_multiply(&a, &a, algo, order, &pool, args.reps) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("skipping {name} at EF {ef}: {e}");
                    continue;
                }
            };
            // accumulator working set per thread
            let working = match algo {
                // heap stages the whole output (one-phase): flop-bound
                Algorithm::Heap => flop as usize / pool.nthreads().max(1) * 12,
                // hash family: pow2 table over the largest row
                _ => max_row_flop.next_power_of_two() * 12,
            };
            let mut profile = AccessProfile::default();
            for b in &b_profile.buckets {
                profile.add(b.stanza_bytes, b.bytes);
            }
            for b in accumulator_profile(flop, working, CACHE_BYTES).buckets {
                profile.add(b.stanza_bytes, b.bytes);
            }
            let speedup = model.predict_speedup(m.secs, &profile);
            println!("{name}\t{ef}\t{speedup:.3}");
        }
    }
    println!("# speedups are model predictions; DDR times are measured on this machine");
}
