//! Run every figure/table binary in sequence (the full evaluation),
//! forwarding common flags. Useful for regenerating the complete
//! paper evaluation in one command:
//!
//! ```text
//! cargo build --release -p spgemm-bench
//! cargo run --release -p spgemm-bench --bin run_all -- --quick
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig02_sched_cost",
    "fig04_dealloc_cost",
    "fig04b_plan_reuse",
    "fig05_stanza_bandwidth",
    "fig09_sched_spgemm",
    "fig10_mcdram_model",
    "fig11_density_scaling",
    "fig12_size_scaling",
    "fig13_strong_scaling",
    "fig14_compression_ratio",
    "fig15_perf_profiles",
    "fig16_tall_skinny",
    "fig17_triangle_lu",
    "table02_matrix_stats",
    "table04_recipe",
    "spgemm-dist",
    "spgemm-expr",
    "spgemm-obs",
    "spgemm-delta",
    "spgemm-kgen",
];

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory");
    let mut failed = Vec::new();
    for bin in BINARIES {
        let path = dir.join(bin);
        if !path.exists() {
            eprintln!("== {bin}: not built (run `cargo build --release -p spgemm-bench` first)");
            failed.push(*bin);
            continue;
        }
        println!("\n================= {bin} =================");
        let status = Command::new(&path).args(&forward).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("== {bin} exited with {s}");
                failed.push(*bin);
            }
            Err(e) => {
                eprintln!("== {bin} failed to launch: {e}");
                failed.push(*bin);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", BINARIES.len());
    } else {
        eprintln!("\nfailed: {failed:?}");
        std::process::exit(1);
    }
}
