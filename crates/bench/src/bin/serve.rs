//! `spgemm-serve` — synthetic multi-tenant traffic against the
//! serving engine (`spgemm-serve` crate).
//!
//! Three tenant families generate load concurrently:
//!
//! * **mcl** — MCL-style A² chains: repeated squares of one stored
//!   R-MAT graph whose *values* are re-registered (inflation-style
//!   rescale) every few jobs while the structure stays put — the
//!   plan-cache steady state;
//! * **amg** — Galerkin triple products `Pᵀ(AP)` over a fixed Poisson
//!   operator and restriction: two chained products per round, both
//!   structure-stable after the first round;
//! * **oneshot** — a fresh random structure per request: never hits
//!   the plan cache, modelling cold tenants.
//!
//! Modes:
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-serve -- \
//!     [--workers 1,2,4] [--threads-per-worker N] [--jobs N] \
//!     [--rate JOBS_PER_SEC] [--scale N] [--ef N] [--seed N] [--quick]
//!     [--compare]   # cache on vs off (cold plan per job): speedup
//!     [--smoke]     # tiny assertion run for CI (exactly-once + hit rate)
//! ```
//!
//! The default mode sweeps worker counts and prints one row per count:
//! throughput, p50/p99 latency, plan-cache hit rate, shed submissions.

use spgemm::Algorithm;
use spgemm_serve::{
    MetricsSnapshot, Priority, ProductRequest, ServeConfig, ServeEngine, ServeError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    workers: Vec<usize>,
    threads_per_worker: usize,
    jobs: usize,
    rate: f64,
    scale: u32,
    ef: usize,
    seed: u64,
    compare: bool,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        workers: Vec::new(),
        threads_per_worker: 1,
        jobs: 0,
        rate: 0.0,
        scale: 0,
        ef: 8,
        seed: 20180804,
        compare: false,
        smoke: false,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workers" => {
                out.workers = take("--workers")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad worker count {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--threads-per-worker" => out.threads_per_worker = num(&take("--threads-per-worker")),
            "--jobs" => out.jobs = num(&take("--jobs")),
            "--rate" => {
                out.rate = take("--rate").parse().unwrap_or_else(|_| {
                    eprintln!("bad rate");
                    std::process::exit(2);
                })
            }
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef = num(&take("--ef")),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--compare" => out.compare = true,
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --workers LIST --threads-per-worker N --jobs N --rate R \
                     --scale N --ef N --seed N --compare --smoke --quick"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if quick || out.smoke {
        if out.scale == 0 {
            out.scale = 7;
        }
        if out.jobs == 0 {
            out.jobs = 200;
        }
        if out.workers.is_empty() {
            out.workers = vec![2];
        }
    } else {
        if out.scale == 0 {
            out.scale = 9;
        }
        if out.jobs == 0 {
            out.jobs = 600;
        }
        if out.workers.is_empty() {
            let hw = spgemm_par::hardware_threads();
            out.workers = [1usize, 2, 4]
                .iter()
                .copied()
                .filter(|&w| w <= hw)
                .collect();
        }
    }
    out
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

/// Submit with bounded retries on backpressure; sheds (drops the
/// request) after `max_retries` and reports it.
fn submit_with_retry(
    engine: &ServeEngine,
    req: ProductRequest,
    shed: &AtomicU64,
    retries: &AtomicU64,
) -> Option<spgemm_serve::JobHandle> {
    for _ in 0..10_000 {
        match engine.try_submit(req.clone()) {
            Ok(h) => return Some(h),
            Err(ServeError::Overloaded { .. }) => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) => panic!("submission failed: {e}"),
        }
    }
    shed.fetch_add(1, Ordering::Relaxed);
    None
}

struct RunOutcome {
    snapshot: MetricsSnapshot,
    wall: Duration,
    handles_ok: u64,
    handles_err: u64,
    retries: u64,
    shed: u64,
}

/// One traffic run: tenants submit `jobs` products total against an
/// engine with `workers` workers; returns the drained metrics.
#[allow(clippy::too_many_arguments)]
fn run_traffic(args: &Args, workers: usize, cache_plans: usize) -> RunOutcome {
    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers,
        threads_per_worker: args.threads_per_worker,
        queue_capacity: 512,
        plan_cache_plans: cache_plans,
        ..ServeConfig::default()
    }));
    let mut rng = spgemm_gen::rng(args.seed);

    // mcl tenant: one stable graph.
    let g =
        spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, args.scale, args.ef, &mut rng);
    engine.store().insert("mcl/g", g.clone());
    // amg tenant: Poisson operator + tall-skinny restriction.
    let k = ((1usize << args.scale) as f64).sqrt() as usize;
    let a = spgemm_gen::poisson::poisson2d(k);
    let p = spgemm_gen::tallskinny::tall_skinny(&a, (a.ncols() / 4).max(1), &mut rng)
        .expect("restriction shape");
    let pt = spgemm_sparse::ops::transpose(&p);
    engine.store().insert("amg/a", a);
    engine.store().insert("amg/p", p);
    engine.store().insert("amg/pt", pt);

    // Job budget split: 60% mcl squares, 25% amg (rounds of 2), 15% one-shot.
    let mcl_jobs = args.jobs * 60 / 100;
    let amg_rounds = args.jobs * 25 / 100 / 2;
    let oneshot_jobs = args.jobs - mcl_jobs - 2 * amg_rounds;
    let pace = |share: f64| -> Option<Duration> {
        (args.rate > 0.0).then(|| Duration::from_secs_f64(1.0 / (args.rate * share)))
    };

    let retries = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut tenants = Vec::new();

    {
        let (engine, retries, shed) = (engine.clone(), retries.clone(), shed.clone());
        let pace = pace(0.6);
        tenants.push(std::thread::spawn(move || {
            let mut handles = Vec::new();
            for i in 0..mcl_jobs {
                if i > 0 && i % 10 == 0 {
                    // Inflation-style value rescale: same structure,
                    // new values — the fingerprint (and plan) survive.
                    let fresh = g.map(|v| v * 1.001);
                    engine.store().insert("mcl/g", fresh);
                }
                let req = ProductRequest::new("mcl/g", "mcl/g")
                    .algo(Algorithm::Hash)
                    .tenant("mcl");
                handles.extend(submit_with_retry(&engine, req, &shed, &retries));
                if let Some(d) = pace {
                    std::thread::sleep(d);
                }
            }
            handles
        }));
    }
    {
        let (engine, retries, shed) = (engine.clone(), retries.clone(), shed.clone());
        let pace = pace(0.25);
        tenants.push(std::thread::spawn(move || {
            let mut handles = Vec::new();
            for _ in 0..amg_rounds {
                let req = ProductRequest::new("amg/a", "amg/p")
                    .priority(Priority::High)
                    .tenant("amg");
                let Some(h1) = submit_with_retry(&engine, req, &shed, &retries) else {
                    continue;
                };
                let ap = match h1.wait() {
                    Ok(ap) => ap,
                    Err(_) => {
                        handles.push(h1);
                        continue;
                    }
                };
                engine.store().insert("amg/ap", (*ap).clone());
                handles.push(h1);
                let req = ProductRequest::new("amg/pt", "amg/ap")
                    .priority(Priority::High)
                    .tenant("amg");
                if let Some(h2) = submit_with_retry(&engine, req, &shed, &retries) {
                    let _ = h2.wait();
                    handles.push(h2);
                }
                if let Some(d) = pace {
                    std::thread::sleep(d);
                }
            }
            handles
        }));
    }
    {
        let (engine, retries, shed) = (engine.clone(), retries.clone(), shed.clone());
        let pace = pace(0.15);
        let (scale, seed) = (args.scale.saturating_sub(2).max(4), args.seed);
        tenants.push(std::thread::spawn(move || {
            let mut rng = spgemm_gen::rng(seed ^ 0x1e_5407);
            let mut handles = Vec::new();
            for _ in 0..oneshot_jobs {
                let m =
                    spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, scale, 4, &mut rng);
                engine.store().insert("oneshot/tmp", m);
                let req = ProductRequest::new("oneshot/tmp", "oneshot/tmp")
                    .priority(Priority::Low)
                    .tenant("oneshot");
                handles.extend(submit_with_retry(&engine, req, &shed, &retries));
                if let Some(d) = pace {
                    std::thread::sleep(d);
                }
            }
            handles
        }));
    }

    let mut handles = Vec::new();
    for t in tenants {
        handles.extend(t.join().expect("tenant thread panicked"));
    }
    let (mut ok, mut err) = (0u64, 0u64);
    for h in &handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    let wall = started.elapsed();
    let engine = Arc::into_inner(engine).expect("tenants joined");
    RunOutcome {
        snapshot: engine.shutdown(),
        wall,
        handles_ok: ok,
        handles_err: err,
        retries: retries.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
    }
}

/// The `--compare` workload: throughput under saturation. Four
/// "repeat" tenants (distinct stable structures — so hot keys can
/// spread across workers), one AMG pair of stable products, and a
/// 15% one-shot tail. Everything is submitted up front (the queue is
/// sized for it), then drained; wall time measures pure service
/// throughput with no pacing or chained waits on the critical path.
fn run_saturated(args: &Args, workers: usize, cache_plans: usize) -> RunOutcome {
    let engine = ServeEngine::new(ServeConfig {
        workers,
        threads_per_worker: args.threads_per_worker,
        queue_capacity: args.jobs + 16,
        plan_cache_plans: cache_plans,
        ..ServeConfig::default()
    });
    let mut rng = spgemm_gen::rng(args.seed);
    const REPEAT_TENANTS: usize = 4;
    for t in 0..REPEAT_TENANTS {
        let g = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::G500,
            args.scale,
            args.ef,
            &mut rng,
        );
        engine.store().insert(format!("repeat{t}/g"), g);
    }
    let oneshot_jobs = args.jobs * 15 / 100;
    let repeat_jobs = args.jobs - oneshot_jobs;
    let oneshot_scale = args.scale.saturating_sub(2).max(4);
    for i in 0..oneshot_jobs {
        let m =
            spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::Er, oneshot_scale, 4, &mut rng);
        engine.store().insert(format!("oneshot/{i}"), m);
    }

    let started = Instant::now();
    let mut handles = Vec::with_capacity(args.jobs);
    for i in 0..repeat_jobs {
        let name = format!("repeat{}/g", i % REPEAT_TENANTS);
        // HashVector: the paper's flagship kernel, and the one whose
        // symbolic phase and SIMD-probed tables profit most from reuse.
        let req = ProductRequest::new(name.clone(), name)
            .algo(Algorithm::HashVec)
            .tenant("repeat");
        handles.push(engine.try_submit(req).expect("queue sized for full load"));
    }
    for i in 0..oneshot_jobs {
        let name = format!("oneshot/{i}");
        let req = ProductRequest::new(name.clone(), name)
            .algo(Algorithm::Hash)
            .priority(Priority::Low)
            .tenant("oneshot");
        handles.push(engine.try_submit(req).expect("queue sized for full load"));
    }
    let (mut ok, mut err) = (0u64, 0u64);
    for h in &handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    let wall = started.elapsed();
    RunOutcome {
        snapshot: engine.shutdown(),
        wall,
        handles_ok: ok,
        handles_err: err,
        retries: 0,
        shed: 0,
    }
}

fn main() {
    let args = parse_args();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(args.threads_per_worker)
    );
    println!(
        "# spgemm-serve: mixed tenants (mcl A² / amg PᵀAP / oneshot), {} jobs, scale {}, ef {}",
        args.jobs, args.scale, args.ef
    );

    if args.smoke {
        let out = run_traffic(&args, 2, ServeConfig::default().plan_cache_plans);
        let m = &out.snapshot;
        println!(
            "smoke: accepted {} delivered {} ok {} err {} dup {} hit_rate {:.1}%",
            m.accepted,
            m.delivered(),
            out.handles_ok,
            out.handles_err,
            m.duplicate_completions,
            m.plan_cache.hit_rate() * 100.0
        );
        assert_eq!(out.shed, 0, "smoke load must be fully accepted");
        assert_eq!(m.delivered(), m.accepted, "a response per accepted job");
        assert_eq!(
            out.handles_ok + out.handles_err,
            m.accepted,
            "every handle resolved"
        );
        assert_eq!(out.handles_err, 0, "no failures expected");
        assert_eq!(m.duplicate_completions, 0, "no duplicated responses");
        assert!(
            m.plan_cache.hit_rate() > 0.5,
            "stable tenant patterns must hit >50%: {:?}",
            m.plan_cache
        );
        let mut stamp = spgemm_bench::perfjson::PerfReport::new("serve", args.threads_per_worker);
        stamp
            .metric("wall_ms", out.wall.as_secs_f64() * 1e3)
            .metric("p50_ms", m.latency.p50_ms)
            .metric("p99_ms", m.latency.p99_ms)
            .metric("jobs_completed", m.completed as f64)
            .metric("plan_cache_hit_rate", m.plan_cache.hit_rate());
        match stamp.write() {
            Ok(path) => println!("perf stamp: {}", path.display()),
            Err(e) => eprintln!("could not write perf stamp: {e}"),
        }
        println!("SMOKE OK");
        return;
    }

    if args.compare {
        let workers = args.workers[0];
        println!("# compare: shared plan cache on vs off (cold plan per job), {workers} workers");
        println!("# saturated mixed repeated-product workload: submit all, then drain");
        // Warm both modes once to even out first-touch effects.
        let _ = run_saturated(&args, workers, ServeConfig::default().plan_cache_plans);
        let on = run_saturated(&args, workers, ServeConfig::default().plan_cache_plans);
        let off = run_saturated(&args, workers, 0);
        let speedup = off.wall.as_secs_f64() / on.wall.as_secs_f64();
        println!("mode\twall_s\tthroughput_jps\tp50_ms\tp99_ms\thit_rate");
        for (label, o) in [("cache", &on), ("cold", &off)] {
            println!(
                "{label}\t{:.3}\t{:.1}\t{:.3}\t{:.3}\t{:.1}%",
                o.wall.as_secs_f64(),
                o.snapshot.completed as f64 / o.wall.as_secs_f64(),
                o.snapshot.latency.p50_ms,
                o.snapshot.latency.p99_ms,
                o.snapshot.plan_cache.hit_rate() * 100.0
            );
        }
        println!("plan_cache_speedup\t{speedup:.2}x");
        return;
    }

    println!("workers\tthroughput_jps\tp50_ms\tp99_ms\tmax_ms\thit_rate\tbatch_avg\tretries\tshed");
    for &w in &args.workers {
        let out = run_traffic(&args, w, ServeConfig::default().plan_cache_plans);
        let m = &out.snapshot;
        let batch_avg = if m.batches > 0 {
            m.batched_jobs as f64 / m.batches as f64
        } else {
            0.0
        };
        println!(
            "{w}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.1}%\t{:.2}\t{}\t{}",
            m.completed as f64 / out.wall.as_secs_f64(),
            m.latency.p50_ms,
            m.latency.p99_ms,
            m.latency.max_ms,
            m.plan_cache.hit_rate() * 100.0,
            batch_avg,
            out.retries,
            out.shed
        );
        assert_eq!(m.delivered(), m.accepted, "lost responses at {w} workers");
        assert_eq!(m.duplicate_completions, 0);
    }
    println!("# open-loop when --rate is set; otherwise tenants submit at full speed with retry-on-overload");
}
