//! Figure 4: allocation/deallocation cost, "single" vs "parallel"
//! schemes, as a function of buffer size.
//!
//! The paper sweeps 2 MB – 32 GB on KNL and finds single deallocation
//! of ≥ 1 GB buffers costing > 100 ms while the parallel scheme stays
//! flat until per-thread shares hit the same thresholds. Defaults
//! sweep 2 MB – 2 GB to fit container memory; `--quick` stops at 64 MB.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig04_dealloc_cost [--threads N] [--quick]
//! ```

use spgemm_bench::args::BenchArgs;
use spgemm_membench::alloc;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    println!("# fig04: allocation / touch / deallocation (milliseconds; median of 3)");
    println!("scheme\tsize_mb\talloc_ms\ttouch_ms\tdealloc_ms");
    let hi_mb_log2 = if args.quick { 6 } else { 11 }; // up to 2^11 MB = 2 GB
    for s in 1..=hi_mb_log2 {
        let mb = 1usize << s;
        let bytes = mb << 20;
        let single = median3(|| alloc::measure_single(bytes));
        println!(
            "single\t{mb}\t{:.3}\t{:.3}\t{:.3}",
            single.alloc_ms, single.touch_ms, single.dealloc_ms
        );
        let par = median3(|| alloc::measure_parallel(&pool, bytes));
        println!(
            "parallel\t{mb}\t{:.3}\t{:.3}\t{:.3}",
            par.alloc_ms, par.touch_ms, par.dealloc_ms
        );
        let pooled = alloc::measure_pooled(&pool, bytes);
        println!(
            "pooled\t{mb}\t{:.3}\t{:.3}\t{:.3}",
            pooled.alloc_ms, pooled.touch_ms, pooled.dealloc_ms
        );
    }
    println!("# pooled = parallel scheme + buffer reuse (our kernels' steady state)");
}

/// Median-of-3 on the dealloc field (the figure's quantity), keeping
/// that run's full timings.
fn median3(mut f: impl FnMut() -> alloc::AllocTimings) -> alloc::AllocTimings {
    let mut runs = [f(), f(), f()];
    runs.sort_by(|a, b| a.dealloc_ms.total_cmp(&b.dealloc_ms));
    runs[1]
}
