//! Figure 4 companion: what plan + workspace reuse buys on *repeated*
//! products — the MCL/AMG/BFS iteration pattern the paper's Figure 4
//! allocation-cost measurement motivates.
//!
//! For each kernel, times `iters` multiplies of the same R-MAT product
//! three ways:
//!
//! * **one-shot** — `multiply_in` per iteration (symbolic + numeric +
//!   fresh accumulators + fresh output every time);
//! * **plan + execute** — one `SpgemmPlan`, `execute` per iteration
//!   (numeric-only, pooled accumulators, fresh output);
//! * **plan + execute_into** — one `SpgemmPlan`, `execute_into` into a
//!   reused output (numeric-only, zero steady-state allocation).
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig04b_plan_reuse \
//!     [--threads N] [--scale N] [--ef N] [--reps N] [--quick]
//! ```

use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_bench::args::BenchArgs;
use spgemm_gen::{rmat, RmatKind};
use spgemm_sparse::PlusTimes;
use std::time::Instant;

type P = PlusTimes<f64>;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let scale = args.scale_or(if args.quick { 10 } else { 13 });
    let ef = args.ef_or(8);
    let iters = args.reps.max(1) * 10;
    let mut rng = spgemm_gen::rng(args.seed);
    let a = rmat::generate_kind(RmatKind::G500, scale, ef, &mut rng);
    println!(
        "# fig04b: repeated A*A (G500 scale {scale}, ef {ef}, nnz {}), {iters} iterations",
        a.nnz()
    );
    println!("# per-iteration milliseconds; speedup = one-shot / plan+into");
    println!("algo\toneshot_ms\tplan_ms\tplan_into_ms\tspeedup");

    for algo in [
        Algorithm::Hash,
        Algorithm::HashVec,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::KkHash,
    ] {
        let order = OutputOrder::Sorted;
        // warm-up + validity check
        let Ok(expect) = spgemm::multiply_in::<P>(&a, &a, algo, order, &pool) else {
            continue;
        };

        let t = Instant::now();
        for _ in 0..iters {
            let c = spgemm::multiply_in::<P>(&a, &a, algo, order, &pool).unwrap();
            std::hint::black_box(c.nnz());
        }
        let oneshot = t.elapsed().as_secs_f64() / iters as f64;

        let plan = SpgemmPlan::<P>::new_in(&a, &a, algo, order, &pool).unwrap();
        let _ = plan.execute_in(&a, &a, &pool).unwrap(); // capture deferred symbolic
        let t = Instant::now();
        for _ in 0..iters {
            let c = plan.execute_in(&a, &a, &pool).unwrap();
            std::hint::black_box(c.nnz());
        }
        let plan_fresh = t.elapsed().as_secs_f64() / iters as f64;

        let mut c = plan.execute_in(&a, &a, &pool).unwrap();
        let t = Instant::now();
        for _ in 0..iters {
            plan.execute_into_in(&a, &a, &mut c, &pool).unwrap();
            std::hint::black_box(c.nnz());
        }
        let plan_into = t.elapsed().as_secs_f64() / iters as f64;

        assert_eq!(c.nnz(), expect.nnz(), "{algo}: plan result drifted");
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{:.2}x",
            algo.name(),
            oneshot * 1e3,
            plan_fresh * 1e3,
            plan_into * 1e3,
            oneshot / plan_into
        );
    }
    println!(
        "# plan+into amortizes the symbolic phase, accumulator allocation, and output allocation"
    );
}
