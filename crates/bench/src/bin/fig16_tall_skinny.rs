//! Figure 16: square × tall-skinny SpGEMM (multi-source BFS shape,
//! §5.5).
//!
//! Paper: G500 square matrices of scale 18/19/20 times tall-skinny
//! operands of short-side scale 10–16, edge factor 16; "the result …
//! follows that of A²: both for sorted and unsorted cases, Hash or
//! HashVec is the best performer". Defaults shrink the long side to
//! 12–13.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig16_tall_skinny [--scale N] [--reps N]
//! ```

use spgemm::OutputOrder;
use spgemm_bench::{args::BenchArgs, panel_label, runner, sorted_panel, unsorted_panel};
use spgemm_gen::{perm, rmat, tallskinny, RmatKind};

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let long_max = args.scale_or(13); // paper: 18..20
    let ef = args.ef_or(16);
    println!("# fig16: square x tall-skinny (G500, EF {ef})");
    println!("long_scale\tpanel\talgorithm\tshort_scale\tmflops");

    for long_scale in [long_max.saturating_sub(1), long_max] {
        let a = rmat::generate_kind(
            RmatKind::G500,
            long_scale,
            ef,
            &mut spgemm_gen::rng(args.seed),
        );
        // paper: short scales 10/12/14/16 under long 18..20 — i.e. the
        // four even scales below long-2; same spacing here.
        let mut shorts: Vec<u32> = (4..=long_scale.saturating_sub(2)).step_by(2).collect();
        if shorts.len() > 4 {
            shorts = shorts[shorts.len() - 4..].to_vec();
        }
        for short in shorts {
            let k = 1usize << short;
            let ts = tallskinny::tall_skinny(&a, k, &mut spgemm_gen::rng(args.seed ^ short as u64))
                .expect("tall-skinny sample");
            for algo in sorted_panel() {
                match runner::time_multiply(&a, &ts, algo, OutputOrder::Sorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{long_scale}\tsorted\t{}\t{short}\t{:.1}",
                        panel_label(algo, true),
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo}: {e}"),
                }
            }
            // unsorted protocol: permute the tall-skinny operand's
            // columns and the square matrix's columns consistently is
            // impossible (different spaces); the paper permutes input
            // column ids — here the square matrix's.
            let ua = perm::randomize_columns(&a, &mut spgemm_gen::rng(args.seed ^ 0xff));
            // NB: A's columns index B's rows; permuting A's columns
            // requires permuting B's rows to keep the product equal.
            let row_perm: Vec<usize> = {
                // reconstruct the same permutation used above
                let p =
                    perm::random_col_permutation(a.ncols(), &mut spgemm_gen::rng(args.seed ^ 0xff));
                p.into_iter().map(|x| x as usize).collect()
            };
            let uts = spgemm_sparse::ops::permute_rows(&ts, &row_perm).expect("permute rows");
            for algo in unsorted_panel() {
                match runner::time_multiply(
                    &ua,
                    &uts,
                    algo,
                    OutputOrder::Unsorted,
                    &pool,
                    args.reps,
                ) {
                    Ok(m) => println!(
                        "{long_scale}\tunsorted\t{}\t{short}\t{:.1}",
                        panel_label(algo, false),
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo}: {e}"),
                }
            }
        }
    }
}
