//! Figure 14: A² performance vs compression ratio over the Table 2
//! suite, sorted and unsorted panels, plus the §5.4.4 harmonic-mean
//! unsorted-over-sorted speedups.
//!
//! Runs on the synthetic stand-ins by default (DESIGN.md substitution
//! S5); give `--suitesparse DIR` to use real `.mtx` files. The shape
//! to check: Heap flat in CR; Hash high and CR-insensitive;
//! merge-style (MKL) improving with CR; inspector-style winning at
//! high CR in the unsorted panel. Paper's headline: unsorted beats
//! sorted by 1.58×/1.63×/1.68× harmonic mean for MKL/Hash/HashVec.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig14_compression_ratio [--divisor N] [--suitesparse DIR]
//! ```

use spgemm::{Algorithm, OutputOrder};
use spgemm_bench::{args::BenchArgs, panel_label, runner, sorted_panel, unsorted_panel};
use spgemm_gen::perm;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let divisor = if args.quick {
        args.divisor.max(512)
    } else {
        args.divisor
    };
    let suite = spgemm_bench::suites::load(args.suitesparse.as_deref(), divisor, args.seed);
    println!(
        "# fig14: A^2 over the Table 2 suite (divisor {divisor}); MFLOPS vs compression ratio"
    );
    println!("panel\talgorithm\tmatrix\tcompression_ratio\tmflops");

    // per-algorithm sorted/unsorted times for the harmonic-mean stat
    let mut speedups: std::collections::HashMap<&'static str, Vec<f64>> = Default::default();

    for p in &suite {
        let a = &p.matrix;
        for algo in sorted_panel() {
            match runner::time_multiply(a, a, algo, OutputOrder::Sorted, &pool, args.reps) {
                Ok(m) => {
                    println!(
                        "sorted\t{}\t{}\t{:.2}\t{:.1}",
                        panel_label(algo, true),
                        p.name,
                        m.compression_ratio(),
                        m.mflops()
                    );
                }
                Err(e) => eprintln!("skip {algo} on {}: {e}", p.name),
            }
        }
        let u = perm::randomize_columns(a, &mut spgemm_gen::rng(args.seed ^ 0x5eed));
        for algo in unsorted_panel() {
            match runner::time_multiply(&u, &u, algo, OutputOrder::Unsorted, &pool, args.reps) {
                Ok(m) => println!(
                    "unsorted\t{}\t{}\t{:.2}\t{:.1}",
                    panel_label(algo, false),
                    p.name,
                    m.compression_ratio(),
                    m.mflops()
                ),
                Err(e) => eprintln!("skip {algo} on {}: {e}", p.name),
            }
        }
        // §5.4.4: per-kernel sorted-vs-unsorted speedup on kernels that
        // support both (Hash, HashVec, SPA~MKL)
        for algo in [Algorithm::Hash, Algorithm::HashVec, Algorithm::Spa] {
            let s = runner::time_multiply(a, a, algo, OutputOrder::Sorted, &pool, args.reps);
            let us = runner::time_multiply(a, a, algo, OutputOrder::Unsorted, &pool, args.reps);
            if let (Ok(s), Ok(us)) = (s, us) {
                speedups
                    .entry(panel_label(algo, false))
                    .or_default()
                    .push(s.secs / us.secs);
            }
        }
    }

    println!("# harmonic-mean speedup of unsorted over sorted (paper: MKL 1.58x, Hash 1.63x, HashVec 1.68x):");
    let mut keys: Vec<_> = speedups.keys().copied().collect();
    keys.sort_unstable();
    for k in keys {
        let v = &speedups[k];
        let hmean = v.len() as f64 / v.iter().map(|x| 1.0 / x).sum::<f64>();
        println!("#   {k}: {hmean:.2}x over {} matrices", v.len());
    }
}
