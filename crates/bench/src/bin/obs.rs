//! `spgemm-obs` — the instrumentation harness: proves the disabled
//! path costs nothing, then enables tracing over a mixed MCL + serve
//! workload and checks that the collected trace actually decomposes
//! the run.
//!
//! Four parts:
//!
//! 1. **Disabled overhead.** With collection off, a span enter/exit is
//!    one relaxed atomic load; this part times a million of them and
//!    reports ns/op (`--smoke` asserts it stays far under a
//!    microsecond). A plan-reuse loop (the fig04b shape) is timed with
//!    collection off and on to show the enabled cost in context.
//! 2. **MCL trace.** Runs MCL rounds under tracing and computes the
//!    driver-thread span coverage of the run window — the share of
//!    wall time the trace explains through `mcl.*`, `expr.*` and
//!    `plan.*` phases (`--smoke` asserts ≥ 95%).
//! 3. **Serve decomposition.** Drives a multi-tenant serve engine and
//!    checks the per-tenant latency split: queue delay + service time
//!    must reassemble total latency, and every tenant gets its own
//!    p50/p99.
//! 4. **Request tracing + SLO.** Submits a mixed workload where one
//!    expression job routes through the shard fleet, then inspects the
//!    retained tail exemplar: its span tree must connect submission,
//!    worker and shard threads through flow links, cover ≥ 95% of the
//!    measured service window, and the per-tenant SLO counters must
//!    account for every completed job.
//!
//! The Chrome-format trace is written to `--trace PATH` (default: a
//! file under the system temp dir) and loads directly into
//! `chrome://tracing` or Perfetto; the slowest traced request's own
//! span tree is written next to it as `*-exemplar.json`.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-obs -- \
//!     [--scale N] [--ef N] [--reps N] [--seed N] [--quick]
//!     [--trace PATH] [--json PATH]
//!     [--smoke]   # CI assertion run
//! ```

use spgemm::expr::{ExprGraph, ExprSpec};
use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_apps::mcl::{mcl_step, MclParams, MclPipeline};
use spgemm_bench::envinfo;
use spgemm_dist::GridSpec;
use spgemm_obs as obs;
use spgemm_serve::{
    DistRouting, ExprRequest, Priority, ProductRequest, ServeConfig, ServeEngine, SloPolicy,
};
use spgemm_sparse::{ops, Csr, PlusTimes};
use std::time::{Duration, Instant};

type P = PlusTimes<f64>;

struct Args {
    scale: u32,
    ef: usize,
    reps: usize,
    seed: u64,
    smoke: bool,
    trace: Option<std::path::PathBuf>,
    json: Option<std::path::PathBuf>,
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 0,
        ef: 8,
        reps: 0,
        seed: 20180804,
        smoke: false,
        trace: None,
        json: None,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef = num(&take("--ef")),
            "--reps" => out.reps = num(&take("--reps")).max(1),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--trace" => out.trace = Some(take("--trace").into()),
            "--json" => out.json = Some(take("--json").into()),
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            // Accepted for run_all flag forwarding; not used here.
            "--threads" | "--divisor" | "--suitesparse" => {
                let _ = take(flag.as_str());
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale N --ef N --reps N --seed N \
                     --trace PATH --json PATH --smoke --quick"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.scale == 0 {
        out.scale = if quick || out.smoke { 8 } else { 11 };
    }
    if out.reps == 0 {
        out.reps = if quick || out.smoke { 6 } else { 12 };
    }
    out
}

/// The MCL input: symmetrized R-MAT graph with self-loops,
/// column-normalized (same preparation as the `spgemm-expr` bench).
fn mcl_matrix(scale: u32, ef: usize, seed: u64) -> Csr<f64> {
    let mut rng = spgemm_gen::rng(seed);
    let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, ef, &mut rng);
    let sym = ops::symmetrize_simple(&g).expect("square");
    let with_loops = ops::add(&sym, &Csr::<f64>::identity(sym.nrows())).expect("shapes");
    ops::normalize_columns(&with_loops)
}

/// Part 1: the disabled fast path, measured two ways — the bare span
/// enter/exit, and a whole plan-reuse loop (which carries span
/// callsites in its symbolic/numeric phases) off vs on.
fn disabled_overhead(a: &Csr<f64>, reps: usize, pool: &spgemm_par::Pool) -> (f64, f64, f64) {
    assert!(!obs::enabled(), "part 1 must run with collection off");

    // Bare callsite cost when disabled: one relaxed load.
    const ITERS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..ITERS {
        let _g = obs::span!("bench", "bench.disabled_probe");
    }
    let span_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;

    // Plan-reuse loop (fig04b shape: symbolic once, numeric per rep),
    // collection off...
    let plan =
        SpgemmPlan::<P>::new_in(a, a, Algorithm::Hash, OutputOrder::Sorted, pool).expect("plan");
    let mut c = Csr::zero(0, 0);
    plan.execute_into_in(a, a, &mut c, pool).expect("warm");
    let t = Instant::now();
    for _ in 0..reps {
        plan.execute_into_in(a, a, &mut c, pool).expect("execute");
    }
    let off_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // ...and on (trace ring capacity 0: aggregates only, the cost of
    // the clock reads and atomics without ring traffic).
    obs::enable_with_capacity(0);
    let t = Instant::now();
    for _ in 0..reps {
        plan.execute_into_in(a, a, &mut c, pool).expect("execute");
    }
    let on_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
    obs::disable();
    obs::reset();

    (span_ns, off_ms, on_ms)
}

struct MclTrace {
    rounds: usize,
    wall_ms: f64,
    coverage: f64,
    events: usize,
    overwritten: u64,
}

/// Part 2: MCL rounds under tracing; coverage of the run window on
/// the driver thread.
fn traced_mcl(a: &Csr<f64>, reps: usize, pool: &spgemm_par::Pool) -> MclTrace {
    let params = MclParams::default();
    let mut pipe = MclPipeline::new(&params);

    obs::enable();
    let tid = obs::current_tid();
    let window_start = obs::now_ns();
    let t = Instant::now();
    let mut m = a.clone();
    let mut rounds = 0usize;
    for _ in 0..reps {
        // Top-level round phase; the expr/plan/mcl layers nest their
        // own spans inside it.
        let _g = obs::span!("bench", "mcl.round");
        let (next, delta) = mcl_step(&m, &params, &mut pipe, pool).expect("mcl step");
        m = next;
        rounds += 1;
        if delta < params.tolerance {
            break;
        }
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let window_end = obs::now_ns();
    obs::disable();

    let events = obs::trace_events();
    let coverage = obs::span_coverage(&events, tid, window_start, window_end);
    MclTrace {
        rounds,
        wall_ms,
        coverage,
        events: events.len(),
        overwritten: obs::trace_overwritten(),
    }
}

/// Part 3: a mixed-tenant serve run; returns the engine's final
/// snapshot. Tracing stays on so serve spans land in the same trace.
fn serve_workload(seed: u64, smoke: bool) -> spgemm_serve::MetricsSnapshot {
    obs::enable();
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Three tenants with different matrix sizes → visibly different
    // latency profiles.
    let mut rng = spgemm_gen::rng(seed ^ 0x5e12);
    let scales: &[(&str, u32)] = &[("mcl", 8), ("amg", 7), ("adhoc", 6)];
    for &(tenant, scale) in scales {
        let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, 8, &mut rng);
        let sym = ops::symmetrize_simple(&g).expect("square");
        engine.store().insert(format!("{tenant}/m"), sym);
    }

    let per_tenant = if smoke { 12 } else { 40 };
    let mut handles = Vec::new();
    for round in 0..per_tenant {
        for &(tenant, _) in scales {
            let name = format!("{tenant}/m");
            let req =
                ProductRequest::new(&name, &name)
                    .tenant(tenant)
                    .priority(if round % 4 == 0 {
                        Priority::High
                    } else {
                        Priority::Normal
                    });
            match engine.try_submit(req) {
                Ok(h) => handles.push(h),
                Err(e) => panic!("submit failed for {tenant}: {e:?}"),
            }
        }
    }
    for h in &handles {
        h.wait().expect("job result");
    }
    let snap = engine.shutdown();
    obs::disable();
    snap
}

/// What part 4 measured: the dist-routed request's retained exemplar
/// and how well its span tree explains the measured service window.
struct DistTraceReport {
    snap: spgemm_serve::MetricsSnapshot,
    exemplar: obs::ExemplarTrace,
    /// Span coverage of the service window on the executing worker's
    /// thread (the `serve.batch` tid), envelope excluded.
    coverage: f64,
    /// Distinct thread ids among the exemplar's spans.
    tids: usize,
    /// Flow pairs whose start and end landed on different threads.
    cross_thread_flows: usize,
    /// Tid hosting the `serve.batch` span (coverage diagnostics).
    batch_tid: u64,
    /// Service window the coverage was computed over.
    window: (u64, u64),
}

/// Part 4: one expression job whose `Multiply` node crosses the dist
/// thresholds (tenant "mcl", SLO-tracked) next to plain monolithic
/// products (tenant "adhoc"); returns the engine snapshot and the
/// dist-routed request's exemplar trace.
fn traced_dist_serve(seed: u64) -> DistTraceReport {
    obs::enable();
    // Fresh exemplar window: parts 2–3 must not occupy retention.
    obs::roll_exemplar_window();

    let mut rng = spgemm_gen::rng(seed ^ 0xd157);
    let big = {
        let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 9, 8, &mut rng);
        ops::symmetrize_simple(&g).expect("square")
    };
    let small = {
        let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 6, 8, &mut rng);
        ops::symmetrize_simple(&g).expect("square")
    };
    // Threshold between the two: big·big routes (2·nnz ≥ nnz + 1),
    // small·small stays monolithic.
    let min_operand_nnz = big.nnz() + 1;
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        dist: Some(DistRouting {
            grid: GridSpec::new(2, 1),
            threads_per_shard: 1,
            min_operand_nnz,
            min_flop: None,
        }),
        slo: SloPolicy {
            default_target: Some(Duration::from_millis(25)),
            per_tenant: vec![("mcl".into(), Duration::from_millis(250))],
            goal: 0.99,
        },
        ..ServeConfig::default()
    });
    engine.store().insert("mcl/big", big);
    engine.store().insert("adhoc/small", small);

    // The dist-routed pipeline: normalize_cols(A²) over the big graph.
    let spec = {
        let mut g = ExprGraph::new();
        let a = g.input();
        let sq = g.multiply(a, a);
        let root = g.normalize_cols(sq);
        ExprSpec::new(g, root)
    };
    let dist_job = engine
        .try_submit_expr(
            ExprRequest::new(spec, ["mcl/big"])
                .algo(Algorithm::Hash)
                .tenant("mcl")
                .priority(Priority::High),
        )
        .expect("submit dist expr job");
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(
            engine
                .try_submit(ProductRequest::new("adhoc/small", "adhoc/small").tenant("adhoc"))
                .expect("submit adhoc product"),
        );
    }
    dist_job.wait().expect("dist job result");
    for h in &handles {
        h.wait().expect("adhoc job result");
    }
    let snap = engine.shutdown();
    obs::disable();

    let exemplar = obs::exemplars()
        .into_iter()
        .find(|e| e.group == "mcl")
        .expect("the dist-routed request is its tenant's slowest (only) exemplar");

    // Coverage of the measured service window [completion − service,
    // completion] on the worker thread that executed the batch. The
    // synthesized "request" envelope spans the whole request by
    // construction, so it is excluded — only real phase spans count.
    let root = exemplar
        .spans
        .iter()
        .find(|s| s.name == "request")
        .expect("envelope span");
    let w1 = root.start_ns + root.dur_ns;
    let w0 = w1.saturating_sub(exemplar.service_ns.max(1));
    let batch_tid = exemplar
        .spans
        .iter()
        .find(|s| s.name == "serve.batch")
        .map(|s| s.tid)
        .expect("serve.batch span retained");
    let body: Vec<obs::TraceEvent> = exemplar
        .spans
        .iter()
        .filter(|s| s.name != "request")
        .copied()
        .collect();
    let coverage = obs::span_coverage(&body, batch_tid, w0, w1);
    let tids = exemplar.tids().len();
    let cross_thread_flows = exemplar
        .spans
        .iter()
        .filter(|s| s.kind == obs::EventKind::FlowStart)
        .filter(|s| {
            exemplar.spans.iter().any(|e| {
                e.kind == obs::EventKind::FlowEnd && e.span_id == s.span_id && e.tid != s.tid
            })
        })
        .count();
    DistTraceReport {
        snap,
        exemplar,
        coverage,
        tids,
        cross_thread_flows,
        batch_tid,
        window: (w0, w1),
    }
}

/// What part 5 measured: the scrape endpoint and time-series
/// collector over a live serve workload, and the disabled-path span
/// cost with the collector thread still running (idle).
struct TelemetryReport {
    /// Pages served to the 4 concurrent scrapers, all validated.
    pages: usize,
    /// Connections the endpoint answered 200.
    served: u64,
    /// Collector windows retained after the ring wrapped.
    windows: usize,
    /// Total collections (> ring capacity proves the wrap).
    collections: u64,
    /// Oldest retained window's sequence number.
    first_seq: u64,
    /// Engine snapshot at quiesce (gauges asserted against it).
    snap: spgemm_serve::MetricsSnapshot,
    /// The retained ring, oldest first (smoke asserts its deltas).
    ring: Vec<obs::timeseries::Window>,
    /// Disabled-path span cost with the collector thread idle, ns/op.
    idle_span_ns: f64,
}

/// Registered level of gauge `name`, panicking if the site never
/// registered.
fn gauge_level(name: &str) -> i64 {
    obs::gauge_stats()
        .iter()
        .find(|g| g.name == name)
        .unwrap_or_else(|| panic!("gauge {name} not registered"))
        .value
}

/// Part 5: telemetry export. Serves `/metrics` (registry families +
/// the engine snapshot's serve families) to 4 concurrent scrapers
/// while jobs flow, runs the background collector over a 4-window
/// ring until it wraps, then checks the gauges against the engine's
/// own `MetricsSnapshot` at quiesce.
fn telemetry_export(seed: u64) -> TelemetryReport {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    obs::enable();
    // Clean ledger: gauges must reconcile against *this* engine's
    // snapshot, not levels left by parts 2–4's engines.
    obs::reset();

    let engine = Arc::new(ServeEngine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let mut rng = spgemm_gen::rng(seed ^ 0x7e1e);
    let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, 7, 8, &mut rng);
    let sym = ops::symmetrize_simple(&g).expect("square");
    engine.store().insert("telemetry/m", sym);

    // The scrape endpoint: registry families plus the serve layer's
    // per-tenant families through the extra-exposition hook.
    let exposition_engine = Arc::clone(&engine);
    let mut server = obs::http::ScrapeServer::start_with(
        obs::http::ScrapeConfig::default(),
        Some(Box::new(move |out: &mut String| {
            exposition_engine.metrics().openmetrics_into(out)
        })),
    )
    .expect("bind scrape endpoint on 127.0.0.1:0");
    let addr = server.addr();

    // The collector: small ring so the run wraps it, plus a serve
    // sampler contributing engine-level rows per window.
    let sampler_engine = Arc::clone(&engine);
    let mut collector = obs::timeseries::Collector::new(obs::timeseries::CollectorConfig {
        period: Duration::from_millis(25),
        windows: 4,
    });
    collector.set_sampler(Box::new(move |rows| {
        let m = sampler_engine.metrics();
        rows.push(format_args!("serve.completed"), m.completed as f64);
        rows.push(format_args!("serve.p99_ms"), m.latency.p99_ms);
    }));
    collector.run_background();

    // 4 concurrent scrapers validating every page while jobs flow.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<std::thread::JoinHandle<usize>> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut pages = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (status, body) =
                        obs::http::http_get(addr, "/metrics").expect("scrape /metrics");
                    assert_eq!(status, 200, "scrape status");
                    obs::openmetrics::validate(&body)
                        .expect("mid-load /metrics page must be valid OpenMetrics");
                    pages += 1;
                }
                pages
            })
        })
        .collect();

    // The workload under scrape load: products plus one expression
    // job so the expr-results gauge has something to reconcile.
    let spec = {
        let mut g = ExprGraph::new();
        let a = g.input();
        let root = g.multiply(a, a);
        ExprSpec::new(g, root)
    };
    let expr_handle = engine
        .try_submit_expr(ExprRequest::new(spec, ["telemetry/m"]).tenant("telemetry"))
        .expect("submit expr job");
    let mut handles = Vec::new();
    for _ in 0..24 {
        handles.push(
            engine
                .try_submit(ProductRequest::new("telemetry/m", "telemetry/m").tenant("telemetry"))
                .expect("submit product"),
        );
    }
    for h in &handles {
        h.wait().expect("job result");
    }
    expr_handle.wait().expect("expr result");

    stop.store(true, Ordering::Relaxed);
    let pages: usize = scrapers
        .into_iter()
        .map(|s| s.join().expect("scraper thread"))
        .sum();
    server.shutdown();

    // Wrap the 4-window ring deterministically.
    while collector.collections() < 6 {
        collector.collect_now();
    }
    let windows = collector.windows();
    let collections = collector.collections();
    let first_seq = windows.first().map_or(0, |w| w.seq);

    // Quiesce: gauges must reconcile with the engine's snapshot. The
    // worker-busy decrement races the last job handle's wake-up by a
    // few instructions, so poll it to zero first.
    let deadline = Instant::now() + Duration::from_secs(5);
    while gauge_level("serve.workers_busy") != 0 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    let snap = engine.metrics();

    // Disabled-path cost with the collector thread still running
    // (idle between 25 ms periods).
    obs::disable();
    const ITERS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..ITERS {
        let _g = obs::span!("bench", "bench.disabled_probe");
    }
    let idle_span_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;
    collector.stop();

    TelemetryReport {
        pages,
        served: server.served(),
        windows: windows.len(),
        collections,
        first_seq,
        snap,
        ring: windows,
        idle_span_ns,
    }
}

fn fmt_summary(s: &spgemm_serve::LatencySummary) -> String {
    format!(
        "n={:<4} mean {:>8.3} ms  p50 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
        s.count, s.mean_ms, s.p50_ms, s.p99_ms, s.max_ms
    )
}

fn main() {
    let args = parse_args();
    let pool = spgemm_par::global_pool();
    println!(
        "spgemm-obs: tracing + metrics harness (scale {}, ef {}, reps {}, {} threads)",
        args.scale,
        args.ef,
        args.reps,
        pool.nthreads()
    );
    print!("{}", envinfo::environment_banner(pool.nthreads()));

    let a = mcl_matrix(args.scale, args.ef, args.seed);
    println!(
        "\nworkload: MCL on {}x{} column-stochastic graph, {} nnz",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    // --- part 1: disabled path ---
    let (span_ns, off_ms, on_ms) = disabled_overhead(&a, args.reps, pool);
    println!("\n[1] disabled-path overhead");
    println!("    span enter/exit, collection off: {span_ns:.2} ns/op");
    println!("    plan-reuse loop, collection off: {off_ms:.3} ms/iter");
    println!(
        "    plan-reuse loop, aggregates on:  {on_ms:.3} ms/iter  ({:+.1}%)",
        (on_ms / off_ms - 1.0) * 100.0
    );

    // --- part 2: traced MCL ---
    let mcl = traced_mcl(&a, args.reps, pool);
    println!("\n[2] traced MCL run");
    println!(
        "    {} rounds in {:.1} ms, {} trace events ({} overwritten)",
        mcl.rounds, mcl.wall_ms, mcl.events, mcl.overwritten
    );
    println!(
        "    driver-thread span coverage of the run window: {:.1}%",
        mcl.coverage * 100.0
    );

    // --- part 3: serve decomposition (spans land in the same trace) ---
    let snap = serve_workload(args.seed, args.smoke);
    println!("\n[3] serve latency decomposition");
    println!("    total    {}", fmt_summary(&snap.latency));
    println!("    queued   {}", fmt_summary(&snap.queue_delay));
    println!("    service  {}", fmt_summary(&snap.service));
    for t in &snap.per_tenant {
        println!("    tenant {:<8} {}", t.tenant, fmt_summary(&t.latency));
    }

    // --- part 4: request tracing + SLO over a dist-routed workload ---
    let dist = traced_dist_serve(args.seed);
    println!("\n[4] request tracing + SLO (dist-routed expr job)");
    println!(
        "    exemplar trace {} ({}): {} spans over {} threads, {} cross-thread flow links",
        dist.exemplar.trace_id,
        dist.exemplar.group,
        dist.exemplar.spans.len(),
        dist.tids,
        dist.cross_thread_flows
    );
    println!(
        "    total {:.3} ms (service {:.3} ms), service-window coverage {:.1}%",
        dist.exemplar.total_ns as f64 / 1e6,
        dist.exemplar.service_ns as f64 / 1e6,
        dist.coverage * 100.0
    );
    for slo in &dist.snap.slo {
        println!(
            "    slo {:<8} target {:>7.1} ms  good {:>3}  bad {:>3}  burn {:.2}",
            slo.tenant,
            slo.target_ms,
            slo.good,
            slo.bad,
            slo.burn_rate()
        );
    }

    // --- exports ---
    println!("\n{}", obs::text_report());
    let trace = obs::chrome_trace();
    let trace_path = args
        .trace
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join("spgemm-obs-trace.json"));
    match std::fs::write(&trace_path, &trace) {
        Ok(()) => println!(
            "chrome trace: {} ({} KiB) — load in chrome://tracing or Perfetto",
            trace_path.display(),
            trace.len() / 1024
        ),
        Err(e) => eprintln!("could not write trace to {}: {e}", trace_path.display()),
    }
    // The slowest traced request's own span tree, Perfetto-loadable —
    // the artifact behind the README's "trace one slow request" story.
    let exemplar_trace =
        obs::chrome_trace_for(dist.exemplar.trace_id).expect("retained exemplar is exportable");
    let exemplar_path = trace_path.with_file_name(match trace_path.file_stem() {
        Some(stem) => format!("{}-exemplar.json", stem.to_string_lossy()),
        None => "spgemm-obs-exemplar.json".into(),
    });
    match std::fs::write(&exemplar_path, &exemplar_trace) {
        Ok(()) => println!(
            "exemplar trace (slowest {} request, trace {}): {}",
            dist.exemplar.group,
            dist.exemplar.trace_id,
            exemplar_path.display()
        ),
        Err(e) => eprintln!(
            "could not write exemplar trace to {}: {e}",
            exemplar_path.display()
        ),
    }
    // --- part 5: telemetry export (scrape endpoint + collector) ---
    let tel = telemetry_export(args.seed);
    println!("\n[5] telemetry export");
    println!(
        "    /metrics: {} pages validated by 4 concurrent scrapers ({} served total)",
        tel.pages, tel.served
    );
    println!(
        "    collector: {} collections into a 4-window ring, {} retained (oldest seq {})",
        tel.collections, tel.windows, tel.first_seq
    );
    println!(
        "    disabled span with idle collector thread: {:.2} ns/op",
        tel.idle_span_ns
    );

    if let Some(path) = &args.json {
        let slo_json: Vec<String> = dist
            .snap
            .slo
            .iter()
            .map(|s| {
                format!(
                    "{{\"tenant\":\"{}\",\"target_ms\":{:.3},\"goal\":{},\
                     \"good\":{},\"bad\":{},\"burn_rate\":{:.4}}}",
                    s.tenant,
                    s.target_ms,
                    s.goal,
                    s.good,
                    s.bad,
                    s.burn_rate()
                )
            })
            .collect();
        let json = format!(
            "{{\"env\":{},\"mcl\":{{\"rounds\":{},\"wall_ms\":{:.3},\
             \"coverage\":{:.4},\"events\":{}}},\
             \"serve\":{{\"completed\":{},\"tenants\":{}}},\
             \"trace\":{{\"trace_id\":{},\"spans\":{},\"tids\":{},\
             \"cross_thread_flows\":{},\"coverage\":{:.4}}},\
             \"slo\":[{}]}}\n",
            envinfo::envinfo_json(pool.nthreads()),
            mcl.rounds,
            mcl.wall_ms,
            mcl.coverage,
            mcl.events,
            snap.completed,
            snap.per_tenant.len(),
            dist.exemplar.trace_id,
            dist.exemplar.spans.len(),
            dist.tids,
            dist.cross_thread_flows,
            dist.coverage,
            slo_json.join(",")
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("json summary: {}", path.display()),
            Err(e) => eprintln!("could not write json to {}: {e}", path.display()),
        }
    }

    if args.smoke {
        // Disabled path: far under a microsecond per callsite (the
        // real bound is single-digit ns; 250 leaves room for noisy
        // shared runners).
        assert!(
            span_ns < 250.0,
            "disabled span enter/exit too expensive: {span_ns:.1} ns/op"
        );
        // Trace must decompose the MCL window.
        assert!(
            mcl.overwritten == 0,
            "smoke trace must fit the ring ({} overwritten)",
            mcl.overwritten
        );
        assert!(
            mcl.coverage >= 0.95,
            "trace coverage {:.1}% < 95% of the MCL window",
            mcl.coverage * 100.0
        );
        // Serve: exactly-once delivery, full decomposition, per-tenant
        // quantiles.
        assert_eq!(snap.duplicate_completions, 0, "duplicate completions");
        assert_eq!(snap.failed, 0, "failed jobs");
        let sum = snap.queue_delay.mean_ms + snap.service.mean_ms;
        assert!(
            (snap.latency.mean_ms - sum).abs() <= 1e-6 + snap.latency.mean_ms * 1e-3,
            "queue ({:.4}) + service ({:.4}) must reassemble total ({:.4})",
            snap.queue_delay.mean_ms,
            snap.service.mean_ms,
            snap.latency.mean_ms
        );
        assert_eq!(snap.per_tenant.len(), 3, "one row per tenant");
        for t in &snap.per_tenant {
            assert!(t.latency.count > 0, "{}: empty tenant row", t.tenant);
            assert!(t.latency.p50_ms > 0.0, "{}: zero p50", t.tenant);
            assert!(
                t.latency.p99_ms >= t.latency.p50_ms,
                "{}: p99 < p50",
                t.tenant
            );
        }
        // The trace export must be well-formed Chrome JSON with the
        // serve spans in it.
        assert!(trace.starts_with("{\"traceEvents\":[") && trace.ends_with("]}"));
        assert!(trace.contains("\"serve.batch\""), "serve spans missing");
        assert!(trace.contains("\"mcl.round\""), "mcl spans missing");
        // Part 4: the dist-routed request must yield one connected
        // cross-thread trace...
        assert!(dist.snap.dist_routed >= 1, "expr job did not route");
        dist.exemplar
            .validate()
            .expect("exemplar span tree well-formed");
        assert!(
            dist.tids >= 2,
            "exemplar spans span {} thread(s); need submission/worker/shards",
            dist.tids
        );
        assert!(dist.cross_thread_flows >= 1, "no flow link crosses threads");
        assert_eq!(dist.exemplar.dropped, 0, "exemplar lost spans");
        if dist.coverage < 0.95 {
            // name which phase lost coverage before failing
            let body: Vec<obs::TraceEvent> = dist
                .exemplar
                .spans
                .iter()
                .filter(|s| s.name != "request")
                .copied()
                .collect();
            for sc in obs::coverage_by_site(&body, dist.batch_tid, dist.window.0, dist.window.1) {
                eprintln!(
                    "    site {}/{}: {:.1}% ({} ns)",
                    sc.cat,
                    sc.name,
                    sc.fraction * 100.0,
                    sc.covered_ns
                );
            }
            panic!(
                "exemplar covers {:.1}% < 95% of the service window",
                dist.coverage * 100.0
            );
        }
        // ...its export must carry paired flow events...
        assert!(exemplar_trace.contains("\"ph\":\"s\""), "flow starts");
        assert!(exemplar_trace.contains("\"ph\":\"f\""), "flow ends");
        // ...and the SLO ledger must account for every completed job.
        assert!(!dist.snap.slo.is_empty(), "no SLO rows");
        let tracked: u64 = dist.snap.slo.iter().map(|s| s.good + s.bad).sum();
        assert_eq!(
            tracked, dist.snap.completed,
            "SLO good+bad must equal completed jobs"
        );
        for slo in &dist.snap.slo {
            assert!(slo.burn_rate().is_finite(), "{}: burn rate", slo.tenant);
        }
        // Part 5: the scrape endpoint must have served valid pages to
        // every concurrent scraper while the workload ran...
        assert!(
            tel.pages >= 4,
            "only {} pages scraped; every scraper should land at least one",
            tel.pages
        );
        assert!(tel.served >= tel.pages as u64, "served < validated pages");
        // ...the collector ring must have wrapped with clean windows...
        assert!(
            tel.collections > 4 && tel.windows == 4,
            "ring did not wrap: {} collections, {} windows retained",
            tel.collections,
            tel.windows
        );
        assert!(
            tel.first_seq > 1,
            "oldest retained seq {} should postdate evicted windows",
            tel.first_seq
        );
        let mut prev_seq = 0u64;
        for w in &tel.ring {
            assert!(w.seq == prev_seq + 1 || prev_seq == 0, "seq gap in ring");
            prev_seq = w.seq;
            assert!(w.end_ns >= w.start_ns, "window runs backwards");
            for row in &w.rows {
                match row.kind {
                    obs::timeseries::SeriesKind::Counter { rate_per_s, .. } => {
                        assert!(rate_per_s >= 0.0, "{}/{}: negative rate", row.cat, row.name);
                    }
                    obs::timeseries::SeriesKind::Gauge { .. } => {}
                    obs::timeseries::SeriesKind::Span {
                        count_delta,
                        ns_delta,
                    } => {
                        assert!(
                            count_delta > 0 || ns_delta == 0,
                            "{}/{}: time without completions",
                            row.cat,
                            row.name
                        );
                    }
                    obs::timeseries::SeriesKind::Hist(stats) => {
                        assert!(
                            stats.count > 0 || stats.sum == 0,
                            "{}/{}: sum without samples",
                            row.cat,
                            row.name
                        );
                    }
                }
            }
        }
        // ...gauges must reconcile with the engine's own snapshot at
        // quiesce (both sides come from the same locked reads)...
        let lanes = [
            gauge_level("serve.queue_depth.high"),
            gauge_level("serve.queue_depth.normal"),
            gauge_level("serve.queue_depth.low"),
        ];
        let snap_lanes: [i64; 3] = [
            tel.snap.queue_depth_per_lane[0] as i64,
            tel.snap.queue_depth_per_lane[1] as i64,
            tel.snap.queue_depth_per_lane[2] as i64,
        ];
        assert_eq!(lanes, snap_lanes, "lane gauges vs snapshot");
        assert_eq!(
            gauge_level("serve.plan_cache.entries"),
            tel.snap.plan_cache.entries as i64,
            "plan-cache entries gauge vs snapshot"
        );
        assert_eq!(
            gauge_level("serve.expr_results.entries"),
            tel.snap.expr_results.entries as i64,
            "expr-results entries gauge vs snapshot"
        );
        assert_eq!(
            gauge_level("serve.workers_busy"),
            0,
            "workers busy at quiesce"
        );
        assert!(
            gauge_level("serve.store.registrations") >= 1,
            "store registrations gauge"
        );
        // ...and the disabled path must stay cheap with the collector
        // thread alive.
        assert!(
            tel.idle_span_ns < 250.0,
            "disabled span with idle collector: {:.1} ns/op",
            tel.idle_span_ns
        );
        println!(
            "smoke OK: disabled path {span_ns:.1} ns/op, coverage {:.1}%, \
             queue+service == total across {} tenants, dist trace over \
             {} threads at {:.1}% service coverage, SLO tracks {}/{} jobs, \
             {} scraped pages valid, ring wrapped at seq {}",
            mcl.coverage * 100.0,
            snap.per_tenant.len(),
            dist.tids,
            dist.coverage * 100.0,
            tracked,
            dist.snap.completed,
            tel.pages,
            tel.first_seq
        );
    }

    // --- perf trajectory stamp (BENCH_obs.json) ---
    if args.smoke || args.json.is_some() {
        let mut stamp = spgemm_bench::perfjson::PerfReport::new("obs", pool.nthreads());
        stamp
            .metric("disabled_span_ns", span_ns)
            .metric("idle_collector_span_ns", tel.idle_span_ns)
            .metric("plan_loop_off_ms", off_ms)
            .metric("plan_loop_on_ms", on_ms)
            .metric("mcl_wall_ms", mcl.wall_ms)
            .metric("mcl_coverage", mcl.coverage)
            .metric("serve_completed", snap.completed as f64)
            .metric("scrape_pages", tel.pages as f64)
            .metric("collector_windows", tel.windows as f64);
        match stamp.write() {
            Ok(path) => println!("perf stamp: {}", path.display()),
            Err(e) => eprintln!("could not write perf stamp: {e}"),
        }
        if args.smoke {
            // The gate must at least pass against the stamp it just
            // wrote (identity compare — exercises parse + compare).
            let doc = spgemm_bench::perfjson::parse(&stamp.to_json()).expect("own stamp parses");
            let report = spgemm_bench::regress::compare(
                &doc,
                &doc,
                spgemm_bench::regress::RegressConfig::default(),
            )
            .expect("self-compare");
            assert_eq!(report.failures(), 0, "regress must pass against itself");
        }
    }
}
