//! `spgemm-obs` — the instrumentation harness: proves the disabled
//! path costs nothing, then enables tracing over a mixed MCL + serve
//! workload and checks that the collected trace actually decomposes
//! the run.
//!
//! Three parts:
//!
//! 1. **Disabled overhead.** With collection off, a span enter/exit is
//!    one relaxed atomic load; this part times a million of them and
//!    reports ns/op (`--smoke` asserts it stays far under a
//!    microsecond). A plan-reuse loop (the fig04b shape) is timed with
//!    collection off and on to show the enabled cost in context.
//! 2. **MCL trace.** Runs MCL rounds under tracing and computes the
//!    driver-thread span coverage of the run window — the share of
//!    wall time the trace explains through `mcl.*`, `expr.*` and
//!    `plan.*` phases (`--smoke` asserts ≥ 95%).
//! 3. **Serve decomposition.** Drives a multi-tenant serve engine and
//!    checks the per-tenant latency split: queue delay + service time
//!    must reassemble total latency, and every tenant gets its own
//!    p50/p99.
//!
//! The Chrome-format trace is written to `--trace PATH` (default: a
//! file under the system temp dir) and loads directly into
//! `chrome://tracing` or Perfetto.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-obs -- \
//!     [--scale N] [--ef N] [--reps N] [--seed N] [--quick]
//!     [--trace PATH] [--json PATH]
//!     [--smoke]   # CI assertion run
//! ```

use spgemm::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_apps::mcl::{mcl_step, MclParams, MclPipeline};
use spgemm_bench::envinfo;
use spgemm_obs as obs;
use spgemm_serve::{Priority, ProductRequest, ServeConfig, ServeEngine};
use spgemm_sparse::{ops, Csr, PlusTimes};
use std::time::Instant;

type P = PlusTimes<f64>;

struct Args {
    scale: u32,
    ef: usize,
    reps: usize,
    seed: u64,
    smoke: bool,
    trace: Option<std::path::PathBuf>,
    json: Option<std::path::PathBuf>,
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 0,
        ef: 8,
        reps: 0,
        seed: 20180804,
        smoke: false,
        trace: None,
        json: None,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef = num(&take("--ef")),
            "--reps" => out.reps = num(&take("--reps")).max(1),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--trace" => out.trace = Some(take("--trace").into()),
            "--json" => out.json = Some(take("--json").into()),
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            // Accepted for run_all flag forwarding; not used here.
            "--threads" | "--divisor" | "--suitesparse" => {
                let _ = take(flag.as_str());
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale N --ef N --reps N --seed N \
                     --trace PATH --json PATH --smoke --quick"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.scale == 0 {
        out.scale = if quick || out.smoke { 8 } else { 11 };
    }
    if out.reps == 0 {
        out.reps = if quick || out.smoke { 6 } else { 12 };
    }
    out
}

/// The MCL input: symmetrized R-MAT graph with self-loops,
/// column-normalized (same preparation as the `spgemm-expr` bench).
fn mcl_matrix(scale: u32, ef: usize, seed: u64) -> Csr<f64> {
    let mut rng = spgemm_gen::rng(seed);
    let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, ef, &mut rng);
    let sym = ops::symmetrize_simple(&g).expect("square");
    let with_loops = ops::add(&sym, &Csr::<f64>::identity(sym.nrows())).expect("shapes");
    ops::normalize_columns(&with_loops)
}

/// Part 1: the disabled fast path, measured two ways — the bare span
/// enter/exit, and a whole plan-reuse loop (which carries span
/// callsites in its symbolic/numeric phases) off vs on.
fn disabled_overhead(a: &Csr<f64>, reps: usize, pool: &spgemm_par::Pool) -> (f64, f64, f64) {
    assert!(!obs::enabled(), "part 1 must run with collection off");

    // Bare callsite cost when disabled: one relaxed load.
    const ITERS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..ITERS {
        let _g = obs::span!("bench", "bench.disabled_probe");
    }
    let span_ns = t.elapsed().as_nanos() as f64 / ITERS as f64;

    // Plan-reuse loop (fig04b shape: symbolic once, numeric per rep),
    // collection off...
    let plan =
        SpgemmPlan::<P>::new_in(a, a, Algorithm::Hash, OutputOrder::Sorted, pool).expect("plan");
    let mut c = Csr::zero(0, 0);
    plan.execute_into_in(a, a, &mut c, pool).expect("warm");
    let t = Instant::now();
    for _ in 0..reps {
        plan.execute_into_in(a, a, &mut c, pool).expect("execute");
    }
    let off_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    // ...and on (trace ring capacity 0: aggregates only, the cost of
    // the clock reads and atomics without ring traffic).
    obs::enable_with_capacity(0);
    let t = Instant::now();
    for _ in 0..reps {
        plan.execute_into_in(a, a, &mut c, pool).expect("execute");
    }
    let on_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
    obs::disable();
    obs::reset();

    (span_ns, off_ms, on_ms)
}

struct MclTrace {
    rounds: usize,
    wall_ms: f64,
    coverage: f64,
    events: usize,
    overwritten: u64,
}

/// Part 2: MCL rounds under tracing; coverage of the run window on
/// the driver thread.
fn traced_mcl(a: &Csr<f64>, reps: usize, pool: &spgemm_par::Pool) -> MclTrace {
    let params = MclParams::default();
    let mut pipe = MclPipeline::new(&params);

    obs::enable();
    let tid = obs::current_tid();
    let window_start = obs::now_ns();
    let t = Instant::now();
    let mut m = a.clone();
    let mut rounds = 0usize;
    for _ in 0..reps {
        // Top-level round phase; the expr/plan/mcl layers nest their
        // own spans inside it.
        let _g = obs::span!("bench", "mcl.round");
        let (next, delta) = mcl_step(&m, &params, &mut pipe, pool).expect("mcl step");
        m = next;
        rounds += 1;
        if delta < params.tolerance {
            break;
        }
    }
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let window_end = obs::now_ns();
    obs::disable();

    let events = obs::trace_events();
    let coverage = obs::span_coverage(&events, tid, window_start, window_end);
    MclTrace {
        rounds,
        wall_ms,
        coverage,
        events: events.len(),
        overwritten: obs::trace_overwritten(),
    }
}

/// Part 3: a mixed-tenant serve run; returns the engine's final
/// snapshot. Tracing stays on so serve spans land in the same trace.
fn serve_workload(seed: u64, smoke: bool) -> spgemm_serve::MetricsSnapshot {
    obs::enable();
    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });

    // Three tenants with different matrix sizes → visibly different
    // latency profiles.
    let mut rng = spgemm_gen::rng(seed ^ 0x5e12);
    let scales: &[(&str, u32)] = &[("mcl", 8), ("amg", 7), ("adhoc", 6)];
    for &(tenant, scale) in scales {
        let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, 8, &mut rng);
        let sym = ops::symmetrize_simple(&g).expect("square");
        engine.store().insert(format!("{tenant}/m"), sym);
    }

    let per_tenant = if smoke { 12 } else { 40 };
    let mut handles = Vec::new();
    for round in 0..per_tenant {
        for &(tenant, _) in scales {
            let name = format!("{tenant}/m");
            let req =
                ProductRequest::new(&name, &name)
                    .tenant(tenant)
                    .priority(if round % 4 == 0 {
                        Priority::High
                    } else {
                        Priority::Normal
                    });
            match engine.try_submit(req) {
                Ok(h) => handles.push(h),
                Err(e) => panic!("submit failed for {tenant}: {e:?}"),
            }
        }
    }
    for h in &handles {
        h.wait().expect("job result");
    }
    let snap = engine.shutdown();
    obs::disable();
    snap
}

fn fmt_summary(s: &spgemm_serve::LatencySummary) -> String {
    format!(
        "n={:<4} mean {:>8.3} ms  p50 {:>8.3}  p99 {:>8.3}  max {:>8.3}",
        s.count, s.mean_ms, s.p50_ms, s.p99_ms, s.max_ms
    )
}

fn main() {
    let args = parse_args();
    let pool = spgemm_par::global_pool();
    println!(
        "spgemm-obs: tracing + metrics harness (scale {}, ef {}, reps {}, {} threads)",
        args.scale,
        args.ef,
        args.reps,
        pool.nthreads()
    );
    print!("{}", envinfo::environment_banner(pool.nthreads()));

    let a = mcl_matrix(args.scale, args.ef, args.seed);
    println!(
        "\nworkload: MCL on {}x{} column-stochastic graph, {} nnz",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );

    // --- part 1: disabled path ---
    let (span_ns, off_ms, on_ms) = disabled_overhead(&a, args.reps, pool);
    println!("\n[1] disabled-path overhead");
    println!("    span enter/exit, collection off: {span_ns:.2} ns/op");
    println!("    plan-reuse loop, collection off: {off_ms:.3} ms/iter");
    println!(
        "    plan-reuse loop, aggregates on:  {on_ms:.3} ms/iter  ({:+.1}%)",
        (on_ms / off_ms - 1.0) * 100.0
    );

    // --- part 2: traced MCL ---
    let mcl = traced_mcl(&a, args.reps, pool);
    println!("\n[2] traced MCL run");
    println!(
        "    {} rounds in {:.1} ms, {} trace events ({} overwritten)",
        mcl.rounds, mcl.wall_ms, mcl.events, mcl.overwritten
    );
    println!(
        "    driver-thread span coverage of the run window: {:.1}%",
        mcl.coverage * 100.0
    );

    // --- part 3: serve decomposition (spans land in the same trace) ---
    let snap = serve_workload(args.seed, args.smoke);
    println!("\n[3] serve latency decomposition");
    println!("    total    {}", fmt_summary(&snap.latency));
    println!("    queued   {}", fmt_summary(&snap.queue_delay));
    println!("    service  {}", fmt_summary(&snap.service));
    for t in &snap.per_tenant {
        println!("    tenant {:<8} {}", t.tenant, fmt_summary(&t.latency));
    }

    // --- exports ---
    println!("\n{}", obs::text_report());
    let trace = obs::chrome_trace();
    let trace_path = args
        .trace
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join("spgemm-obs-trace.json"));
    match std::fs::write(&trace_path, &trace) {
        Ok(()) => println!(
            "chrome trace: {} ({} KiB) — load in chrome://tracing or Perfetto",
            trace_path.display(),
            trace.len() / 1024
        ),
        Err(e) => eprintln!("could not write trace to {}: {e}", trace_path.display()),
    }
    if let Some(path) = &args.json {
        let json = format!(
            "{{\"env\":{},\"mcl\":{{\"rounds\":{},\"wall_ms\":{:.3},\
             \"coverage\":{:.4},\"events\":{}}},\
             \"serve\":{{\"completed\":{},\"tenants\":{}}}}}\n",
            envinfo::envinfo_json(pool.nthreads()),
            mcl.rounds,
            mcl.wall_ms,
            mcl.coverage,
            mcl.events,
            snap.completed,
            snap.per_tenant.len()
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("json summary: {}", path.display()),
            Err(e) => eprintln!("could not write json to {}: {e}", path.display()),
        }
    }

    if args.smoke {
        // Disabled path: far under a microsecond per callsite (the
        // real bound is single-digit ns; 250 leaves room for noisy
        // shared runners).
        assert!(
            span_ns < 250.0,
            "disabled span enter/exit too expensive: {span_ns:.1} ns/op"
        );
        // Trace must decompose the MCL window.
        assert!(
            mcl.overwritten == 0,
            "smoke trace must fit the ring ({} overwritten)",
            mcl.overwritten
        );
        assert!(
            mcl.coverage >= 0.95,
            "trace coverage {:.1}% < 95% of the MCL window",
            mcl.coverage * 100.0
        );
        // Serve: exactly-once delivery, full decomposition, per-tenant
        // quantiles.
        assert_eq!(snap.duplicate_completions, 0, "duplicate completions");
        assert_eq!(snap.failed, 0, "failed jobs");
        let sum = snap.queue_delay.mean_ms + snap.service.mean_ms;
        assert!(
            (snap.latency.mean_ms - sum).abs() <= 1e-6 + snap.latency.mean_ms * 1e-3,
            "queue ({:.4}) + service ({:.4}) must reassemble total ({:.4})",
            snap.queue_delay.mean_ms,
            snap.service.mean_ms,
            snap.latency.mean_ms
        );
        assert_eq!(snap.per_tenant.len(), 3, "one row per tenant");
        for t in &snap.per_tenant {
            assert!(t.latency.count > 0, "{}: empty tenant row", t.tenant);
            assert!(t.latency.p50_ms > 0.0, "{}: zero p50", t.tenant);
            assert!(
                t.latency.p99_ms >= t.latency.p50_ms,
                "{}: p99 < p50",
                t.tenant
            );
        }
        // The trace export must be well-formed Chrome JSON with the
        // serve spans in it.
        assert!(trace.starts_with("{\"traceEvents\":[") && trace.ends_with("]}"));
        assert!(trace.contains("\"serve.batch\""), "serve spans missing");
        assert!(trace.contains("\"mcl.round\""), "mcl spans missing");
        println!(
            "smoke OK: disabled path {span_ns:.1} ns/op, coverage {:.1}%, \
             queue+service == total across {} tenants",
            mcl.coverage * 100.0,
            snap.per_tenant.len()
        );
    }
}
