//! Table 2: matrix statistics — `n`, `nnz(A)`, `flop(A²)`, `nnz(A²)` —
//! for the suite in use, alongside the paper's reported values for
//! the originals.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin table02_matrix_stats [--divisor N] [--suitesparse DIR]
//! ```

use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_bench::args::BenchArgs;
use spgemm_gen::suite::TABLE2;
use spgemm_sparse::{stats, PlusTimes};

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let divisor = if args.quick {
        args.divisor.max(512)
    } else {
        args.divisor
    };
    let suite = spgemm_bench::suites::load(args.suitesparse.as_deref(), divisor, args.seed);
    println!("# table02: suite statistics (stand-in divisor {divisor}); paper columns in millions");
    println!(
        "{:<18} {:>9} {:>10} {:>12} {:>12} {:>8} | {:>7} {:>9} {:>10} {:>9}",
        "matrix",
        "n",
        "nnz",
        "flop(A2)",
        "nnz(A2)",
        "CR",
        "paper_n",
        "paper_nnz",
        "paper_flop",
        "paper_CR"
    );
    for p in &suite {
        let a = &p.matrix;
        let flop = stats::flop(a, a);
        let c = multiply_in::<PlusTimes<f64>>(a, a, Algorithm::Hash, OutputOrder::Unsorted, &pool)
            .expect("A^2");
        let cr = stats::compression_ratio(flop, c.nnz());
        let paper = TABLE2.iter().find(|s| s.name == p.name);
        match paper {
            Some(s) => println!(
                "{:<18} {:>9} {:>10} {:>12} {:>12} {:>8.2} | {:>7.3} {:>9.2} {:>10.2} {:>9.2}",
                p.name,
                a.nrows(),
                a.nnz(),
                flop,
                c.nnz(),
                cr,
                s.n_millions,
                s.nnz_millions,
                s.flop_sq_millions,
                s.paper_compression_ratio()
            ),
            None => println!(
                "{:<18} {:>9} {:>10} {:>12} {:>12} {:>8.2} | {:>7} {:>9} {:>10} {:>9}",
                p.name,
                a.nrows(),
                a.nnz(),
                flop,
                c.nnz(),
                cr,
                "-",
                "-",
                "-",
                "-"
            ),
        }
    }
}
