//! Calibrate this machine's SpGEMM algorithm selection and persist
//! the profile `Algorithm::Auto` will use.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin tune [--scale N] [--reps N]
//!     [--threads N] [--seed N] [--quick] [--report] [--suite] [--no-save]
//! ```
//!
//! Default mode runs the calibration sweep, prints each cell's winner,
//! and saves the profile (under `SPGEMM_TUNE_DIR` or the user cache
//! directory, keyed by hostname and thread count). Extra modes:
//!
//! * `--report` — skip the sweep; load and pretty-print the saved
//!   profile for this host/thread-count;
//! * `--suite` — after obtaining a profile (fresh or saved), run the
//!   static vs tuned vs oracle comparison on freshly drawn inputs;
//! * `--no-save` — calibrate without touching the profile store.

use spgemm_bench::{args::BenchArgs, envinfo, tunesuite};
use spgemm_tune::{CalibrationConfig, MachineProfile, SweepRecord, TunedSelector};

fn main() {
    // Split our flags from the common BenchArgs ones.
    let mut report_only = false;
    let mut run_suite = false;
    let mut no_save = false;
    let reps_given = std::env::args().any(|a| a == "--reps");
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|arg| match arg.as_str() {
            "--report" => {
                report_only = true;
                false
            }
            "--suite" => {
                run_suite = true;
                false
            }
            "--no-save" => {
                no_save = true;
                false
            }
            _ => true,
        })
        .collect();
    let args = BenchArgs::from_iter(rest);
    let pool = args.pool();
    println!("{}", envinfo::environment_banner(pool.nthreads()));

    let profile: MachineProfile = if report_only {
        match spgemm_tune::store::load(pool.nthreads()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!(
                    "no profile for {} at {} threads: {e}\nrun without --report to calibrate",
                    spgemm_tune::store::hostname(),
                    pool.nthreads()
                );
                std::process::exit(1);
            }
        }
    } else {
        let mut cfg = if args.quick {
            CalibrationConfig::quick()
        } else {
            CalibrationConfig::default()
        };
        if let Some(scale) = args.scale {
            cfg.scale = scale;
        }
        // Respect --reps when given; otherwise keep the mode's own
        // default (quick() uses 1 rep, the full sweep 3).
        if reps_given {
            cfg.reps = args.reps;
        }
        cfg.seed = args.seed;
        println!(
            "calibrating: scale {} (2^{} rows), edge factors {:?}, {} reps\n",
            cfg.scale, cfg.scale, cfg.edge_factors, cfg.reps
        );
        let (profile, records) = spgemm_tune::calibrate_with_report(&cfg, &pool);
        print_records(&records);
        if no_save {
            println!("(not saved: --no-save)");
        } else {
            match spgemm_tune::store::save(&profile) {
                Ok(path) => println!("profile saved to {}", path.display()),
                Err(e) => eprintln!("could not save profile: {e}"),
            }
        }
        profile
    };

    print_profile(&profile);

    if run_suite {
        println!("\n=== static vs tuned vs oracle (fresh inputs) ===");
        let selector = TunedSelector::new(profile);
        let scale = args.scale_or(if args.quick { 6 } else { 9 });
        let inputs = tunesuite::default_inputs(scale, args.seed ^ 0x5u64);
        let rows = tunesuite::compare(&inputs, Some(&selector), &pool, args.reps);
        print!("{}", tunesuite::render(&rows));
    }
}

fn print_records(records: &[SweepRecord]) {
    for rec in records {
        let mut line = format!("{:<40}", rec.label);
        let best = rec
            .timings
            .iter()
            .min_by(|(_, x), (_, y)| x.total_cmp(y))
            .map(|&(a, s)| (a, s));
        if let Some((algo, secs)) = best {
            line.push_str(&format!(
                " fastest {:<10} {:>9.3} ms",
                algo.name(),
                secs * 1e3
            ));
        }
        let plan_best = rec
            .plan_timings
            .iter()
            .min_by(|(_, x), (_, y)| x.total_cmp(y))
            .map(|&(a, s)| (a, s));
        if let Some((algo, secs)) = plan_best {
            line.push_str(&format!(
                " | planned {:<10} {:>9.3} ms",
                algo.name(),
                secs * 1e3
            ));
        }
        println!("{line}");
    }
    println!();
}

fn print_profile(profile: &MachineProfile) {
    println!(
        "profile: host {}, {} threads, collision factor c = {:.4}, rows {}..{}",
        profile.hostname,
        profile.threads,
        profile.collision_factor,
        profile.bounds.nrows_min,
        profile.bounds.nrows_max
    );
    println!(
        "{:<12} {:<8} {:<4} {:<9} {:<9} winner (runner-up) [plan winner]",
        "op", "pattern", "ef", "inputs", "output"
    );
    for cell in &profile.cells {
        let mut runner_up = cell
            .ranking
            .get(1)
            .map(|s| format!(" ({} {:.2}x)", s.algo.name(), s.rel_slowdown))
            .unwrap_or_default();
        if let Some(pw) = cell.plan_winner {
            runner_up.push_str(&format!(" [plan: {}]", pw.name()));
        }
        println!(
            "{:<12} {:<8} 2^{:<2} {:<9} {:<9} {}{}",
            spgemm_tune::op_name(cell.key.op),
            spgemm_tune::pattern_name(cell.key.pattern),
            cell.key.ef_bucket,
            if cell.key.sorted_inputs {
                "sorted"
            } else {
                "shuffled"
            },
            if cell.key.order.is_sorted() {
                "sorted"
            } else {
                "unsorted"
            },
            cell.winner.name(),
            runner_up
        );
    }
}
