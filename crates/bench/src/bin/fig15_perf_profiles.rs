//! Figure 15: Dolan–Moré performance profiles over the Table 2 suite,
//! sorted and unsorted panels (§5.4.5).
//!
//! Paper findings to compare against: Hash best for ~70% of sorted
//! problems and always within 1.6× of the best; for unsorted, Hash /
//! HashVec / MKL-inspector roughly tie, Kokkos trails.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig15_perf_profiles [--divisor N] [--suitesparse DIR]
//! ```

use spgemm::OutputOrder;
use spgemm_bench::{args::BenchArgs, panel_label, profiles, runner, sorted_panel, unsorted_panel};
use spgemm_gen::perm;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let divisor = if args.quick {
        args.divisor.max(512)
    } else {
        args.divisor
    };
    let suite = spgemm_bench::suites::load(args.suitesparse.as_deref(), divisor, args.seed);
    println!(
        "# fig15: performance profiles over {} matrices (divisor {divisor})",
        suite.len()
    );

    for (panel, algos, order) in [
        ("sorted", sorted_panel(), OutputOrder::Sorted),
        ("unsorted", unsorted_panel(), OutputOrder::Unsorted),
    ] {
        let labels: Vec<&str> = algos
            .iter()
            .map(|&a| panel_label(a, panel == "sorted"))
            .collect();
        let mut times: Vec<Vec<Option<f64>>> = vec![Vec::new(); algos.len()];
        for p in &suite {
            let m = if panel == "sorted" {
                p.matrix.clone()
            } else {
                perm::randomize_columns(&p.matrix, &mut spgemm_gen::rng(args.seed ^ 0x5eed))
            };
            for (s, &algo) in algos.iter().enumerate() {
                let t = runner::time_multiply(&m, &m, algo, order, &pool, args.reps)
                    .ok()
                    .map(|r| r.secs);
                times[s].push(t);
            }
        }
        let prof = profiles::build(&labels, &times);
        println!("panel\talgorithm\ttheta\tfraction");
        let thetas = profiles::default_thetas();
        for (s, label) in labels.iter().enumerate() {
            for &theta in &thetas {
                println!(
                    "{panel}\t{label}\t{theta:.1}\t{:.3}",
                    prof.fraction_within(s, theta)
                );
            }
        }
        // headline stats
        for (s, label) in labels.iter().enumerate() {
            println!(
                "# {panel}: {label}: best on {:.0}% of problems, within 1.6x on {:.0}%",
                prof.fraction_within(s, 1.0) * 100.0,
                prof.fraction_within(s, 1.6) * 100.0
            );
        }
    }
}
