//! Figure 17: `L · U` SpGEMM performance (triangle counting) vs
//! compression ratio over the Table 2 suite, sorted panel.
//!
//! The pipeline matches §5.6: symmetrize, degree-reorder, split
//! `A = L + U`, time the `L · U` product. Paper findings: results
//! track the A² figure, except Heap wins the low-compression-ratio
//! inputs ("One big difference from A² is that Heap performs the best
//! for inputs with low compression ratios").
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig17_triangle_lu [--divisor N] [--suitesparse DIR]
//! ```

use spgemm::OutputOrder;
use spgemm_bench::{args::BenchArgs, panel_label, runner, sorted_panel};
use spgemm_sparse::ops;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let divisor = if args.quick {
        args.divisor.max(512)
    } else {
        args.divisor
    };
    let suite = spgemm_bench::suites::load(args.suitesparse.as_deref(), divisor, args.seed);
    println!("# fig17: L*U (triangle counting) over the suite (divisor {divisor})");
    println!("algorithm\tmatrix\tcompression_ratio\tmflops");

    for p in &suite {
        // §5.6 preprocessing
        let simple = match ops::symmetrize_simple(&p.matrix) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skip {} (not square?): {e}", p.name);
                continue;
            }
        };
        let perm = ops::degree_ascending_permutation(&simple);
        let reordered = match ops::permute_symmetric(&simple, &perm) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skip {}: {e}", p.name);
                continue;
            }
        };
        let (l, u) = match ops::split_lu(&reordered) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("skip {}: {e}", p.name);
                continue;
            }
        };
        for algo in sorted_panel() {
            match runner::time_multiply(&l, &u, algo, OutputOrder::Sorted, &pool, args.reps) {
                Ok(m) => println!(
                    "{}\t{}\t{:.2}\t{:.1}",
                    panel_label(algo, true),
                    p.name,
                    m.compression_ratio(),
                    m.mflops()
                ),
                Err(e) => eprintln!("skip {algo} on {}: {e}", p.name),
            }
        }
    }
}
