//! Figure 11: MFLOPS vs density (edge factor 4/8/16) at fixed scale,
//! for ER and G500 inputs, sorted and unsorted panels.
//!
//! Paper panels: KNL/ER, KNL/G500, Haswell/ER, Haswell/G500 at scale
//! 16. Here one machine, two pattern panels; the sorted panel runs
//! {MKL~Merge, Heap, Hash, HashVec} on sorted inputs, the unsorted
//! panel runs {MKL~SPA, MKL-inspector~1-phase, Kokkos~KkHash, Hash,
//! HashVec} on randomly column-permuted inputs with unsorted output
//! (the §5.1 protocol).
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig11_density_scaling [--scale N] [--reps N]
//! ```

use spgemm::OutputOrder;
use spgemm_bench::{args::BenchArgs, panel_label, runner, sorted_panel, unsorted_panel};
use spgemm_gen::{perm, rmat, RmatKind};

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let scale = args.scale_or(13); // paper: 16
    println!("# fig11: MFLOPS vs edge factor at scale {scale}");
    println!("pattern\tpanel\talgorithm\tedge_factor\tmflops");

    for kind in [RmatKind::Er, RmatKind::G500] {
        for ef in [4usize, 8, 16] {
            let a = rmat::generate_kind(kind, scale, ef, &mut spgemm_gen::rng(args.seed));
            // sorted panel
            for algo in sorted_panel() {
                match runner::time_multiply(&a, &a, algo, OutputOrder::Sorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{}\tsorted\t{}\t{}\t{:.1}",
                        kind.name(),
                        panel_label(algo, true),
                        ef,
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo} sorted: {e}"),
                }
            }
            // unsorted panel: §5.1 — inputs randomly column-permuted
            let u = perm::randomize_columns(&a, &mut spgemm_gen::rng(args.seed ^ 0xff));
            for algo in unsorted_panel() {
                match runner::time_multiply(&u, &u, algo, OutputOrder::Unsorted, &pool, args.reps) {
                    Ok(m) => println!(
                        "{}\tunsorted\t{}\t{}\t{:.1}",
                        kind.name(),
                        panel_label(algo, false),
                        ef,
                        m.mflops()
                    ),
                    Err(e) => eprintln!("skip {algo} unsorted: {e}"),
                }
            }
        }
    }
}
