//! Figure 2: OpenMP-style scheduling cost vs iteration count.
//!
//! Paper series: {static, dynamic, guided} × {KNL, Haswell}. Here the
//! three policies run on this machine's pool; expect static ≪ dynamic
//! ≈ guided for small-work loops, converging as the loop grows.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig02_sched_cost [--threads N] [--reps N] [--quick]
//! ```

use spgemm_bench::args::BenchArgs;
use spgemm_membench::sched;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    println!(
        "# fig02: empty-loop scheduling cost (milliseconds, median of {} reps)",
        args.reps
    );
    let (lo, hi) = if args.quick { (5, 10) } else { (5, 19) }; // paper: 2^5..2^19
    let series = sched::sweep(&pool, lo, hi, args.reps);
    println!("policy\titerations\tmillis");
    for (name, pts) in &series {
        for p in pts {
            println!("{name}\t{}\t{:.4}", p.iterations, p.millis);
        }
    }
    // the paper's headline comparison at the largest size
    let last = |name: &str| {
        series
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, pts)| pts.last())
            .map(|p| p.millis)
            .unwrap_or(f64::NAN)
    };
    println!(
        "# at 2^{hi} iterations: dynamic/static = {:.1}x, guided/static = {:.1}x",
        last("dynamic") / last("static"),
        last("guided") / last("static"),
    );
}
