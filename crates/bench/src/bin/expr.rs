//! `spgemm-expr` — fused expression-plan pipelines vs the unfused
//! stage-by-stage composition, on the two pipeline shapes the paper's
//! applications actually run:
//!
//! * **MCL** expansion+inflation: `normalize_cols(|A·A|^r)` — the
//!   fused plan applies inflation and renormalization as in-place
//!   epilogues of the square's numeric phase, materializing *no*
//!   intermediate; the unfused baseline materializes the raw square
//!   and the inflated copy every round.
//! * **AMG** Galerkin coarsening: `Pᵀ(A·P)` — the fused plan caches
//!   the transpose structure (numeric-only gather per round) and both
//!   SpGEMM plans; the baseline re-transposes and re-plans per round.
//!
//! Reported per workload: steady-state ms/iter fused vs unfused, the
//! intermediate-materialization bytes **eliminated by fusion**, and
//! the bytes still materialized (buffers the plan reuses in place).
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-expr -- \
//!     [--scale N] [--ef N] [--grid N] [--reps N] [--seed N] [--quick]
//!     [--smoke]   # CI assertion run: fused == unfused byte-for-byte
//!                 # on both DAGs + zero steady-state symbolic rebuilds
//! ```

use spgemm::expr::{ElemMap, ExprCache, ExprGraph, NodeId};
use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_apps::amg;
use spgemm_par::Pool;
use spgemm_sparse::{ops, Csr, PlusTimes};
use std::time::Instant;

type P = PlusTimes<f64>;

struct Args {
    scale: u32,
    ef: usize,
    grid: usize,
    reps: usize,
    seed: u64,
    smoke: bool,
}

fn num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad number {s:?}");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: 0,
        ef: 8,
        grid: 0,
        reps: 10,
        seed: 20180804,
        smoke: false,
    };
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => out.scale = num(&take("--scale")) as u32,
            "--ef" => out.ef = num(&take("--ef")),
            "--grid" => out.grid = num(&take("--grid")),
            "--reps" => out.reps = num(&take("--reps")).max(1),
            "--seed" => out.seed = num(&take("--seed")) as u64,
            "--smoke" => out.smoke = true,
            "--quick" => quick = true,
            // Accepted for run_all flag forwarding; not used here.
            "--threads" | "--divisor" | "--suitesparse" => {
                let _ = take(flag.as_str());
            }
            "--help" | "-h" => {
                eprintln!("flags: --scale N --ef N --grid N --reps N --seed N --smoke --quick");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.scale == 0 {
        out.scale = if quick || out.smoke { 8 } else { 11 };
    }
    if out.grid == 0 {
        out.grid = if quick || out.smoke { 16 } else { 48 };
    }
    if quick {
        out.reps = out.reps.min(4);
    }
    out
}

fn bits_eq(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rpts() == b.rpts()
        && a.cols() == b.cols()
        && a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn kib(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

/// One pipeline under test: its DAG, inputs, and the unfused
/// stage-by-stage baseline.
struct Workload {
    name: &'static str,
    graph: ExprGraph,
    root: NodeId,
    inputs: Vec<Csr<f64>>,
    baseline: fn(&[&Csr<f64>], &Pool) -> Csr<f64>,
}

fn mcl_workload(scale: u32, ef: usize, seed: u64) -> Workload {
    let mut rng = spgemm_gen::rng(seed);
    let g = spgemm_gen::rmat::generate_kind(spgemm_gen::RmatKind::G500, scale, ef, &mut rng);
    let sym = ops::symmetrize_simple(&g).expect("square");
    let with_loops = ops::add(&sym, &Csr::<f64>::identity(sym.nrows())).expect("shapes");
    let m = ops::normalize_columns(&with_loops);
    let mut graph = ExprGraph::new();
    let a = graph.input();
    let sq = graph.multiply(a, a);
    let inf = graph.map(sq, ElemMap::AbsPow(2.0));
    let root = graph.normalize_cols(inf);
    Workload {
        name: "mcl  norm(|A·A|^2)",
        graph,
        root,
        inputs: vec![m],
        baseline: |inputs, pool| {
            let a = inputs[0];
            let sq = multiply_in::<P>(a, a, Algorithm::Hash, OutputOrder::Sorted, pool)
                .expect("multiply");
            // Runtime exponent, exactly like `mcl::inflate(_,
            // params.inflation)`: a literal 2.0 here would let LLVM
            // fold `powf` into `x*x` and break the byte comparison
            // against the (inherently runtime-parameterized) fused
            // epilogue.
            let r = std::hint::black_box(2.0f64);
            ops::normalize_columns(&sq.map(|v| v.abs().powf(r)))
        },
    }
}

fn amg_workload(grid: usize) -> Workload {
    let a = spgemm_gen::poisson::poisson2d(grid);
    let agg = amg::greedy_aggregate(&a);
    let p = amg::prolongation_from_aggregates(&agg).expect("aggregates");
    let mut graph = ExprGraph::new();
    let ia = graph.input();
    let ip = graph.input();
    let ap = graph.multiply(ia, ip);
    let pt = graph.transpose(ip);
    let root = graph.multiply(pt, ap);
    Workload {
        name: "amg  Pᵀ(A·P)    ",
        graph,
        root,
        inputs: vec![a, p],
        baseline: |inputs, pool| {
            let (a, p) = (inputs[0], inputs[1]);
            let ap =
                multiply_in::<P>(a, p, Algorithm::Hash, OutputOrder::Sorted, pool).expect("A·P");
            let pt = ops::transpose(p);
            multiply_in::<P>(&pt, &ap, Algorithm::Hash, OutputOrder::Sorted, pool).expect("PᵀAP")
        },
    }
}

struct Row {
    name: &'static str,
    fused_ms: f64,
    unfused_ms: f64,
    eliminated: usize,
    materialized: usize,
    rebuilds: u64,
    hits: u64,
    bytes_ok: bool,
}

fn run_workload(w: &Workload, reps: usize, pool: &Pool) -> Row {
    let inputs: Vec<&Csr<f64>> = w.inputs.iter().collect();
    let mut cache = ExprCache::new(w.graph.clone(), w.root, Algorithm::Hash);
    let mut out = Csr::zero(0, 0);
    // bind + warm
    cache
        .execute_into_in(&inputs, &[], &mut out, pool)
        .expect("bind");
    cache
        .execute_into_in(&inputs, &[], &mut out, pool)
        .expect("warm");
    let t = Instant::now();
    for _ in 0..reps {
        cache
            .execute_into_in(&inputs, &[], &mut out, pool)
            .expect("steady execute");
    }
    let fused_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let expect = (w.baseline)(&inputs, pool);
    let bytes_ok = bits_eq(&out, &expect);

    let t = Instant::now();
    for _ in 0..reps {
        let got = (w.baseline)(&inputs, pool);
        std::hint::black_box(&got);
    }
    let unfused_ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let plan = cache.plan().expect("bound");
    Row {
        name: w.name,
        fused_ms,
        unfused_ms,
        eliminated: plan.fused_bytes_eliminated(),
        materialized: plan.intermediate_bytes(),
        rebuilds: cache.stats().rebuilds,
        hits: cache.stats().hits,
        bytes_ok,
    }
}

fn main() {
    let args = parse_args();
    let pool = spgemm_par::global_pool();
    println!(
        "spgemm-expr: fused expression plans vs unfused composition \
         (scale {}, ef {}, grid {}, reps {}, {} threads)",
        args.scale,
        args.ef,
        args.grid,
        args.reps,
        pool.nthreads()
    );
    let workloads = [
        mcl_workload(args.scale, args.ef, args.seed),
        amg_workload(args.grid),
    ];
    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>12} {:>12} {:>16}",
        "pipeline", "fused ms", "unfused", "speedup", "elim KiB", "kept KiB", "rebuilds/hits"
    );
    let mut rows = Vec::new();
    for w in &workloads {
        let row = run_workload(w, args.reps, pool);
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>7.2}x {:>12.1} {:>12.1} {:>10}/{}  {}",
            row.name,
            row.fused_ms,
            row.unfused_ms,
            row.unfused_ms / row.fused_ms.max(1e-9),
            kib(row.eliminated),
            kib(row.materialized),
            row.rebuilds,
            row.hits,
            if row.bytes_ok {
                "bytes=="
            } else {
                "BYTES DIFFER"
            },
        );
        rows.push(row);
    }
    println!(
        "\n(elim KiB = intermediate materialization eliminated by epilogue \
         fusion; kept KiB = buffers the plan still holds and refills in \
         place; rebuilds must stay at 1 — the bind — while every steady \
         iteration is a numeric-only hit)"
    );

    if args.smoke {
        for row in &rows {
            assert!(
                row.bytes_ok,
                "{}: fused result must equal the unfused composition byte-for-byte",
                row.name
            );
            assert_eq!(
                row.rebuilds, 1,
                "{}: steady state must not rebuild symbolic state",
                row.name
            );
            assert!(
                row.hits >= args.reps as u64,
                "{}: steady iterations must be plan hits",
                row.name
            );
        }
        let mcl = &rows[0];
        assert!(
            mcl.eliminated > 0,
            "MCL inflation+renormalization must fuse away its intermediates"
        );
        let mut stamp = spgemm_bench::perfjson::PerfReport::new("expr", pool.nthreads());
        for row in &rows {
            // First token of the display name ("mcl", "amg") — the
            // rest is typography, not a metric key.
            let key = row.name.split_whitespace().next().unwrap_or("row");
            stamp
                .metric(&format!("{key}_fused_ms"), row.fused_ms)
                .metric(&format!("{key}_unfused_ms"), row.unfused_ms)
                .metric(&format!("{key}_eliminated_bytes"), row.eliminated as f64);
        }
        match stamp.write() {
            Ok(path) => println!("perf stamp: {}", path.display()),
            Err(e) => eprintln!("could not write perf stamp: {e}"),
        }
        println!("smoke OK: fused == unfused on both DAGs, zero steady-state rebuilds");
    }
}
