//! `spgemm-regress` — the bench perf-trajectory gate: compare a
//! fresh `BENCH_<name>.json` stamp against a committed baseline and
//! fail on step-function timing regressions.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin spgemm-regress -- \
//!     --baseline baselines/BENCH_obs.json \
//!     [--current BENCH_obs.json]   # default: ./BENCH_<basename>
//!     [--warn 0.5] [--fail 1.5]    # relative tolerances
//! ```
//!
//! Exit status: 0 when every timing is within the fail tolerance and
//! no baseline metric went missing (warnings print but do not fail);
//! 1 on regression; 2 on usage or file errors.

use spgemm_bench::perfjson;
use spgemm_bench::regress::{compare, render, RegressConfig};
use std::path::PathBuf;

struct Args {
    baseline: PathBuf,
    current: Option<PathBuf>,
    cfg: RegressConfig,
}

fn parse_args() -> Args {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut cfg = RegressConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        let tol = |s: String, what: &str| -> f64 {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad {what} tolerance {s:?}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(take("--baseline").into()),
            "--current" => current = Some(take("--current").into()),
            "--warn" => cfg.warn = tol(take("--warn"), "--warn"),
            "--fail" => cfg.fail = tol(take("--fail"), "--fail"),
            "--help" | "-h" => {
                eprintln!("flags: --baseline PATH [--current PATH] [--warn F] [--fail F]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let baseline = baseline.unwrap_or_else(|| {
        eprintln!("--baseline PATH is required");
        std::process::exit(2);
    });
    Args {
        baseline,
        current,
        cfg,
    }
}

fn load(path: &PathBuf) -> perfjson::Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    perfjson::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn main() {
    let args = parse_args();
    // Default current stamp: the baseline's file name in the bench
    // output directory (where the smoke run just wrote it).
    let current_path = args.current.clone().unwrap_or_else(|| {
        let dir = std::env::var(perfjson::DIR_ENV).unwrap_or_else(|_| ".".to_string());
        let name = args
            .baseline
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| {
                eprintln!("--baseline has no file name; pass --current");
                std::process::exit(2);
            });
        PathBuf::from(dir).join(name)
    });
    let baseline = load(&args.baseline);
    let current = load(&current_path);
    let report = match compare(&baseline, &current, args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("regress: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "spgemm-regress: {} vs {}",
        args.baseline.display(),
        current_path.display()
    );
    print!("{}", render(&report, args.cfg));
    if report.failures() > 0 {
        std::process::exit(1);
    }
}
