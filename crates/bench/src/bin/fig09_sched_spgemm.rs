//! Figure 9: Heap SpGEMM performance vs input scale under five
//! scheduling / memory-management configurations (§5.3.1).
//!
//! Paper series on G500, edge factor 16: static, dynamic, guided,
//! balanced-single, balanced-parallel. "Balanced parallel" (the §4.1
//! partition + §3.2 thread-private staging) should dominate, with
//! plain static suffering load imbalance on the skewed G500 rows and
//! balanced-single losing at large scales to master-side
//! (de)allocation.
//!
//! ```text
//! cargo run --release -p spgemm-bench --bin fig09_sched_spgemm [--scale N] [--ef N] [--reps N]
//! ```

use spgemm::tuning::{heap_multiply_tuned, MemScheme, RowSchedule};
use spgemm_bench::args::BenchArgs;
use spgemm_gen::{rmat, RmatKind};
use spgemm_sparse::{stats, PlusTimes};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    print!(
        "{}",
        spgemm_bench::envinfo::environment_banner(pool.nthreads())
    );
    let ef = args.ef_or(16);
    let max_scale = args.scale_or(13); // paper sweeps 6..18
    println!("# fig09: Heap SpGEMM (G500, EF {ef}) under scheduling variants, MFLOPS");
    println!("variant\tscale\tmflops");

    let variants: [(&str, RowSchedule, MemScheme); 5] = [
        ("static", RowSchedule::Static, MemScheme::Parallel),
        ("dynamic", RowSchedule::Dynamic, MemScheme::Parallel),
        ("guided", RowSchedule::Guided, MemScheme::Parallel),
        (
            "balanced single",
            RowSchedule::FlopBalanced,
            MemScheme::Single,
        ),
        (
            "balanced parallel",
            RowSchedule::FlopBalanced,
            MemScheme::Parallel,
        ),
    ];

    for scale in 6..=max_scale {
        let a = rmat::generate_kind(RmatKind::G500, scale, ef, &mut spgemm_gen::rng(args.seed));
        let flop = stats::flop(&a, &a);
        for (name, sched, mem) in variants {
            // warmup
            std::hint::black_box(heap_multiply_tuned::<PlusTimes<f64>>(
                &a, &a, &pool, sched, mem,
            ));
            let mut times = Vec::with_capacity(args.reps);
            for _ in 0..args.reps.max(1) {
                let t = Instant::now();
                std::hint::black_box(heap_multiply_tuned::<PlusTimes<f64>>(
                    &a, &a, &pool, sched, mem,
                ));
                times.push(t.elapsed().as_secs_f64());
            }
            times.sort_by(|x, y| x.total_cmp(y));
            let secs = times[times.len() / 2];
            println!("{name}\t{scale}\t{:.1}", 2.0 * flop as f64 / secs / 1e6);
        }
    }
}
