//! Static-recipe vs tuned-selector vs best-oracle comparison.
//!
//! For each input the suite times three choices of algorithm:
//!
//! * **static** — what the paper's Table-4 recipe picks;
//! * **tuned** — what the machine profile's [`TunedSelector`] picks
//!   (absent when no profile is given or the input is out of grid);
//! * **oracle** — the fastest algorithm found by exhaustively timing
//!   the roster on *this* input (the selection upper bound).
//!
//! The interesting number is each selector's *regret*: its time over
//! the oracle's. A perfect selector has regret 1.00.

use crate::runner;
use spgemm::recipe::{self, auto_context};
use spgemm::{Algorithm, OutputOrder};
use spgemm_gen::{perm, rmat, tallskinny, RmatKind};
use spgemm_par::Pool;
use spgemm_sparse::Csr;
use spgemm_tune::TunedSelector;

/// One input × output-order comparison.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// Input description.
    pub input: String,
    /// Requested output order.
    pub order: OutputOrder,
    /// Table-4 static pick and its median seconds.
    pub static_pick: Algorithm,
    /// Seconds for the static pick.
    pub static_secs: f64,
    /// Profile pick (None = selector declined / no profile).
    pub tuned_pick: Option<Algorithm>,
    /// Seconds for the tuned pick.
    pub tuned_secs: Option<f64>,
    /// Fastest algorithm on this input.
    pub oracle_pick: Algorithm,
    /// Seconds for the oracle pick.
    pub oracle_secs: f64,
}

impl SuiteRow {
    /// Static pick's slowdown over the oracle.
    pub fn static_regret(&self) -> f64 {
        regret(self.static_secs, self.oracle_secs)
    }

    /// Tuned pick's slowdown over the oracle (static regret when the
    /// selector declined, since `Auto` then takes the static path).
    pub fn tuned_regret(&self) -> f64 {
        match self.tuned_secs {
            Some(secs) => regret(secs, self.oracle_secs),
            None => self.static_regret(),
        }
    }
}

fn regret(secs: f64, oracle: f64) -> f64 {
    if oracle > 0.0 {
        secs / oracle
    } else {
        1.0
    }
}

/// The default comparison inputs: fresh draws (different seed) from
/// the same families the calibration sweeps, so the suite measures
/// generalization rather than memorization.
pub fn default_inputs(scale: u32, seed: u64) -> Vec<(String, Csr<f64>, Csr<f64>)> {
    let mut rng = spgemm_gen::rng(seed);
    let mut out = Vec::new();
    for kind in [RmatKind::Er, RmatKind::G500] {
        for ef in [4usize, 16] {
            let a = rmat::generate_kind(kind, scale, ef, &mut rng);
            let au = perm::randomize_columns(&a, &mut rng);
            let k = (a.nrows() / 16).max(1);
            let ts = tallskinny::tall_skinny(&a, k, &mut rng).expect("k <= ncols");
            let base = format!("{}-s{scale}-ef{ef}", kind.name());
            out.push((format!("{base}-sq-sorted"), a.clone(), a.clone()));
            out.push((format!("{base}-sq-unsorted"), au.clone(), au));
            out.push((format!("{base}-ts-sorted"), a, ts));
        }
    }
    out
}

/// Time the three choices for every input and order.
pub fn compare(
    inputs: &[(String, Csr<f64>, Csr<f64>)],
    selector: Option<&TunedSelector>,
    pool: &Pool,
    reps: usize,
) -> Vec<SuiteRow> {
    let mut rows = Vec::new();
    for (label, a, b) in inputs {
        for order in [OutputOrder::Sorted, OutputOrder::Unsorted] {
            let ctx = auto_context(a, b, order);
            let static_pick = recipe::static_select(&ctx);
            let tuned_pick = selector.and_then(|s| s.select(&ctx));

            // Time the admissible roster once; every column reads the
            // same measurement, so a pick's regret is exactly 1.0 when
            // it coincides with the oracle. The oracle competes under
            // the same rules as the selectors: it may not deliver the
            // wrong output order, and test-only baselines
            // (Reference/IKJ) that no selector would serve are out.
            let mut timed: Vec<(Algorithm, f64)> = Vec::new();
            for algo in Algorithm::ALL {
                if !recipe::pick_admissible(&ctx, algo) || !spgemm_tune::selectable(algo) {
                    continue;
                }
                if let Ok(m) = runner::time_multiply(a, b, algo, order, pool, reps) {
                    timed.push((algo, m.secs));
                }
            }
            let secs_of = |algo: Algorithm| -> Option<f64> {
                timed.iter().find(|(a, _)| *a == algo).map(|&(_, s)| s)
            };
            let &(oracle_pick, oracle_secs) = timed
                .iter()
                .min_by(|(_, x), (_, y)| x.total_cmp(y))
                .expect("at least one admissible algorithm per scenario");
            let static_secs = secs_of(static_pick).unwrap_or(f64::INFINITY);
            let tuned_secs = tuned_pick.and_then(secs_of);
            rows.push(SuiteRow {
                input: label.clone(),
                order,
                static_pick,
                static_secs,
                tuned_pick,
                tuned_secs,
                oracle_pick,
                oracle_secs,
            });
        }
    }
    rows
}

/// Render the comparison as an aligned text table with a harmonic
/// summary of both regrets.
pub fn render(rows: &[SuiteRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:<9} {:<22} {:<22} {:<14}",
        "input", "order", "static (regret)", "tuned (regret)", "oracle"
    );
    for r in rows {
        let order = if r.order.is_sorted() {
            "sorted"
        } else {
            "unsorted"
        };
        let stat = format!("{} ({:.2}x)", r.static_pick.name(), r.static_regret());
        let tuned = match r.tuned_pick {
            Some(p) => format!("{} ({:.2}x)", p.name(), r.tuned_regret()),
            None => "- (static)".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:<34} {:<9} {:<22} {:<22} {:<14}",
            r.input,
            order,
            stat,
            tuned,
            r.oracle_pick.name()
        );
    }
    let mean = |f: &dyn Fn(&SuiteRow) -> f64| -> f64 {
        let finite: Vec<f64> = rows.iter().map(f).filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            // geometric mean suits ratios
            (finite.iter().map(|x| x.ln()).sum::<f64>() / finite.len() as f64).exp()
        }
    };
    let _ = writeln!(
        out,
        "geomean regret: static {:.3}x, tuned {:.3}x (1.000x = oracle)",
        mean(&SuiteRow::static_regret),
        mean(&SuiteRow::tuned_regret)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_tune::CalibrationConfig;

    #[test]
    fn suite_runs_and_reports_all_three_columns() {
        let pool = Pool::new(1);
        let profile = spgemm_tune::calibrate(&CalibrationConfig::quick(), &pool);
        let selector = TunedSelector::new(profile);
        let inputs = default_inputs(6, 99);
        let rows = compare(&inputs, Some(&selector), &pool, 1);
        assert_eq!(rows.len(), inputs.len() * 2);
        for r in &rows {
            assert!(
                r.oracle_secs.is_finite() && r.oracle_secs > 0.0,
                "{}",
                r.input
            );
            assert!(
                r.static_regret() >= 1.0,
                "regret can't beat the oracle: {}",
                r.input
            );
            assert!(
                r.tuned_regret() >= 1.0,
                "regret can't beat the oracle: {}",
                r.input
            );
        }
        // the quick profile covers these families at this scale
        assert!(rows.iter().any(|r| r.tuned_pick.is_some()));
        let table = render(&rows);
        assert!(table.contains("geomean regret"));
        assert!(table.lines().count() >= rows.len() + 2);
    }

    #[test]
    fn without_selector_tuned_column_is_absent() {
        let pool = Pool::new(1);
        let inputs = vec![default_inputs(6, 5).remove(0)];
        let rows = compare(&inputs, None, &pool, 1);
        assert!(rows
            .iter()
            .all(|r| r.tuned_pick.is_none() && r.tuned_secs.is_none()));
        assert!(render(&rows).contains("- (static)"));
    }
}
