//! The perf regression gate: compare a fresh `BENCH_<name>.json`
//! stamp against a committed baseline.
//!
//! Timing metrics (keys ending `_ms` or `_ns`) are judged lower-is-
//! better with two relative tolerances: past `warn` the row is
//! flagged (non-fatal — CI prints it), past `fail` the run fails
//! (non-zero exit from `spgemm-regress`). Tolerances default wide
//! because smoke-sized runs on shared CI runners are noisy — the gate
//! exists to catch step-function regressions (an accidental
//! quadratic, a lost cache), not single-digit percent drift. Non-
//! timing metrics (counts, coverages) are reported but never gate.

use crate::perfjson::{Json, SCHEMA};

/// Relative tolerances of the gate.
#[derive(Clone, Copy, Debug)]
pub struct RegressConfig {
    /// Flag timings slower than `baseline * (1 + warn)`.
    pub warn: f64,
    /// Fail timings slower than `baseline * (1 + fail)`.
    pub fail: f64,
}

impl Default for RegressConfig {
    fn default() -> Self {
        // +50% flags, +150% fails: generous enough for smoke-sized
        // workloads on noisy shared runners, tight enough to catch a
        // lost fast path.
        RegressConfig {
            warn: 0.5,
            fail: 1.5,
        }
    }
}

/// Absolute slack under which a timing difference is never judged:
/// sub-10µs measurements are dominated by timer and scheduler noise.
const ABS_SLACK_MS: f64 = 0.01;

/// One metric's comparison outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Timing within tolerance (or faster).
    Ok,
    /// Timing past the warn tolerance (non-fatal).
    Warn,
    /// Timing past the fail tolerance (fatal).
    Fail,
    /// Non-timing metric — reported, never gated.
    Info,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct Row {
    /// Metric key.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline` (0 when the baseline is 0).
    pub ratio: f64,
    /// The gate's judgement.
    pub verdict: Verdict,
}

/// The gate's full output for one stamp pair.
#[derive(Clone, Debug, Default)]
pub struct RegressReport {
    /// Per-metric comparisons, baseline key order.
    pub rows: Vec<Row>,
    /// Baseline keys missing from the current stamp — fatal: a
    /// silently dropped metric must not pass the gate.
    pub missing: Vec<String>,
    /// Current keys absent from the baseline (informational; commit a
    /// new baseline to start tracking them).
    pub new_keys: Vec<String>,
}

impl RegressReport {
    /// Rows past the warn tolerance (includes failures).
    pub fn warnings(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Warn | Verdict::Fail))
            .count()
    }

    /// Fatal count: rows past the fail tolerance plus missing keys.
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Fail)
            .count()
            + self.missing.len()
    }
}

/// Whether `key` names a timing (lower-is-better, gated).
pub fn is_timing_key(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_ns")
}

/// `key`'s value in milliseconds, for the absolute-slack floor.
fn in_ms(key: &str, v: f64) -> f64 {
    if key.ends_with("_ns") {
        v / 1e6
    } else {
        v
    }
}

fn numeric_metrics(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let metrics = doc
        .get("metrics")
        .ok_or_else(|| "stamp has no \"metrics\" object".to_string())?;
    match metrics {
        Json::Obj(members) => Ok(members
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
            .collect()),
        _ => Err("\"metrics\" is not an object".into()),
    }
}

/// Compare two parsed stamps. Errors on shape problems (wrong schema,
/// mismatched bench names, missing `metrics`); regressions are
/// reported through the [`RegressReport`], not as errors.
pub fn compare(
    baseline: &Json,
    current: &Json,
    cfg: RegressConfig,
) -> Result<RegressReport, String> {
    for (label, doc) in [("baseline", baseline), ("current", current)] {
        let schema = doc.get("schema").and_then(Json::as_f64).unwrap_or(0.0);
        if schema != SCHEMA as f64 {
            return Err(format!("{label} stamp has schema {schema}, want {SCHEMA}"));
        }
    }
    let (b_name, c_name) = (
        baseline.get("name").and_then(Json::as_str).unwrap_or(""),
        current.get("name").and_then(Json::as_str).unwrap_or(""),
    );
    if b_name != c_name {
        return Err(format!(
            "stamps are from different benches: baseline {b_name:?}, current {c_name:?}"
        ));
    }
    let base = numeric_metrics(baseline)?;
    let cur = numeric_metrics(current)?;
    let mut report = RegressReport::default();
    for (key, b) in &base {
        let Some((_, c)) = cur.iter().find(|(k, _)| k == key) else {
            report.missing.push(key.clone());
            continue;
        };
        let ratio = if *b != 0.0 { c / b } else { 0.0 };
        let verdict = if !is_timing_key(key) {
            Verdict::Info
        } else if in_ms(key, (c - b).abs()) <= ABS_SLACK_MS {
            Verdict::Ok
        } else if *b > 0.0 && ratio > 1.0 + cfg.fail {
            Verdict::Fail
        } else if *b > 0.0 && ratio > 1.0 + cfg.warn {
            Verdict::Warn
        } else {
            Verdict::Ok
        };
        report.rows.push(Row {
            key: key.clone(),
            baseline: *b,
            current: *c,
            ratio,
            verdict,
        });
    }
    for (key, _) in &cur {
        if !base.iter().any(|(k, _)| k == key) {
            report.new_keys.push(key.clone());
        }
    }
    Ok(report)
}

/// Render the report as the table `spgemm-regress` prints.
pub fn render(report: &RegressReport, cfg: RegressConfig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>14} {:>14} {:>8}  verdict",
        "metric", "baseline", "current", "ratio"
    );
    for r in &report.rows {
        let v = match r.verdict {
            Verdict::Ok => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
            Verdict::Info => "info",
        };
        let _ = writeln!(
            out,
            "{:<32} {:>14.4} {:>14.4} {:>8.3}  {v}",
            r.key, r.baseline, r.current, r.ratio
        );
    }
    for k in &report.missing {
        let _ = writeln!(out, "{k:<32} {:>14} {:>14} {:>8}  MISSING", "-", "-", "-");
    }
    for k in &report.new_keys {
        let _ = writeln!(out, "{k:<32} (new metric — not in baseline)");
    }
    let _ = writeln!(
        out,
        "gate: warn > +{:.0}%, fail > +{:.0}% — {} warning(s), {} failure(s)",
        cfg.warn * 100.0,
        cfg.fail * 100.0,
        report.warnings(),
        report.failures()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfjson::parse;

    fn stamp(name: &str, metrics: &str) -> Json {
        parse(&format!(
            "{{\"name\":\"{name}\",\"schema\":1,\"env\":{{}},\"metrics\":{{{metrics}}}}}"
        ))
        .unwrap()
    }

    #[test]
    fn verdicts_follow_tolerances() {
        let b = stamp("x", "\"a_ms\":100,\"b_ms\":100,\"c_ms\":100,\"n\":5");
        let c = stamp("x", "\"a_ms\":120,\"b_ms\":180,\"c_ms\":300,\"n\":9");
        let r = compare(&b, &c, RegressConfig::default()).unwrap();
        let verdict = |k: &str| r.rows.iter().find(|r| r.key == k).unwrap().verdict;
        assert_eq!(verdict("a_ms"), Verdict::Ok, "+20% within warn");
        assert_eq!(verdict("b_ms"), Verdict::Warn, "+80% past warn");
        assert_eq!(verdict("c_ms"), Verdict::Fail, "+200% past fail");
        assert_eq!(verdict("n"), Verdict::Info, "counters never gate");
        assert_eq!(r.warnings(), 2);
        assert_eq!(r.failures(), 1);
    }

    #[test]
    fn improvements_and_tiny_timings_pass() {
        let b = stamp("x", "\"fast_ms\":100,\"noise_ns\":800");
        // 10x faster, and a sub-slack ns wobble 100x over tolerance
        let c = stamp("x", "\"fast_ms\":10,\"noise_ns\":8000");
        let r = compare(&b, &c, RegressConfig::default()).unwrap();
        assert_eq!(r.failures(), 0);
        assert_eq!(r.warnings(), 0, "absolute slack absorbs ns noise");
    }

    #[test]
    fn missing_keys_fail_and_new_keys_inform() {
        let b = stamp("x", "\"a_ms\":1,\"gone_ms\":2");
        let c = stamp("x", "\"a_ms\":1,\"added_ms\":3");
        let r = compare(&b, &c, RegressConfig::default()).unwrap();
        assert_eq!(r.missing, vec!["gone_ms".to_string()]);
        assert_eq!(r.new_keys, vec!["added_ms".to_string()]);
        assert_eq!(r.failures(), 1, "a dropped metric must not pass");
        let table = render(&r, RegressConfig::default());
        assert!(table.contains("MISSING"));
        assert!(table.contains("added_ms"));
    }

    #[test]
    fn shape_mismatches_error() {
        let b = stamp("x", "\"a_ms\":1");
        let other = stamp("y", "\"a_ms\":1");
        assert!(compare(&b, &other, RegressConfig::default()).is_err());
        let bad_schema = parse("{\"name\":\"x\",\"schema\":2,\"metrics\":{}}").unwrap();
        assert!(compare(&b, &bad_schema, RegressConfig::default()).is_err());
        let no_metrics = parse("{\"name\":\"x\",\"schema\":1}").unwrap();
        assert!(compare(&b, &no_metrics, RegressConfig::default()).is_err());
    }
}
