//! Benchmark harness regenerating every table and figure of the
//! paper's evaluation (§5). One binary per experiment lives in
//! `src/bin/`; this library holds the shared machinery:
//!
//! * [`args`] — the common command-line knobs (`--scale`, `--ef`,
//!   `--threads`, `--reps`, `--divisor`, `--suitesparse`, `--quick`);
//! * [`envinfo`] — the Table 3 environment banner every binary prints;
//! * [`runner`] — timed multiplies and MFLOPS accounting;
//! * [`profiles`] — Dolan–Moré performance profiles (Figure 15);
//! * [`suites`] — the SuiteSparse stand-in catalog (or real `.mtx`
//!   files when `--suitesparse DIR` is given);
//! * [`tunesuite`] — the static-recipe vs tuned-selector vs
//!   best-oracle comparison behind `tune --suite`.
//!
//! Defaults are scaled to finish on a small container; every binary
//! accepts overrides to approach the paper's full sizes on bigger
//! hardware. EXPERIMENTS.md records the shape comparison against the
//! paper for each figure.

#![warn(missing_docs)]

pub mod args;
pub mod envinfo;
pub mod perfjson;
pub mod profiles;
pub mod regress;
pub mod runner;
pub mod suites;
pub mod tunesuite;

/// The algorithm roster of a "sorted" comparison panel, in the order
/// the paper's figures list them: MKL(≈Merge), Heap, Hash, HashVector.
pub fn sorted_panel() -> Vec<spgemm::Algorithm> {
    use spgemm::Algorithm::*;
    vec![Merge, Heap, Hash, HashVec]
}

/// The "unsorted" comparison panel: MKL(≈SPA), MKL-inspector,
/// Kokkos(≈KkHash), Hash, HashVector.
pub fn unsorted_panel() -> Vec<spgemm::Algorithm> {
    use spgemm::Algorithm::*;
    vec![Spa, Inspector, KkHash, Hash, HashVec]
}

/// Paper-facing display name for an algorithm within a panel: the
/// stand-ins are labelled with both names to stay honest about the
/// substitution (see DESIGN.md §2).
pub fn panel_label(algo: spgemm::Algorithm, sorted: bool) -> &'static str {
    use spgemm::Algorithm::*;
    match (algo, sorted) {
        (Merge, _) => "MKL~Merge",
        (Spa, _) => "MKL~SPA",
        (Inspector, _) => "MKLinsp~1ph",
        (KkHash, _) => "Kokkos~KkHash",
        (Hash, _) => "Hash",
        (HashVec, _) => "HashVec",
        (Heap, _) => "Heap",
        (Ikj, _) => "IKJ",
        (RowClass, _) => "RowClass",
        (Reference, _) => "Reference",
        (Auto, _) => "Auto",
    }
}
