//! Minimal argument parsing shared by every figure binary.
//!
//! Keeping this hand-rolled avoids a CLI dependency; the harness needs
//! exactly one flag shape: `--key value` plus `--quick`.

/// Common knobs. Every figure binary documents which ones it uses.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// R-MAT scale (matrix is `2^scale` square). Figure-specific
    /// defaults apply when absent.
    pub scale: Option<u32>,
    /// Edge factor (average nnz per row).
    pub ef: Option<usize>,
    /// Worker threads (default: all hardware threads).
    pub threads: Option<usize>,
    /// Timing repetitions per point (median reported). Default 3;
    /// the paper averages 10 (`--reps 10` reproduces that).
    pub reps: usize,
    /// SuiteSparse stand-in scale divisor (Figures 14/15/17).
    pub divisor: usize,
    /// Directory of real `.mtx` files to use instead of stand-ins.
    pub suitesparse: Option<std::path::PathBuf>,
    /// Shrink every sweep to smoke-test size.
    pub quick: bool,
    /// RNG seed for generators.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: None,
            ef: None,
            threads: None,
            reps: 3,
            divisor: 64,
            suitesparse: None,
            quick: false,
            seed: 20180804, // ICPP 2018
        }
    }
}

impl BenchArgs {
    /// Parse from `std::env::args`, exiting with usage on errors.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (tests).
    // Not the std trait: this is fallible-by-exit CLI parsing, and every
    // call site names it explicitly.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |what: &str| -> String {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {what}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => out.scale = Some(parse_or_die(&take("--scale"), "--scale")),
                "--ef" => out.ef = Some(parse_or_die(&take("--ef"), "--ef")),
                "--threads" => out.threads = Some(parse_or_die(&take("--threads"), "--threads")),
                "--reps" => out.reps = parse_or_die(&take("--reps"), "--reps"),
                "--divisor" => out.divisor = parse_or_die(&take("--divisor"), "--divisor"),
                "--seed" => out.seed = parse_or_die(&take("--seed"), "--seed"),
                "--suitesparse" => out.suitesparse = Some(take("--suitesparse").into()),
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale N --ef N --threads N --reps N --divisor N \
                         --seed N --suitesparse DIR --quick"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The worker pool this run should use.
    pub fn pool(&self) -> spgemm_par::Pool {
        spgemm_par::Pool::new(self.threads.unwrap_or_else(spgemm_par::hardware_threads))
    }

    /// Figure-specific defaulting helpers.
    pub fn scale_or(&self, default: u32) -> u32 {
        let s = self.scale.unwrap_or(default);
        if self.quick {
            s.min(9)
        } else {
            s
        }
    }

    /// Edge factor with a figure-specific default.
    pub fn ef_or(&self, default: usize) -> usize {
        self.ef.unwrap_or(default)
    }
}

fn parse_or_die<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad value {s:?} for {what}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> BenchArgs {
        BenchArgs::from_iter(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.reps, 3);
        assert_eq!(a.divisor, 64);
        assert!(!a.quick);
        assert!(a.scale.is_none());
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--scale", "14", "--ef", "8", "--reps", "10", "--quick"]);
        assert_eq!(a.scale, Some(14));
        assert_eq!(a.ef, Some(8));
        assert_eq!(a.reps, 10);
        assert!(a.quick);
    }

    #[test]
    fn quick_caps_scale() {
        let a = parse(&["--quick", "--scale", "16"]);
        assert_eq!(a.scale_or(13), 9);
        let b = parse(&["--scale", "16"]);
        assert_eq!(b.scale_or(13), 16);
    }
}
