//! Dolan–Moré performance profiles (§5.4.5, Figure 15).
//!
//! "…the best performing algorithm for each problem is identified and
//! assigned a relative score of 1. Other algorithms are scored
//! relative to the best performing algorithm… Figure 15 shows the
//! fraction of problems an algorithm solves within a factor θ of the
//! best."

/// Performance profile of several solvers over a common problem set.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Solver names, in input order.
    pub solvers: Vec<String>,
    /// `ratios[s][p]` = time(s, p) / best time(p); `INFINITY` when the
    /// solver failed problem `p`.
    pub ratios: Vec<Vec<f64>>,
}

/// Build a profile from `times[s][p]` (seconds; `None` = failed).
pub fn build(solvers: &[&str], times: &[Vec<Option<f64>>]) -> Profile {
    assert_eq!(solvers.len(), times.len(), "one time-vector per solver");
    let nprob = times.first().map_or(0, |t| t.len());
    assert!(times.iter().all(|t| t.len() == nprob), "ragged time matrix");
    let mut ratios = vec![vec![f64::INFINITY; nprob]; solvers.len()];
    for p in 0..nprob {
        let best = times
            .iter()
            .filter_map(|t| t[p])
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            continue; // nobody solved it; all ratios stay infinite
        }
        for (s, t) in times.iter().enumerate() {
            if let Some(secs) = t[p] {
                ratios[s][p] = secs / best;
            }
        }
    }
    Profile {
        solvers: solvers.iter().map(|s| s.to_string()).collect(),
        ratios,
    }
}

impl Profile {
    /// Fraction of problems solver `s` solves within factor `theta`
    /// of the best (`theta >= 1`).
    pub fn fraction_within(&self, s: usize, theta: f64) -> f64 {
        let r = &self.ratios[s];
        if r.is_empty() {
            return 0.0;
        }
        r.iter().filter(|&&x| x <= theta).count() as f64 / r.len() as f64
    }

    /// The profile curve of solver `s` sampled at the given thetas.
    pub fn curve(&self, s: usize, thetas: &[f64]) -> Vec<f64> {
        thetas.iter().map(|&t| self.fraction_within(s, t)).collect()
    }

    /// Area-under-curve score over `thetas` (higher = better overall).
    pub fn auc(&self, s: usize, thetas: &[f64]) -> f64 {
        self.curve(s, thetas).iter().sum::<f64>() / thetas.len().max(1) as f64
    }
}

/// The theta grid the figure binaries print (1.0 to 5.0, paper x-axis).
pub fn default_thetas() -> Vec<f64> {
    (0..=40).map(|i| 1.0 + i as f64 * 0.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        // 3 problems: A wins p0 & p1, B wins p2; B fails p1.
        build(
            &["A", "B"],
            &[
                vec![Some(1.0), Some(2.0), Some(3.0)],
                vec![Some(2.0), None, Some(1.0)],
            ],
        )
    }

    #[test]
    fn winners_score_one() {
        let p = sample();
        assert_eq!(p.ratios[0][0], 1.0);
        assert_eq!(p.ratios[0][1], 1.0);
        assert_eq!(p.ratios[1][2], 1.0);
        assert_eq!(p.ratios[0][2], 3.0);
        assert!(p.ratios[1][1].is_infinite());
    }

    #[test]
    fn fractions_step_with_theta() {
        let p = sample();
        // A: within 1.0 -> 2/3; within 3.0 -> 3/3
        assert!((p.fraction_within(0, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.fraction_within(0, 3.0) - 1.0).abs() < 1e-12);
        // B: within 1.0 -> 1/3; within 2.0 -> 2/3; never 3/3 (failed p1)
        assert!((p.fraction_within(1, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.fraction_within(1, 2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.fraction_within(1, 1e9) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auc_orders_solvers() {
        let p = sample();
        let thetas = default_thetas();
        assert!(p.auc(0, &thetas) > p.auc(1, &thetas), "A dominates overall");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_rejected() {
        let _ = build(&["A", "B"], &[vec![Some(1.0)], vec![Some(1.0), Some(2.0)]]);
    }
}
