//! Evaluation-environment banner (the paper's Table 3 analogue).

use std::fmt::Write as _;

/// Human-readable description of the machine this run uses.
pub fn environment_banner(pool_threads: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# environment (paper Table 3 analogue)");
    let _ = writeln!(s, "#   arch: {}", std::env::consts::ARCH);
    let _ = writeln!(s, "#   os: {}", std::env::consts::OS);
    let _ = writeln!(
        s,
        "#   hardware threads: {}",
        spgemm_par::hardware_threads()
    );
    let _ = writeln!(s, "#   pool threads: {pool_threads}");
    let _ = writeln!(s, "#   simd probing: {}", detected_simd());
    let _ = writeln!(s, "#   memory: {}", memory_summary());
    s
}

/// Best SIMD level the HashVector kernel will use here.
pub fn detected_simd() -> &'static str {
    spgemm::algos::simd::detect().name()
}

fn memory_summary() -> String {
    match std::fs::read_to_string("/proc/meminfo") {
        Ok(text) => {
            let get = |key: &str| -> Option<u64> {
                text.lines()
                    .find(|l| l.starts_with(key))?
                    .split_whitespace()
                    .nth(1)?
                    .parse()
                    .ok()
            };
            match get("MemTotal:") {
                Some(kb) => format!(
                    "{:.1} GiB DDR (no MCDRAM: Cache mode is modeled)",
                    kb as f64 / 1048576.0
                ),
                None => "unknown".to_string(),
            }
        }
        Err(_) => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_mentions_key_facts() {
        let b = super::environment_banner(2);
        assert!(b.contains("pool threads: 2"));
        assert!(b.contains("simd probing:"));
    }

    #[test]
    fn simd_name_is_known() {
        assert!(["avx512", "avx2", "scalar"].contains(&super::detected_simd()));
    }
}
