//! Evaluation-environment banner (the paper's Table 3 analogue).

use std::fmt::Write as _;

/// Human-readable description of the machine this run uses.
pub fn environment_banner(pool_threads: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# environment (paper Table 3 analogue)");
    let _ = writeln!(s, "#   arch: {}", std::env::consts::ARCH);
    let _ = writeln!(s, "#   os: {}", std::env::consts::OS);
    let _ = writeln!(
        s,
        "#   hardware threads: {}",
        spgemm_par::hardware_threads()
    );
    let _ = writeln!(s, "#   pool threads: {pool_threads}");
    let _ = writeln!(s, "#   simd probing: {}", detected_simd());
    let _ = writeln!(s, "#   memory: {}", memory_summary());
    let _ = writeln!(s, "#   commit: {}", git_commit());
    let _ = writeln!(
        s,
        "#   tracing: {}",
        if spgemm_obs::enabled() {
            "enabled"
        } else {
            "disabled"
        }
    );
    s
}

/// The short git commit this binary was run from, so saved bench
/// output stays attributable. Honors `SPGEMM_GIT_COMMIT` (set it when
/// running outside a checkout), then asks `git`; `"unknown"` when
/// neither works.
pub fn git_commit() -> String {
    if let Ok(c) = std::env::var("SPGEMM_GIT_COMMIT") {
        let c = c.trim().to_string();
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The environment stamp as a JSON object fragment, for embedding in
/// machine-readable bench output (`--json` files). Keys: `arch`,
/// `os`, `hardware_threads`, `pool_threads`, `simd`, `commit`,
/// `tracing_enabled`.
pub fn envinfo_json(pool_threads: usize) -> String {
    format!(
        "{{\"arch\":\"{}\",\"os\":\"{}\",\"hardware_threads\":{},\
         \"pool_threads\":{},\"simd\":\"{}\",\"commit\":\"{}\",\
         \"tracing_enabled\":{}}}",
        std::env::consts::ARCH,
        std::env::consts::OS,
        spgemm_par::hardware_threads(),
        pool_threads,
        detected_simd(),
        git_commit().replace('"', ""),
        spgemm_obs::enabled()
    )
}

/// Best SIMD level the HashVector kernel will use here.
pub fn detected_simd() -> &'static str {
    spgemm::algos::simd::detect().name()
}

fn memory_summary() -> String {
    match std::fs::read_to_string("/proc/meminfo") {
        Ok(text) => {
            let get = |key: &str| -> Option<u64> {
                text.lines()
                    .find(|l| l.starts_with(key))?
                    .split_whitespace()
                    .nth(1)?
                    .parse()
                    .ok()
            };
            match get("MemTotal:") {
                Some(kb) => format!(
                    "{:.1} GiB DDR (no MCDRAM: Cache mode is modeled)",
                    kb as f64 / 1048576.0
                ),
                None => "unknown".to_string(),
            }
        }
        Err(_) => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_mentions_key_facts() {
        let b = super::environment_banner(2);
        assert!(b.contains("pool threads: 2"));
        assert!(b.contains("simd probing:"));
    }

    #[test]
    fn simd_name_is_known() {
        assert!(["avx512", "avx2", "scalar"].contains(&super::detected_simd()));
    }

    #[test]
    fn banner_stamps_commit_and_tracing() {
        let b = super::environment_banner(1);
        assert!(b.contains("commit: "));
        assert!(b.contains("tracing: "));
    }

    #[test]
    fn json_stamp_is_wellformed_fragment() {
        let j = super::envinfo_json(3);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"pool_threads\":3"));
        assert!(j.contains("\"commit\":\""));
        assert!(j.contains("\"tracing_enabled\":"));
    }
}
