//! Problem suites for the real-matrix figures (14, 15, 17): the
//! Table 2 stand-ins by default, or real `.mtx` files from a
//! directory.

use spgemm_sparse::Csr;
use std::path::Path;

/// A named problem instance.
pub struct Problem {
    /// Display name (SuiteSparse matrix name or file stem).
    pub name: String,
    /// The matrix, rows sorted.
    pub matrix: Csr<f64>,
}

/// Load the suite: real Matrix Market files when `dir` is given,
/// synthetic Table 2 stand-ins otherwise.
pub fn load(dir: Option<&Path>, divisor: usize, seed: u64) -> Vec<Problem> {
    match dir {
        Some(d) => load_matrix_market_dir(d),
        None => spgemm_gen::suite::standin_suite(divisor, seed)
            .into_iter()
            .map(|(name, matrix)| Problem {
                name: name.to_string(),
                matrix,
            })
            .collect(),
    }
}

/// Read every `*.mtx` under `dir` (non-recursive), skipping files that
/// fail to parse (with a warning), sorted by name.
pub fn load_matrix_market_dir(dir: &Path) -> Vec<Problem> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("warning: cannot read {}: {e}", dir.display());
            return out;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("mtx") {
            continue;
        }
        match spgemm_sparse::io::read_matrix_market(&path) {
            Ok(m) => out.push(Problem {
                name: path
                    .file_stem()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned(),
                matrix: m,
            }),
            Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standin_suite_loads() {
        let suite = load(None, 100_000, 1);
        assert_eq!(suite.len(), 26);
        assert!(suite.iter().all(|p| p.matrix.nnz() > 0));
    }

    #[test]
    fn mtx_dir_loads_and_skips_garbage() {
        let dir = std::env::temp_dir().join(format!("spgemm-suite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]).unwrap();
        spgemm_sparse::io::write_matrix_market(dir.join("good.mtx"), &m).unwrap();
        std::fs::write(dir.join("bad.mtx"), "not a matrix").unwrap();
        std::fs::write(dir.join("ignored.txt"), "").unwrap();
        let suite = load_matrix_market_dir(&dir);
        assert_eq!(suite.len(), 1);
        assert_eq!(suite[0].name, "good");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_warns_but_returns_empty() {
        let suite = load_matrix_market_dir(Path::new("/definitely/not/here"));
        assert!(suite.is_empty());
    }
}
