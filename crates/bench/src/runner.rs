//! Timed multiplies and MFLOPS accounting.
//!
//! The paper reports MFLOPS computed from `flop`, the number of
//! non-trivial scalar multiplications (Table 2 lists `flop(A²)`), with
//! each multiply-add counted as two floating-point operations:
//! `MFLOPS = 2 · flop / time / 10⁶`.

use spgemm::{multiply_in, Algorithm, OutputOrder};
use spgemm_par::Pool;
use spgemm_sparse::{stats, Csr, PlusTimes, SparseError};
use std::time::Instant;

/// Result of one timed kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median seconds across repetitions.
    pub secs: f64,
    /// `flop` of the product.
    pub flop: u64,
    /// Output nonzeros.
    pub nnz_out: usize,
}

impl Measurement {
    /// `2 · flop / time`, in MFLOPS.
    pub fn mflops(&self) -> f64 {
        if self.secs <= 0.0 {
            0.0
        } else {
            2.0 * self.flop as f64 / self.secs / 1e6
        }
    }

    /// Compression ratio `flop / nnz(C)` of this product.
    pub fn compression_ratio(&self) -> f64 {
        stats::compression_ratio(self.flop, self.nnz_out)
    }
}

/// Run `C = A · B` `reps` times (after one warmup), reporting the
/// median. Returns `Err` for contract violations (e.g. a sorted-only
/// kernel on unsorted input) so panels can skip invalid combinations.
pub fn time_multiply(
    a: &Csr<f64>,
    b: &Csr<f64>,
    algo: Algorithm,
    order: OutputOrder,
    pool: &Pool,
    reps: usize,
) -> Result<Measurement, SparseError> {
    let flop = stats::flop(a, b);
    // warmup + validity check
    let c = multiply_in::<PlusTimes<f64>>(a, b, algo, order, pool)?;
    let nnz_out = c.nnz();
    drop(c);
    let reps = reps.max(1);
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let c = multiply_in::<PlusTimes<f64>>(a, b, algo, order, pool)?;
        times.push(t.elapsed().as_secs_f64());
        std::hint::black_box(c.nnz());
    }
    times.sort_by(|x, y| x.total_cmp(y));
    Ok(Measurement {
        secs: times[times.len() / 2],
        flop,
        nnz_out,
    })
}

/// Format one figure row: `series label, x, MFLOPS`.
pub fn series_row(series: &str, x: impl std::fmt::Display, m: &Measurement) -> String {
    format!("{series}\t{x}\t{:.1}", m.mflops())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_math() {
        let m = Measurement {
            secs: 0.5,
            flop: 1_000_000,
            nnz_out: 250_000,
        };
        assert!((m.mflops() - 4.0).abs() < 1e-9);
        assert!((m.compression_ratio() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn time_multiply_runs_and_reports() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::Er,
            7,
            4,
            &mut spgemm_gen::rng(1),
        );
        let pool = Pool::new(2);
        let m = time_multiply(&a, &a, Algorithm::Hash, OutputOrder::Sorted, &pool, 2).unwrap();
        assert!(m.secs > 0.0);
        assert_eq!(m.flop, spgemm_sparse::stats::flop(&a, &a));
        assert!(m.nnz_out > 0);
        assert!(m.mflops() > 0.0);
    }

    #[test]
    fn contract_violation_surfaces_as_error() {
        let a = spgemm_gen::rmat::generate_kind(
            spgemm_gen::RmatKind::Er,
            6,
            4,
            &mut spgemm_gen::rng(2),
        );
        let unsorted = spgemm_gen::perm::randomize_columns(&a, &mut spgemm_gen::rng(3));
        let pool = Pool::new(1);
        let r = time_multiply(
            &unsorted,
            &unsorted,
            Algorithm::Heap,
            OutputOrder::Sorted,
            &pool,
            1,
        );
        assert!(r.is_err());
    }
}
