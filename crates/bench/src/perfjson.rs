//! Persisted bench perf trajectory: the machine-readable
//! `BENCH_<name>.json` stamp every bench binary's `--smoke` path
//! writes, plus the minimal JSON reader `spgemm-regress` uses to
//! compare a run against a committed baseline.
//!
//! The stamp is deliberately flat — one `metrics` object of numeric
//! keys — so a regression gate can diff two files key-by-key without
//! schema knowledge. Keys ending in `_ms` or `_ns` are timings
//! (lower is better); everything else is informational (counts,
//! coverages). The `env` object carries the
//! [`crate::envinfo::envinfo_json`] stamp so a trajectory of saved
//! files stays attributable to machines and commits.

use std::fmt::Write as _;
use std::path::PathBuf;

/// Schema version written into every stamp; bump on breaking shape
/// changes so `spgemm-regress` can refuse mismatched files.
pub const SCHEMA: u64 = 1;

/// Environment variable overriding the directory `BENCH_<name>.json`
/// files are written to (default: the current directory).
pub const DIR_ENV: &str = "SPGEMM_BENCH_DIR";

/// One bench run's persisted perf stamp.
pub struct PerfReport {
    name: String,
    pool_threads: usize,
    metrics: Vec<(String, f64)>,
}

impl PerfReport {
    /// A stamp for the bench binary `name` (the `<name>` in
    /// `BENCH_<name>.json`).
    pub fn new(name: &str, pool_threads: usize) -> Self {
        PerfReport {
            name: name.to_string(),
            pool_threads,
            metrics: Vec::new(),
        }
    }

    /// Record one numeric metric. Key convention: `_ms`/`_ns` suffix
    /// for timings (regression-gated, lower is better), anything else
    /// informational. Non-finite values are stored as 0 (JSON has no
    /// NaN, and a gate comparing against NaN could never fail).
    pub fn metric(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.push((key.to_string(), v));
        self
    }

    /// The stamp as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"name\":\"{}\",\"schema\":{},\"env\":{},\"metrics\":{{",
            self.name,
            SCHEMA,
            crate::envinfo::envinfo_json(self.pool_threads)
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push_str("}}\n");
        s
    }

    /// Where [`PerfReport::write`] puts the stamp:
    /// `$SPGEMM_BENCH_DIR/BENCH_<name>.json` (default `.`).
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var(DIR_ENV).unwrap_or_else(|_| ".".to_string());
        PathBuf::from(dir).join(format!("BENCH_{}.json", self.name))
    }

    /// Write the stamp to [`PerfReport::path`], returning where it
    /// landed.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// A parsed JSON value — just enough for `BENCH_*.json` files.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys kept as written).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Strict enough for round-tripping our own
/// stamps and ordinary hand-edited baselines; errors carry a byte
/// offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Decode a surrogate pair when one follows;
                            // lone surrogates become the replacement
                            // character rather than an error.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!(
                                "bad escape \\{} at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))?;
        self.pos += 4;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_parser() {
        let mut r = PerfReport::new("unit", 2);
        r.metric("loop_ms", 1.25)
            .metric("events", 42.0)
            .metric("bad", f64::NAN);
        let json = r.to_json();
        let doc = parse(&json).expect("own stamp parses");
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("unit"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_f64),
            Some(SCHEMA as f64)
        );
        let metrics = doc.get("metrics").expect("metrics object");
        assert_eq!(metrics.get("loop_ms").and_then(Json::as_f64), Some(1.25));
        assert_eq!(metrics.get("events").and_then(Json::as_f64), Some(42.0));
        assert_eq!(
            metrics.get("bad").and_then(Json::as_f64),
            Some(0.0),
            "non-finite clamps to 0"
        );
        assert!(doc.get("env").and_then(|e| e.get("arch")).is_some());
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let doc = parse(r#"{"a":[1,-2.5,3e2],"s":"q\"\\\nA😀","o":{"n":null,"b":true}}"#).unwrap();
        let a = doc.get("a").unwrap();
        assert_eq!(
            a,
            &Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(300.0)])
        );
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("q\"\\\nA😀"));
        assert_eq!(doc.get("o").unwrap().get("n"), Some(&Json::Null));
        assert_eq!(doc.get("o").unwrap().get("b"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"k\":01x}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn write_honors_dir_override() {
        let dir = std::env::temp_dir().join("spgemm-perfjson-test");
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global: set, write, restore.
        let prev = std::env::var(DIR_ENV).ok();
        std::env::set_var(DIR_ENV, &dir);
        let mut r = PerfReport::new("dirtest", 1);
        r.metric("x_ms", 3.0);
        let path = r.write().expect("writable temp dir");
        match prev {
            Some(v) => std::env::set_var(DIR_ENV, v),
            None => std::env::remove_var(DIR_ENV),
        }
        assert_eq!(path, dir.join("BENCH_dirtest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(parse(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
