//! The expression-graph IR: a small append-only DAG of matrix ops.
//!
//! An [`ExprGraph`] is *unbound* — it names input slots, not matrices
//! — so one graph describes a whole family of pipelines (every MCL
//! iteration, every AMG re-coarsening). Binding happens when an
//! [`crate::expr::ExprPlan`] compiles the graph against concrete
//! operands.
//!
//! Node ids are indices into an append-only node list, so a node's
//! operands always precede it: the node order **is** a topological
//! order, and the plan executes it front to back.

use std::sync::Arc;

/// Handle to a node of one [`ExprGraph`]. Only valid for the graph
/// that created it (checked on use).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's position in the graph's topological order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a dense-vector input slot (scaling factors) of one
/// [`ExprGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VecId(pub(crate) u32);

impl VecId {
    /// The vector slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named element-wise value map, applied entry-by-entry without
/// touching the structure. Named (rather than an arbitrary closure) so
/// node fingerprints — and therefore cross-tenant result caching in
/// `spgemm-serve` — stay well-defined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ElemMap {
    /// `|v|^r` — MCL's inflation power.
    AbsPow(f64),
    /// `v * s`.
    Scale(f64),
    /// `v + s`.
    Shift(f64),
}

impl ElemMap {
    /// Apply the map to one value.
    #[inline]
    pub fn apply(&self, v: f64) -> f64 {
        match *self {
            ElemMap::AbsPow(r) => v.abs().powf(r),
            ElemMap::Scale(s) => v * s,
            ElemMap::Shift(s) => v + s,
        }
    }

    /// `(variant tag, parameter bits)` for fingerprinting.
    fn fp_words(&self) -> (u64, u64) {
        match *self {
            ElemMap::AbsPow(r) => (1, r.to_bits()),
            ElemMap::Scale(s) => (2, s.to_bits()),
            ElemMap::Shift(s) => (3, s.to_bits()),
        }
    }
}

/// One node of the DAG. All matrix operands are [`NodeId`]s that
/// precede the node; vector operands are [`VecId`] input slots bound
/// at execution.
#[derive(Clone, Copy, Debug)]
pub enum ExprOp {
    /// Leaf: the `slot`-th matrix passed to plan/execute calls.
    Input {
        /// Position in the `inputs` array.
        slot: usize,
    },
    /// `A · B` (SpGEMM, sorted output).
    Multiply {
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// `Aᵀ`.
    Transpose {
        /// Operand.
        a: NodeId,
    },
    /// `A + B` (structural union; equal shapes).
    Add {
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// `A ∘ B` (element-wise product on the structural intersection).
    Hadamard {
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// `diag(v) · A` — scale row `i` by `v[i]`.
    ScaleRows {
        /// Operand.
        a: NodeId,
        /// Factor vector slot (length `nrows`).
        v: VecId,
    },
    /// `A · diag(v)` — scale column `j` by `v[j]`.
    ScaleCols {
        /// Operand.
        a: NodeId,
        /// Factor vector slot (length `ncols`).
        v: VecId,
    },
    /// Element-wise value map (structure unchanged).
    Map {
        /// Operand.
        a: NodeId,
        /// The map.
        f: ElemMap,
    },
    /// Column-stochastic renormalization (MCL; structure unchanged,
    /// zero-sum columns untouched).
    NormalizeCols {
        /// Operand.
        a: NodeId,
    },
}

impl ExprOp {
    /// Matrix operands of the node (0–2 of them).
    pub(crate) fn operands(&self) -> (Option<NodeId>, Option<NodeId>) {
        match *self {
            ExprOp::Input { .. } => (None, None),
            ExprOp::Multiply { a, b } | ExprOp::Add { a, b } | ExprOp::Hadamard { a, b } => {
                (Some(a), Some(b))
            }
            ExprOp::Transpose { a }
            | ExprOp::ScaleRows { a, .. }
            | ExprOp::ScaleCols { a, .. }
            | ExprOp::Map { a, .. }
            | ExprOp::NormalizeCols { a } => (Some(a), None),
        }
    }

    /// Whether the op only rewrites values in place (structure — and
    /// therefore buffer layout — identical to its operand's). These
    /// are the fusion candidates: applied as an epilogue inside the
    /// producing node's buffer when nothing else consumes it.
    pub(crate) fn is_elementwise_unary(&self) -> bool {
        matches!(
            self,
            ExprOp::ScaleRows { .. }
                | ExprOp::ScaleCols { .. }
                | ExprOp::Map { .. }
                | ExprOp::NormalizeCols { .. }
        )
    }
}

/// The DAG itself: build with the method-per-op API, then compile with
/// [`crate::expr::ExprPlan`].
///
/// ```
/// use spgemm::expr::{ElemMap, ExprGraph};
///
/// // MCL expansion + inflation: normalize_cols(|A·A|^r)
/// let mut g = ExprGraph::new();
/// let a = g.input();
/// let sq = g.multiply(a, a);
/// let inflated = g.map(sq, ElemMap::AbsPow(2.0));
/// let root = g.normalize_cols(inflated);
/// assert_eq!(g.len(), 4);
/// assert_eq!(root.index(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ExprGraph {
    nodes: Vec<ExprOp>,
    inputs: usize,
    vec_inputs: usize,
}

impl ExprGraph {
    /// An empty graph.
    pub fn new() -> Self {
        ExprGraph::default()
    }

    fn push(&mut self, op: ExprOp) -> NodeId {
        if let (Some(a), b) = op.operands() {
            assert!(
                a.index() < self.nodes.len(),
                "operand NodeId from another graph"
            );
            if let Some(b) = b {
                assert!(
                    b.index() < self.nodes.len(),
                    "operand NodeId from another graph"
                );
            }
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("graph too large"));
        self.nodes.push(op);
        id
    }

    /// Declare the next matrix input slot.
    pub fn input(&mut self) -> NodeId {
        let slot = self.inputs;
        self.inputs += 1;
        self.push(ExprOp::Input { slot })
    }

    /// Declare the next dense-vector input slot (for
    /// [`ExprGraph::scale_rows`] / [`ExprGraph::scale_cols`]).
    pub fn vec_input(&mut self) -> VecId {
        let slot = self.vec_inputs;
        self.vec_inputs += 1;
        VecId(u32::try_from(slot).expect("graph too large"))
    }

    /// `a · b`.
    pub fn multiply(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(ExprOp::Multiply { a, b })
    }

    /// `(a · b) ∘ mask` — the masked product. Compiled as the
    /// product followed by a Hadamard with the mask, so the product
    /// subexpression is shared with any other consumer and the mask
    /// application is a cached-structure, numeric-only node like every
    /// other element-wise op. (The returned id is the masked node;
    /// the intermediate product node exists in the graph.)
    pub fn masked_multiply(&mut self, a: NodeId, b: NodeId, mask: NodeId) -> NodeId {
        let product = self.multiply(a, b);
        self.hadamard(product, mask)
    }

    /// `aᵀ`.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        self.push(ExprOp::Transpose { a })
    }

    /// `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(ExprOp::Add { a, b })
    }

    /// `a ∘ b`.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(ExprOp::Hadamard { a, b })
    }

    /// `diag(v) · a`.
    pub fn scale_rows(&mut self, a: NodeId, v: VecId) -> NodeId {
        self.check_vec(v);
        self.push(ExprOp::ScaleRows { a, v })
    }

    /// `a · diag(v)`.
    pub fn scale_cols(&mut self, a: NodeId, v: VecId) -> NodeId {
        self.check_vec(v);
        self.push(ExprOp::ScaleCols { a, v })
    }

    fn check_vec(&self, v: VecId) {
        assert!(
            v.index() < self.vec_inputs,
            "VecId from another graph (slot {} of {} declared)",
            v.index(),
            self.vec_inputs
        );
    }

    /// Element-wise `f(a)`.
    pub fn map(&mut self, a: NodeId, f: ElemMap) -> NodeId {
        self.push(ExprOp::Map { a, f })
    }

    /// Column-stochastic renormalization of `a`.
    pub fn normalize_cols(&mut self, a: NodeId) -> NodeId {
        self.push(ExprOp::NormalizeCols { a })
    }

    /// The nodes, in topological (= construction) order.
    pub fn nodes(&self) -> &[ExprOp] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of matrix input slots declared.
    pub fn num_inputs(&self) -> usize {
        self.inputs
    }

    /// Number of dense-vector input slots declared.
    pub fn num_vec_inputs(&self) -> usize {
        self.vec_inputs
    }

    /// Which nodes `root` transitively depends on (including itself).
    pub fn reachable(&self, root: NodeId) -> Vec<bool> {
        assert!(root.index() < self.nodes.len(), "root from another graph");
        let mut needed = vec![false; self.nodes.len()];
        needed[root.index()] = true;
        // Operands precede their consumers, so one reverse sweep
        // propagates the whole closure.
        for i in (0..self.nodes.len()).rev() {
            if !needed[i] {
                continue;
            }
            let (a, b) = self.nodes[i].operands();
            if let Some(a) = a {
                needed[a.index()] = true;
            }
            if let Some(b) = b {
                needed[b.index()] = true;
            }
        }
        needed
    }

    /// How many *needed* nodes consume each node's value. A node with
    /// exactly one consumer and an element-wise-unary consumer is a
    /// fusion opportunity.
    pub(crate) fn consumer_counts(&self, needed: &[bool]) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for (i, op) in self.nodes.iter().enumerate() {
            if !needed[i] {
                continue;
            }
            let (a, b) = op.operands();
            if let Some(a) = a {
                counts[a.index()] += 1;
            }
            if let Some(b) = b {
                counts[b.index()] += 1;
            }
        }
        counts
    }

    /// Per-node fingerprints: a 64-bit identity of each node's
    /// *computation* — op kind, op parameters, operand fingerprints,
    /// and the caller-supplied leaf fingerprint of each input slot.
    /// `multiply_salt` is mixed into every `Multiply` node; pass the
    /// kernel/options identity there, since different kernels produce
    /// different value *bytes* for the same product.
    ///
    /// With structural leaf fingerprints this identifies each node's
    /// sparsity pattern lineage (what [`crate::expr::ExprPlan`] caches
    /// on); with value-identity leaves (e.g. a store's registration
    /// version) it identifies the node's *result*, which is what
    /// `spgemm-serve`'s cross-tenant subexpression cache keys on.
    pub fn node_fingerprints(
        &self,
        leaf_fp: impl Fn(usize) -> u64,
        multiply_salt: u64,
    ) -> Vec<u64> {
        let mut fps = Vec::with_capacity(self.nodes.len());
        for op in &self.nodes {
            let fp = match *op {
                ExprOp::Input { slot } => fnv64(&[0x01, leaf_fp(slot)]),
                ExprOp::Multiply { a, b } => {
                    fnv64(&[0x02, multiply_salt, fps[a.index()], fps[b.index()]])
                }
                ExprOp::Transpose { a } => fnv64(&[0x03, fps[a.index()]]),
                ExprOp::Add { a, b } => fnv64(&[0x04, fps[a.index()], fps[b.index()]]),
                ExprOp::Hadamard { a, b } => fnv64(&[0x05, fps[a.index()], fps[b.index()]]),
                ExprOp::ScaleRows { a, v } => fnv64(&[0x06, fps[a.index()], v.index() as u64]),
                ExprOp::ScaleCols { a, v } => fnv64(&[0x07, fps[a.index()], v.index() as u64]),
                ExprOp::Map { a, f } => {
                    let (tag, bits) = f.fp_words();
                    fnv64(&[0x08, fps[a.index()], tag, bits])
                }
                ExprOp::NormalizeCols { a } => fnv64(&[0x09, fps[a.index()]]),
            };
            fps.push(fp);
        }
        fps
    }
}

/// A shared, immutable graph plus its designated output node — the
/// unit `spgemm-serve`'s expression jobs carry.
#[derive(Clone, Debug)]
pub struct ExprSpec {
    /// The DAG.
    pub graph: Arc<ExprGraph>,
    /// The node whose value the pipeline returns.
    pub root: NodeId,
}

impl ExprSpec {
    /// Wrap a finished graph and its output node.
    pub fn new(graph: ExprGraph, root: NodeId) -> Self {
        assert!(root.index() < graph.len(), "root from another graph");
        ExprSpec {
            graph: Arc::new(graph),
            root,
        }
    }
}

/// FNV-1a over a word sequence (byte-wise, like
/// [`spgemm_sparse::Csr::structure_fingerprint`]) — the mixer behind
/// every expression fingerprint. Public so consumers composing keys
/// *from* node fingerprints (e.g. `spgemm-serve`'s batch keys) stay
/// bit-identical with the layer that produced them.
pub fn fnv64(words: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_topologically_ordered() {
        let mut g = ExprGraph::new();
        let a = g.input();
        let b = g.input();
        let ab = g.multiply(a, b);
        let t = g.transpose(b);
        let s = g.add(ab, t);
        assert!(a.index() < ab.index() && b.index() < ab.index());
        assert!(t.index() < s.index());
        assert_eq!(g.num_inputs(), 2);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn masked_multiply_desugars_to_product_plus_hadamard() {
        let mut g = ExprGraph::new();
        let a = g.input();
        let m = g.input();
        let masked = g.masked_multiply(a, a, m);
        assert_eq!(g.len(), 4);
        assert!(matches!(g.nodes()[masked.index()], ExprOp::Hadamard { .. }));
        assert!(matches!(
            g.nodes()[masked.index() - 1],
            ExprOp::Multiply { .. }
        ));
    }

    #[test]
    fn reachability_and_consumers() {
        let mut g = ExprGraph::new();
        let a = g.input();
        let sq = g.multiply(a, a);
        let dead = g.transpose(a); // not reachable from root
        let root = g.map(sq, ElemMap::Scale(2.0));
        let needed = g.reachable(root);
        assert!(needed[a.index()] && needed[sq.index()] && needed[root.index()]);
        assert!(!needed[dead.index()]);
        let consumers = g.consumer_counts(&needed);
        assert_eq!(consumers[sq.index()], 1, "map is the only consumer");
        assert_eq!(consumers[a.index()], 2, "a feeds the multiply twice");
        assert_eq!(consumers[dead.index()], 0);
    }

    #[test]
    #[should_panic(expected = "VecId from another graph")]
    fn foreign_vec_id_is_rejected() {
        let mut g1 = ExprGraph::new();
        let v = g1.vec_input();
        let mut g2 = ExprGraph::new();
        let a = g2.input();
        let _ = g2.scale_rows(a, v); // g2 declared no vec inputs
    }

    #[test]
    fn fingerprints_separate_ops_params_and_leaves() {
        let build = |r: f64| {
            let mut g = ExprGraph::new();
            let a = g.input();
            let sq = g.multiply(a, a);
            g.map(sq, ElemMap::AbsPow(r));
            g
        };
        let g1 = build(2.0);
        let g2 = build(3.0);
        let f1 = g1.node_fingerprints(|_| 7, 0);
        let f2 = g2.node_fingerprints(|_| 7, 0);
        assert_eq!(f1[0], f2[0], "same leaf");
        assert_eq!(f1[1], f2[1], "same product");
        assert_ne!(f1[2], f2[2], "inflation exponent differs");
        // leaf identity flows through
        let f3 = g1.node_fingerprints(|_| 8, 0);
        assert_ne!(f1[1], f3[1]);
        // kernel salt reaches products but not leaves
        let f4 = g1.node_fingerprints(|_| 7, 1);
        assert_eq!(f1[0], f4[0]);
        assert_ne!(f1[1], f4[1]);
    }
}
