//! Expression-graph plans: fuse multi-op sparse pipelines.
//!
//! The paper's real workloads are never a single product — MCL is
//! normalize → A² → inflate → prune, AMG coarsening is `Pᵀ(A·P)`,
//! triangle counting is a masked `L·U` — yet a plain SpGEMM API plans
//! and caches one `C = A · B` at a time, materializing every
//! intermediate and re-stitching the surrounding element-wise ops by
//! hand. This module closes that gap with a two-piece design:
//!
//! * [`ExprGraph`] — a small DAG IR over matrix ops: [`Multiply`],
//!   masked multiply, [`Transpose`], [`Add`], [`Hadamard`],
//!   [`ScaleRows`]/[`ScaleCols`], element-wise [`Map`] (inflation) and
//!   [`NormalizeCols`] (MCL renormalization). Nodes are appended in
//!   topological order and reference unbound input *slots*.
//! * [`ExprPlan`] — the inspector–executor compiler: binds the graph
//!   to concrete operands once (per-node [`crate::SpgemmPlan`]s,
//!   cached transpose/merge structures, pooled intermediate buffers,
//!   and epilogue **fusion** of single-consumer element-wise nodes
//!   into their producer's numeric phase), then re-executes the whole
//!   pipeline numeric-only with **zero intermediate allocations** in
//!   steady state. [`ExprCache`] layers input fingerprinting on top
//!   for pipelines whose pattern drifts between rounds.
//!
//! The application pipelines in `spgemm-apps` (`mcl`, `amg`,
//! `triangles`) are thin wrappers over shared expression plans, and
//! `spgemm-serve` accepts whole graphs as jobs (`ExprRequest`) with
//! cross-tenant subexpression result caching keyed by the node
//! fingerprints defined here.
//!
//! [`Multiply`]: ExprGraph::multiply
//! [`Transpose`]: ExprGraph::transpose
//! [`Add`]: ExprGraph::add
//! [`Hadamard`]: ExprGraph::hadamard
//! [`ScaleRows`]: ExprGraph::scale_rows
//! [`ScaleCols`]: ExprGraph::scale_cols
//! [`Map`]: ExprGraph::map
//! [`NormalizeCols`]: ExprGraph::normalize_cols

mod delta;
mod graph;
mod plan;

pub use delta::{touched_cols, DeltaPlan, DeltaReport, NodeDelta};
pub use graph::{fnv64, ElemMap, ExprGraph, ExprOp, ExprSpec, NodeId, VecId};
pub use plan::{ExprCache, ExprCacheStats, ExprPlan};
