//! Compiling an [`ExprGraph`] into a reusable [`ExprPlan`].
//!
//! The plan is the inspector–executor split of [`crate::SpgemmPlan`]
//! lifted to whole pipelines:
//!
//! * **Bind once** ([`ExprPlan::new_in`]): walk the DAG in topological
//!   order against concrete inputs, building per-`Multiply` cached
//!   [`SpgemmPlan`]s (each owning its pooled per-thread accumulators),
//!   cached transpose structures (row pointers, column indices and the
//!   value-gather permutation), cached merge/intersection *provenance*
//!   for `Add`/`Hadamard` (per output entry, the source indices into
//!   each operand's value array), and one reused output buffer per
//!   materialized node. Element-wise unary nodes (`Map`,
//!   `ScaleRows`/`ScaleCols`, `NormalizeCols`) whose operand has no
//!   other consumer are **fused**: they run as an in-place epilogue on
//!   the producing node's buffer and materialize nothing.
//! * **Execute many** ([`ExprPlan::execute_into_in`]): with inputs of
//!   the *same structure* (values free to change), every node is a
//!   numeric-only refill of its cached buffer — `Multiply` via
//!   [`SpgemmPlan::execute_into_in`], `Transpose` via the cached
//!   gather permutation, `Add`/`Hadamard` via the cached provenance
//!   arrays, unary maps via copy-and-transform (or in place when
//!   fused). Steady state performs **zero heap allocations** for
//!   intermediates (see `crates/core/tests/expr_zero_alloc.rs`).
//! * **Rebind on drift** ([`ExprPlan::rebind_in`]): when the input
//!   pattern changes, cached structures are recomputed while every
//!   `Multiply` node keeps its pooled accumulators
//!   ([`SpgemmPlan::rebind_in`]). [`ExprCache`] automates the
//!   hit/rebind decision by fingerprinting the inputs, like
//!   [`crate::PlanCache`] does for single products.

use crate::expr::graph::{fnv64 as fnv, ElemMap, ExprGraph, ExprOp, NodeId};
use crate::{Algorithm, OutputOrder, SpgemmPlan};
use spgemm_obs as obs;
use spgemm_par::{Pool, WorkspaceStats};
use spgemm_sparse::{ops, ColIdx, Csr, PlusTimes, SparseError};

/// The semiring the expression layer runs: ordinary `f64` arithmetic,
/// the setting of every pipeline the paper cites (MCL, AMG, triangle
/// counting over `f64` wedge counts).
type P = PlusTimes<f64>;

/// Absent-operand sentinel in [`NodeState::Add`] provenance arrays.
const ABSENT: usize = usize::MAX;

/// Where a node's current value lives.
#[derive(Clone, Copy, Debug)]
enum ValueLoc {
    /// The `slot`-th external input matrix.
    Input(usize),
    /// The buffer of node `k` (the node itself, or — for fused
    /// element-wise nodes — the producer whose buffer they rewrite).
    Buf(usize),
}

/// What an element-wise unary node does to its target values.
enum UnaryKind {
    ScaleRows(usize),
    ScaleCols(usize),
    Map(ElemMap),
    /// Carries the reused column-sum scratch.
    NormalizeCols(Vec<f64>),
}

/// Per-node cached execution state.
enum NodeState {
    /// Unreachable from the root: never touched.
    Skipped,
    Input,
    Multiply {
        a: ValueLoc,
        b: ValueLoc,
        /// Boxed: a plan is an order of magnitude larger than any
        /// other node's state, and most nodes are not multiplies.
        plan: Box<SpgemmPlan<P>>,
    },
    Transpose {
        a: ValueLoc,
        /// `out.vals[k] = operand.vals[val_order[k]]`.
        val_order: Vec<usize>,
    },
    Add {
        a: ValueLoc,
        b: ValueLoc,
        /// Index into the operand's value array, [`ABSENT`] when the
        /// output entry has no source on that side.
        a_src: Vec<usize>,
        b_src: Vec<usize>,
    },
    Hadamard {
        a: ValueLoc,
        b: ValueLoc,
        /// Intersection provenance: both always present.
        a_idx: Vec<usize>,
        b_idx: Vec<usize>,
    },
    Unary {
        a: ValueLoc,
        kind: UnaryKind,
        /// Fused: rewrite the producer's buffer in place (the node's
        /// value *is* that buffer). Unfused: copy into an own buffer.
        fused: bool,
    },
}

/// A compiled, reusable execution plan for one expression DAG over a
/// fixed family of input structures.
///
/// ```
/// use spgemm::expr::{ElemMap, ExprGraph, ExprPlan};
/// use spgemm::Algorithm;
/// use spgemm_par::Pool;
/// use spgemm_sparse::Csr;
///
/// // normalize_cols(|A·A|^2) — an MCL expansion+inflation step.
/// let mut g = ExprGraph::new();
/// let a = g.input();
/// let sq = g.multiply(a, a);
/// let inf = g.map(sq, ElemMap::AbsPow(2.0));
/// let root = g.normalize_cols(inf);
///
/// let m = Csr::<f64>::identity(16);
/// let pool = Pool::new(2);
/// let mut plan = ExprPlan::new_in(&g, root, &[&m], &[], Algorithm::Hash, &pool)?;
/// assert_eq!(plan.fused_nodes(), 2, "map and normalize fuse into the product");
///
/// let mut out = Csr::<f64>::zero(0, 0);
/// for _ in 0..4 {
///     plan.execute_into_in(&[&m], &[], &mut out, &pool)?; // numeric-only
/// }
/// assert_eq!(out.nnz(), 16);
/// # Ok::<(), spgemm_sparse::SparseError>(())
/// ```
pub struct ExprPlan {
    graph: ExprGraph,
    root: usize,
    algo: Algorithm,
    nthreads: usize,
    /// `(nrows, ncols, nnz)` of each input at bind time.
    input_shapes: Vec<(usize, usize, usize)>,
    /// Structure fingerprints of each input at bind time.
    input_sigs: Vec<u64>,
    /// Length of each vector input at bind time.
    vec_lens: Vec<usize>,
    /// Per-node computation fingerprints over the bound structures.
    node_fps: Vec<u64>,
    /// Whole-DAG structure fingerprint.
    dag_fp: u64,
    needed: Vec<bool>,
    states: Vec<NodeState>,
    /// One (possibly unused) value buffer per node.
    bufs: Vec<Csr<f64>>,
    value_of: Vec<ValueLoc>,
    /// Whether the last bind pass completed. A failed
    /// [`ExprPlan::rebind_in`] leaves node states half-rebound:
    /// until a later rebind succeeds, the plan refuses to execute and
    /// [`ExprPlan::matches_inputs`] reports `false` (so caches take
    /// the rebind path, never the stale-hit path).
    bound: bool,
}

fn resolve<'a>(loc: ValueLoc, inputs: &[&'a Csr<f64>], head: &'a [Csr<f64>]) -> &'a Csr<f64> {
    match loc {
        ValueLoc::Input(s) => inputs[s],
        ValueLoc::Buf(k) => &head[k],
    }
}

/// Overwrite `out` with a copy of `src`, reusing `out`'s allocations.
fn write_csr(src: &Csr<f64>, out: &mut Csr<f64>) {
    out.prepare_overwrite(src.nrows(), src.ncols(), src.nnz(), 0.0, src.is_sorted());
    let (rp, cl, vl) = out.raw_parts_mut();
    rp.copy_from_slice(src.rpts());
    cl.copy_from_slice(src.cols());
    vl.copy_from_slice(src.vals());
}

/// Apply an element-wise unary transform to `target`'s values in
/// place. `vecs` supplies scaling factors; lengths were validated at
/// bind time.
fn apply_unary(
    kind: &mut UnaryKind,
    target: &mut Csr<f64>,
    vecs: &[&[f64]],
) -> Result<(), SparseError> {
    match kind {
        UnaryKind::Map(f) => {
            let f = *f;
            for v in target.raw_parts_mut().2 {
                *v = f.apply(*v);
            }
        }
        UnaryKind::ScaleRows(slot) => {
            let factors = vecs[*slot];
            if factors.len() != target.nrows() {
                return Err(SparseError::ShapeMismatch {
                    left: target.shape(),
                    right: (factors.len(), 0),
                    op: "expr scale_rows",
                });
            }
            let nrows = target.nrows();
            let (rp, _, vl) = target.raw_parts_mut();
            for i in 0..nrows {
                let f = factors[i];
                for v in &mut vl[rp[i]..rp[i + 1]] {
                    *v *= f;
                }
            }
        }
        UnaryKind::ScaleCols(slot) => {
            let factors = vecs[*slot];
            if factors.len() != target.ncols() {
                return Err(SparseError::ShapeMismatch {
                    left: target.shape(),
                    right: (factors.len(), 0),
                    op: "expr scale_cols",
                });
            }
            let (_, cl, vl) = target.raw_parts_mut();
            for (v, &c) in vl.iter_mut().zip(cl.iter()) {
                *v *= factors[c as usize];
            }
        }
        UnaryKind::NormalizeCols(colsum) => {
            let ncols = target.ncols();
            let (_, cl, vl) = target.raw_parts_mut();
            ops::normalize_columns_values(ncols, cl, vl, colsum);
        }
    }
    Ok(())
}

impl ExprPlan {
    /// Compile `graph` rooted at `root` against concrete operands on
    /// the process-global pool. See [`ExprPlan::new_in`].
    pub fn new(
        graph: &ExprGraph,
        root: NodeId,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        algo: Algorithm,
    ) -> Result<Self, SparseError> {
        Self::new_in(graph, root, inputs, vecs, algo, spgemm_par::global_pool())
    }

    /// Compile `graph` rooted at `root` against concrete operands: the
    /// bind pass plans every reachable node, sizes every buffer, and
    /// materializes the pipeline's values once. `algo` selects the
    /// SpGEMM kernel of every `Multiply` node (`Auto` resolves per
    /// node from its operands' structure); multiply outputs are always
    /// sorted, and all matrix inputs must be sorted.
    pub fn new_in(
        graph: &ExprGraph,
        root: NodeId,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        algo: Algorithm,
        pool: &Pool,
    ) -> Result<Self, SparseError> {
        assert!(root.index() < graph.len(), "root from another graph");
        Self::validate_binding(graph, inputs, vecs)?;
        let needed = graph.reachable(root);
        let consumers = graph.consumer_counts(&needed);
        // Value placement + fusion: an element-wise unary node whose
        // operand is a materialized buffer nobody else reads rewrites
        // that buffer in place and owns no buffer of its own.
        let mut value_of: Vec<ValueLoc> = Vec::with_capacity(graph.len());
        for (i, op) in graph.nodes().iter().enumerate() {
            let loc = if !needed[i] {
                ValueLoc::Buf(i)
            } else {
                match op {
                    ExprOp::Input { slot } => ValueLoc::Input(*slot),
                    op if op.is_elementwise_unary() => {
                        let a = op.operands().0.expect("unary has an operand").index();
                        match value_of[a] {
                            ValueLoc::Buf(owner) if consumers[a] == 1 => ValueLoc::Buf(owner),
                            _ => ValueLoc::Buf(i),
                        }
                    }
                    _ => ValueLoc::Buf(i),
                }
            };
            value_of.push(loc);
        }
        let input_sigs: Vec<u64> = inputs.iter().map(|m| m.structure_fingerprint()).collect();
        let node_fps = graph.node_fingerprints(|slot| input_sigs[slot], algo as u64);
        let dag_fp = fnv(&[node_fps[root.index()], graph.len() as u64]);
        let mut plan = ExprPlan {
            graph: graph.clone(),
            root: root.index(),
            algo,
            nthreads: pool.nthreads(),
            input_shapes: inputs
                .iter()
                .map(|m| (m.nrows(), m.ncols(), m.nnz()))
                .collect(),
            input_sigs,
            vec_lens: vecs.iter().map(|v| v.len()).collect(),
            node_fps,
            dag_fp,
            needed,
            states: std::iter::repeat_with(|| NodeState::Skipped)
                .take(graph.len())
                .collect(),
            bufs: std::iter::repeat_with(|| Csr::zero(0, 0))
                .take(graph.len())
                .collect(),
            value_of,
            bound: false,
        };
        plan.bind(inputs, vecs, pool)?;
        plan.bound = true;
        Ok(plan)
    }

    fn validate_binding(
        graph: &ExprGraph,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
    ) -> Result<(), SparseError> {
        if inputs.len() != graph.num_inputs() || vecs.len() != graph.num_vec_inputs() {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "expression graph declares {} matrix and {} vector inputs; \
                     got {} and {}",
                    graph.num_inputs(),
                    graph.num_vec_inputs(),
                    inputs.len(),
                    vecs.len()
                ),
            });
        }
        if inputs.iter().any(|m| !m.is_sorted()) {
            return Err(SparseError::Unsorted { op: "expr plan" });
        }
        Ok(())
    }

    /// Re-plan for inputs whose *structure* changed, keeping every
    /// `Multiply` node's pooled per-thread accumulators and every
    /// buffer's allocation where capacities allow. Values are
    /// recomputed as part of rebinding.
    pub fn rebind_in(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        pool: &Pool,
    ) -> Result<(), SparseError> {
        Self::validate_binding(&self.graph, inputs, vecs)?;
        self.input_shapes = inputs
            .iter()
            .map(|m| (m.nrows(), m.ncols(), m.nnz()))
            .collect();
        self.input_sigs = inputs.iter().map(|m| m.structure_fingerprint()).collect();
        self.vec_lens = vecs.iter().map(|v| v.len()).collect();
        self.node_fps = self
            .graph
            .node_fingerprints(|slot| self.input_sigs[slot], self.algo as u64);
        self.dag_fp = fnv(&[self.node_fps[self.root], self.graph.len() as u64]);
        self.nthreads = pool.nthreads();
        // Half-rebound states must never serve a hit or execute: mark
        // the plan unbound until the bind pass completes.
        self.bound = false;
        self.bind(inputs, vecs, pool)?;
        self.bound = true;
        Ok(())
    }

    /// The bind pass: (re)build every reachable node's cached
    /// structure and materialize its value. Existing `Multiply` plans
    /// are rebound in place so their workspace pools survive.
    fn bind(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        pool: &Pool,
    ) -> Result<(), SparseError> {
        let _g = obs::span!("expr", "expr.bind");
        let algo = self.algo;
        for i in 0..self.graph.len() {
            if !self.needed[i] {
                self.states[i] = NodeState::Skipped;
                continue;
            }
            let op = self.graph.nodes()[i];
            let (head, tail) = self.bufs.split_at_mut(i);
            let me = &mut tail[0];
            let prev = std::mem::replace(&mut self.states[i], NodeState::Skipped);
            let state = match op {
                ExprOp::Input { .. } => NodeState::Input,
                ExprOp::Multiply { a, b } => {
                    let (va, vb) = (self.value_of[a.index()], self.value_of[b.index()]);
                    let (ar, br) = (resolve(va, inputs, head), resolve(vb, inputs, head));
                    let plan = match prev {
                        NodeState::Multiply { plan: mut p, .. } => {
                            p.rebind_in(ar, br, pool)?;
                            p
                        }
                        _ => Box::new(SpgemmPlan::new_in(ar, br, algo, OutputOrder::Sorted, pool)?),
                    };
                    // One-phase kernels defer symbolic to this first
                    // execution; afterwards every node is two-phase-
                    // shaped for the executor.
                    plan.execute_into_in(ar, br, me, pool)?;
                    NodeState::Multiply { a: va, b: vb, plan }
                }
                ExprOp::Transpose { a } => {
                    let va = self.value_of[a.index()];
                    let ar = resolve(va, inputs, head);
                    let (rpts, cols, val_order) = ops::transpose_structure(ar);
                    me.prepare_overwrite(ar.ncols(), ar.nrows(), val_order.len(), 0.0, true);
                    let (rp, cl, vl) = me.raw_parts_mut();
                    rp.copy_from_slice(&rpts);
                    cl.copy_from_slice(&cols);
                    let av = ar.vals();
                    for (dst, &s) in vl.iter_mut().zip(&val_order) {
                        *dst = av[s];
                    }
                    NodeState::Transpose { a: va, val_order }
                }
                ExprOp::Add { a, b } => {
                    let (va, vb) = (self.value_of[a.index()], self.value_of[b.index()]);
                    let (ar, br) = (resolve(va, inputs, head), resolve(vb, inputs, head));
                    let (a_src, b_src) = bind_add(ar, br, me)?;
                    NodeState::Add {
                        a: va,
                        b: vb,
                        a_src,
                        b_src,
                    }
                }
                ExprOp::Hadamard { a, b } => {
                    let (va, vb) = (self.value_of[a.index()], self.value_of[b.index()]);
                    let (ar, br) = (resolve(va, inputs, head), resolve(vb, inputs, head));
                    let (a_idx, b_idx) = bind_hadamard(ar, br, me)?;
                    NodeState::Hadamard {
                        a: va,
                        b: vb,
                        a_idx,
                        b_idx,
                    }
                }
                ExprOp::ScaleRows { a, v } => {
                    self.bind_unary(i, a, UnaryKind::ScaleRows(v.index()), inputs, vecs)?
                }
                ExprOp::ScaleCols { a, v } => {
                    self.bind_unary(i, a, UnaryKind::ScaleCols(v.index()), inputs, vecs)?
                }
                ExprOp::Map { a, f } => self.bind_unary(i, a, UnaryKind::Map(f), inputs, vecs)?,
                ExprOp::NormalizeCols { a } => {
                    let colsum = match prev {
                        NodeState::Unary {
                            kind: UnaryKind::NormalizeCols(cs),
                            ..
                        } => cs,
                        _ => Vec::new(),
                    };
                    self.bind_unary(i, a, UnaryKind::NormalizeCols(colsum), inputs, vecs)?
                }
            };
            self.states[i] = state;
        }
        // Fusion-savings census: how many elementwise nodes this bind
        // folded into their producers, and the buffer bytes that
        // never materialized because of it.
        if obs::enabled() {
            static FUSED_NODES: obs::CounterSite =
                obs::CounterSite::new("expr", "expr.fused_nodes");
            static FUSED_BYTES: obs::CounterSite =
                obs::CounterSite::new("expr", "expr.fused_bytes_eliminated");
            FUSED_NODES.add(self.fused_nodes() as u64);
            FUSED_BYTES.add(self.fused_bytes_eliminated() as u64);
        }
        Ok(())
    }

    /// Bind one element-wise unary node: in place on the owner buffer
    /// when fused, copy-then-transform into its own buffer otherwise.
    fn bind_unary(
        &mut self,
        i: usize,
        a: NodeId,
        mut kind: UnaryKind,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
    ) -> Result<NodeState, SparseError> {
        let va = self.value_of[a.index()];
        let fused = match (self.value_of[i], va) {
            (ValueLoc::Buf(mine), ValueLoc::Buf(theirs)) => mine == theirs && mine != i,
            _ => false,
        };
        if fused {
            let ValueLoc::Buf(owner) = va else {
                unreachable!()
            };
            apply_unary(&mut kind, &mut self.bufs[owner], vecs)?;
        } else {
            let (head, tail) = self.bufs.split_at_mut(i);
            let me = &mut tail[0];
            write_csr(resolve(va, inputs, head), me);
            apply_unary(&mut kind, me, vecs)?;
        }
        Ok(NodeState::Unary { a: va, kind, fused })
    }

    /// The numeric-only pass plus the root copy: the steady-state
    /// executor (global pool).
    pub fn execute_into(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        out: &mut Csr<f64>,
    ) -> Result<(), SparseError> {
        self.execute_into_in(inputs, vecs, out, spgemm_par::global_pool())
    }

    /// Numeric-only re-execution of the whole pipeline into `out`,
    /// reusing every cached structure, pooled accumulator and
    /// intermediate buffer: with same-structure inputs (values free to
    /// differ) and a warmed `out`, this performs **zero heap
    /// allocations**.
    pub fn execute_into_in(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        out: &mut Csr<f64>,
        pool: &Pool,
    ) -> Result<(), SparseError> {
        self.check(inputs, vecs, pool)?;
        self.run_numeric(inputs, vecs, pool)?;
        let src = match self.value_of[self.root] {
            ValueLoc::Input(s) => inputs[s],
            ValueLoc::Buf(k) => &self.bufs[k],
        };
        write_csr(src, out);
        Ok(())
    }

    /// [`ExprPlan::execute_into_in`] into a fresh matrix.
    pub fn execute_in(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        pool: &Pool,
    ) -> Result<Csr<f64>, SparseError> {
        let mut out = Csr::zero(0, 0);
        self.execute_into_in(inputs, vecs, &mut out, pool)?;
        Ok(out)
    }

    /// Copy the root value computed by the most recent bind/execute
    /// into `out` without re-running anything. Errors if the root is a
    /// bare input node (read the input directly instead).
    pub fn root_into(&self, out: &mut Csr<f64>) -> Result<(), SparseError> {
        if !self.bound {
            return Err(SparseError::PlanMismatch {
                detail: "expression plan is unbound after a failed rebind; \
                         its root value is stale"
                    .into(),
            });
        }
        match self.value_of[self.root] {
            ValueLoc::Buf(k) => {
                write_csr(&self.bufs[k], out);
                Ok(())
            }
            ValueLoc::Input(_) => Err(SparseError::PlanMismatch {
                detail: "expression root is a bare input; read it directly".into(),
            }),
        }
    }

    /// Cheap per-execute guards (shapes, nnz, sortedness, vector
    /// lengths, pool width). Full structural fingerprints are *not*
    /// recomputed here — that is [`ExprPlan::matches_inputs`]'s job,
    /// which [`ExprCache`] calls per multiply.
    fn check(&self, inputs: &[&Csr<f64>], vecs: &[&[f64]], pool: &Pool) -> Result<(), SparseError> {
        if !self.bound {
            return Err(SparseError::PlanMismatch {
                detail: "expression plan is unbound after a failed rebind; \
                         rebind it (or rebuild) before executing"
                    .into(),
            });
        }
        Self::validate_binding(&self.graph, inputs, vecs)?;
        for (k, (m, planned)) in inputs.iter().zip(&self.input_shapes).enumerate() {
            if (m.nrows(), m.ncols(), m.nnz()) != *planned {
                return Err(SparseError::PlanMismatch {
                    detail: format!(
                        "input {k}: {}x{} nnz={} differs from planned {}x{} nnz={}; \
                         rebind the expression plan",
                        m.nrows(),
                        m.ncols(),
                        m.nnz(),
                        planned.0,
                        planned.1,
                        planned.2
                    ),
                });
            }
        }
        for (k, (v, planned)) in vecs.iter().zip(&self.vec_lens).enumerate() {
            if v.len() != *planned {
                return Err(SparseError::PlanMismatch {
                    detail: format!(
                        "vector input {k}: length {} differs from planned {planned}",
                        v.len()
                    ),
                });
            }
        }
        if pool.nthreads() != self.nthreads {
            return Err(SparseError::PlanMismatch {
                detail: format!(
                    "expression plan sized for {} threads but pool has {}",
                    self.nthreads,
                    pool.nthreads()
                ),
            });
        }
        Ok(())
    }

    /// Numeric refill of every reachable node, in topological order.
    fn run_numeric(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        pool: &Pool,
    ) -> Result<(), SparseError> {
        for i in 0..self.graph.len() {
            let (head, tail) = self.bufs.split_at_mut(i);
            match &mut self.states[i] {
                NodeState::Skipped | NodeState::Input => {}
                NodeState::Multiply { a, b, plan } => {
                    let _g = obs::span!("expr", "expr.multiply");
                    let (ar, br) = (resolve(*a, inputs, head), resolve(*b, inputs, head));
                    plan.execute_into_in(ar, br, &mut tail[0], pool)?;
                }
                NodeState::Transpose { a, val_order } => {
                    let _g = obs::span!("expr", "expr.transpose");
                    let av = resolve(*a, inputs, head).vals();
                    for (dst, &s) in tail[0].raw_parts_mut().2.iter_mut().zip(&*val_order) {
                        *dst = av[s];
                    }
                }
                NodeState::Add { a, b, a_src, b_src } => {
                    let _g = obs::span!("expr", "expr.add");
                    let (av, bv) = (
                        resolve(*a, inputs, head).vals(),
                        resolve(*b, inputs, head).vals(),
                    );
                    let vl = tail[0].raw_parts_mut().2;
                    for (k, dst) in vl.iter_mut().enumerate() {
                        let (sa, sb) = (a_src[k], b_src[k]);
                        *dst = if sa == ABSENT {
                            bv[sb]
                        } else if sb == ABSENT {
                            av[sa]
                        } else {
                            av[sa] + bv[sb]
                        };
                    }
                }
                NodeState::Hadamard { a, b, a_idx, b_idx } => {
                    let _g = obs::span!("expr", "expr.hadamard");
                    let (av, bv) = (
                        resolve(*a, inputs, head).vals(),
                        resolve(*b, inputs, head).vals(),
                    );
                    let vl = tail[0].raw_parts_mut().2;
                    for (k, dst) in vl.iter_mut().enumerate() {
                        *dst = av[a_idx[k]] * bv[b_idx[k]];
                    }
                }
                NodeState::Unary { a, kind, fused } => {
                    let _g = obs::span!("expr", "expr.unary");
                    if *fused {
                        let ValueLoc::Buf(owner) = *a else {
                            unreachable!("fused unary over an input")
                        };
                        apply_unary(kind, &mut head[owner], vecs)?;
                    } else {
                        let me = &mut tail[0];
                        let src = resolve(*a, inputs, head);
                        me.raw_parts_mut().2.copy_from_slice(src.vals());
                        apply_unary(kind, me, vecs)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether `inputs` carry exactly the structures this plan was
    /// bound to (shape, nnz and full structure fingerprint per input —
    /// `O(nnz)`; values are free to differ).
    pub fn matches_inputs(&self, inputs: &[&Csr<f64>]) -> bool {
        self.bound
            && inputs.len() == self.input_shapes.len()
            && inputs
                .iter()
                .zip(&self.input_shapes)
                .all(|(m, planned)| (m.nrows(), m.ncols(), m.nnz()) == *planned)
            && inputs
                .iter()
                .zip(&self.input_sigs)
                .all(|(m, sig)| m.structure_fingerprint() == *sig)
    }

    /// The input slots whose structures drifted from what this plan
    /// was bound to — empty exactly when
    /// [`ExprPlan::matches_inputs`] is `true`. An unbound plan or a
    /// wrong input *count* reports every slot. Callers use this to
    /// name the offending operand in a `PlanMismatch` instead of
    /// reporting a generic drift.
    pub fn mismatched_inputs(&self, inputs: &[&Csr<f64>]) -> Vec<usize> {
        if !self.bound || inputs.len() != self.input_shapes.len() {
            return (0..self.input_shapes.len().max(inputs.len())).collect();
        }
        inputs
            .iter()
            .enumerate()
            .filter(|(slot, m)| {
                (m.nrows(), m.ncols(), m.nnz()) != self.input_shapes[*slot]
                    || m.structure_fingerprint() != self.input_sigs[*slot]
            })
            .map(|(slot, _)| slot)
            .collect()
    }

    /// The kernel every `Multiply` node was requested with.
    pub fn algorithm(&self) -> Algorithm {
        self.algo
    }

    /// Worker-thread count the plan is sized for.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Whole-DAG structure fingerprint: the root node's computation
    /// fingerprint over the bound input structures.
    pub fn fingerprint(&self) -> u64 {
        self.dag_fp
    }

    /// Per-node computation fingerprints over the bound structures
    /// (see [`ExprGraph::node_fingerprints`]).
    pub fn node_fingerprints(&self) -> &[u64] {
        &self.node_fps
    }

    /// Number of element-wise nodes fused into their producer's
    /// numeric phase (they materialize nothing).
    pub fn fused_nodes(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, NodeState::Unary { fused: true, .. }))
            .count()
    }

    /// Bytes of intermediate CSR storage the fused nodes would have
    /// materialized as standalone copies (what epilogue fusion
    /// eliminates): for each fused node, the byte size of the buffer
    /// it rewrites in place.
    pub fn fused_bytes_eliminated(&self) -> usize {
        self.states
            .iter()
            .filter_map(|s| match s {
                NodeState::Unary {
                    fused: true,
                    a: ValueLoc::Buf(owner),
                    ..
                } => Some(csr_bytes(&self.bufs[*owner])),
                _ => None,
            })
            .sum()
    }

    /// Bytes of CSR storage held by materialized intermediate buffers
    /// (every non-input node with its own buffer, including the root).
    pub fn intermediate_bytes(&self) -> usize {
        self.bufs.iter().map(csr_bytes).sum()
    }

    /// Aggregated workspace-reuse counters over every `Multiply`
    /// node's pooled accumulators.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        let mut total = WorkspaceStats::default();
        for s in &self.states {
            if let NodeState::Multiply { plan, .. } = s {
                let st = plan.workspace_stats();
                total.created += st.created;
                total.reused += st.reused;
            }
        }
        total
    }
}

/// CSR storage bytes of a buffer (row pointers + column indices +
/// values).
fn csr_bytes(m: &Csr<f64>) -> usize {
    std::mem::size_of_val(m.rpts())
        + m.nnz() * (std::mem::size_of::<ColIdx>() + std::mem::size_of::<f64>())
}

/// Build an `Add` node's cached structure + provenance into `me`.
fn bind_add(
    a: &Csr<f64>,
    b: &Csr<f64>,
    me: &mut Csr<f64>,
) -> Result<(Vec<usize>, Vec<usize>), SparseError> {
    if a.shape() != b.shape() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "expr add",
        });
    }
    if !a.is_sorted() || !b.is_sorted() {
        return Err(SparseError::Unsorted { op: "expr add" });
    }
    let mut rpts = Vec::with_capacity(a.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    let mut a_src = Vec::with_capacity(a.nnz() + b.nnz());
    let mut b_src = Vec::with_capacity(a.nnz() + b.nnz());
    for i in 0..a.nrows() {
        let (ra, rb) = (a.row_range(i), b.row_range(i));
        let (ac, av) = (a.row_cols(i), a.row_vals(i));
        let (bc, bv) = (b.row_cols(i), b.row_vals(i));
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            let take_a = q >= bc.len() || (p < ac.len() && ac[p] <= bc[q]);
            let take_b = p >= ac.len() || (q < bc.len() && bc[q] <= ac[p]);
            match (take_a, take_b) {
                (true, true) => {
                    cols.push(ac[p]);
                    vals.push(av[p] + bv[q]);
                    a_src.push(ra.start + p);
                    b_src.push(rb.start + q);
                    p += 1;
                    q += 1;
                }
                (true, false) => {
                    cols.push(ac[p]);
                    vals.push(av[p]);
                    a_src.push(ra.start + p);
                    b_src.push(ABSENT);
                    p += 1;
                }
                (false, true) => {
                    cols.push(bc[q]);
                    vals.push(bv[q]);
                    a_src.push(ABSENT);
                    b_src.push(rb.start + q);
                    q += 1;
                }
                (false, false) => unreachable!(),
            }
        }
        rpts.push(cols.len());
    }
    *me = Csr::from_parts_unchecked(a.nrows(), a.ncols(), rpts, cols, vals, true);
    Ok((a_src, b_src))
}

/// Build a `Hadamard` node's cached structure + provenance into `me`.
fn bind_hadamard(
    a: &Csr<f64>,
    b: &Csr<f64>,
    me: &mut Csr<f64>,
) -> Result<(Vec<usize>, Vec<usize>), SparseError> {
    if a.shape() != b.shape() {
        return Err(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "expr hadamard",
        });
    }
    if !a.is_sorted() || !b.is_sorted() {
        return Err(SparseError::Unsorted {
            op: "expr hadamard",
        });
    }
    let mut rpts = Vec::with_capacity(a.nrows() + 1);
    rpts.push(0usize);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    let mut a_idx = Vec::new();
    let mut b_idx = Vec::new();
    for i in 0..a.nrows() {
        let (ra, rb) = (a.row_range(i), b.row_range(i));
        let (ac, av) = (a.row_cols(i), a.row_vals(i));
        let (bc, bv) = (b.row_cols(i), b.row_vals(i));
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() && q < bc.len() {
            use std::cmp::Ordering::*;
            match ac[p].cmp(&bc[q]) {
                Less => p += 1,
                Greater => q += 1,
                Equal => {
                    cols.push(ac[p]);
                    vals.push(av[p] * bv[q]);
                    a_idx.push(ra.start + p);
                    b_idx.push(rb.start + q);
                    p += 1;
                    q += 1;
                }
            }
        }
        rpts.push(cols.len());
    }
    *me = Csr::from_parts_unchecked(a.nrows(), a.ncols(), rpts, cols, vals, true);
    Ok((a_idx, b_idx))
}

/// Counters of one [`ExprCache`]'s reuse behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExprCacheStats {
    /// Executions served numeric-only by the cached plan (input
    /// structures matched).
    pub hits: u64,
    /// Executions that had to (re)bind the plan — the first call plus
    /// every input-structure change. `Multiply` workspace pools
    /// survive rebinds.
    pub rebuilds: u64,
}

/// A single-entry expression-plan cache for iterative pipelines whose
/// input structure *may* drift between rounds (MCL pruning): each
/// execution fingerprints the inputs; a match runs the cached plan
/// numeric-only, a mismatch rebinds it (keeping pooled accumulators
/// and buffers) — [`crate::PlanCache`] lifted to whole DAGs.
pub struct ExprCache {
    graph: ExprGraph,
    root: NodeId,
    algo: Algorithm,
    plan: Option<ExprPlan>,
    stats: ExprCacheStats,
}

impl ExprCache {
    /// An empty cache that will compile `graph` at `root` with `algo`.
    pub fn new(graph: ExprGraph, root: NodeId, algo: Algorithm) -> Self {
        assert!(root.index() < graph.len(), "root from another graph");
        ExprCache {
            graph,
            root,
            algo,
            plan: None,
            stats: ExprCacheStats::default(),
        }
    }

    /// Execute the pipeline into `out` through the cache on an
    /// explicit pool: a structure match is a numeric-only hit, a
    /// mismatch rebinds.
    pub fn execute_into_in(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        out: &mut Csr<f64>,
        pool: &Pool,
    ) -> Result<(), SparseError> {
        let reusable = self
            .plan
            .as_ref()
            .is_some_and(|p| p.nthreads() == pool.nthreads() && p.matches_inputs(inputs));
        if reusable {
            self.stats.hits += 1;
            return self
                .plan
                .as_mut()
                .expect("checked above")
                .execute_into_in(inputs, vecs, out, pool);
        }
        self.stats.rebuilds += 1;
        match self.plan.as_mut() {
            Some(p) => p.rebind_in(inputs, vecs, pool)?,
            None => {
                self.plan = Some(ExprPlan::new_in(
                    &self.graph,
                    self.root,
                    inputs,
                    vecs,
                    self.algo,
                    pool,
                )?)
            }
        }
        // Binding materialized the values already; just publish the
        // root (bare-input roots read straight from the inputs).
        let plan = self.plan.as_ref().expect("installed above");
        match plan.root_into(out) {
            Ok(()) => Ok(()),
            Err(_) => {
                let ExprOp::Input { slot } = self.graph.nodes()[self.root.index()] else {
                    unreachable!("root_into only fails for input roots")
                };
                write_csr(inputs[slot], out);
                Ok(())
            }
        }
    }

    /// [`ExprCache::execute_into_in`] on the process-global pool.
    pub fn execute_into(
        &mut self,
        inputs: &[&Csr<f64>],
        vecs: &[&[f64]],
        out: &mut Csr<f64>,
    ) -> Result<(), SparseError> {
        self.execute_into_in(inputs, vecs, out, spgemm_par::global_pool())
    }

    /// Hit/rebuild counters.
    pub fn stats(&self) -> ExprCacheStats {
        self.stats
    }

    /// The cached plan, once one exists.
    pub fn plan(&self) -> Option<&ExprPlan> {
        self.plan.as_ref()
    }
}
